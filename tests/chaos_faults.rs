//! Integration: the deterministic chaos scenario end to end.
//!
//! Under seeded WAN link flaps and a policy-replica outage the Montage run
//! must still complete, the policy memory of the surviving replica must
//! drain, and — the acceptance criterion for the fault-injection layer —
//! two runs with the same seed must reproduce the identical fault sequence
//! and makespan.

use pwm_bench::{run_chaos, ChaosConfig};
use pwm_sim::{QueueKind, SimDuration, SimTime};

/// A compact scenario so debug-mode runs stay quick: two WAN flaps, one
/// degradation window, and a 45 s replica-crash outage early in the run.
fn scenario() -> ChaosConfig {
    ChaosConfig {
        extra_file_bytes: 2_000_000,
        flaps: 2,
        degradations: 1,
        fault_horizon: SimDuration::from_secs(150),
        outage_start: SimTime::from_secs(30),
        outage_duration: SimDuration::from_secs(45),
        timeout_glitches: 1,
        transfer_failure_prob: 0.0,
        ..ChaosConfig::default()
    }
}

#[test]
fn montage_survives_link_flaps_and_a_replica_outage() {
    let report = run_chaos(&scenario(), 3);
    assert!(
        report.stats.success,
        "chaos must degrade the run, not break it"
    );
    // Makespan is finite and strictly positive.
    let makespan = report.makespan_secs();
    assert!(makespan.is_finite() && makespan > 0.0);
    // The outage fell inside the run, so the replica chain failed over.
    assert!(report.injected_service_failures >= 1, "outage never hit");
    assert!(report.failovers >= 1, "replica crash must drive failover");
    // Executor-side ledger: every staged byte was cleaned up again.
    assert_eq!(report.stats.final_scratch_bytes, 0.0);
    // Service-side ledger: the surviving (post-failover) replica drains to
    // zero — nothing in flight, no streams still allocated.
    let backup = report.backup_snapshot.expect("two replicas configured");
    assert_eq!(backup.in_progress_transfers, 0);
    assert_eq!(backup.staging_files, 0);
    assert_eq!(backup.in_progress_cleanups, 0);
    assert!(backup.host_pairs.iter().all(|hp| hp.allocated == 0));
}

#[test]
fn same_seed_reproduces_fault_sequence_and_makespan() {
    // The determinism contract must hold under either event-queue
    // implementation — the heap oracle and the ladder queue.
    for queue in [QueueKind::Heap, QueueKind::Ladder] {
        let cfg = ChaosConfig {
            queue,
            ..scenario()
        };
        let a = run_chaos(&cfg, 17);
        let b = run_chaos(&cfg, 17);
        // Bit-for-bit identical fault schedule and outcome.
        assert_eq!(a.fault_events, b.fault_events);
        assert_eq!(a.stats.makespan, b.stats.makespan);
        assert_eq!(a.stats.transfer_retries, b.stats.transfer_retries);
        assert_eq!(a.injected_service_failures, b.injected_service_failures);
        assert_eq!(a.failovers, b.failovers);
        // A different seed perturbs the schedule and hence the makespan.
        let c = run_chaos(&cfg, 18);
        assert_ne!(a.stats.makespan, c.stats.makespan, "queue {queue:?}");
        assert_ne!(a.fault_events, c.fault_events, "queue {queue:?}");
    }
}

#[test]
fn queue_kinds_agree_on_the_chaos_outcome() {
    // Same seed, same faults, different queue implementation: the
    // simulated physics must not depend on the queue's internals.
    let heap = run_chaos(
        &ChaosConfig {
            queue: QueueKind::Heap,
            ..scenario()
        },
        17,
    );
    let ladder = run_chaos(
        &ChaosConfig {
            queue: QueueKind::Ladder,
            ..scenario()
        },
        17,
    );
    assert_eq!(heap.fault_events, ladder.fault_events);
    assert_eq!(heap.stats.makespan, ladder.stats.makespan);
    assert_eq!(heap.stats.transfer_retries, ladder.stats.transfer_retries);
    assert_eq!(heap.stats.bytes_staged, ladder.stats.bytes_staged);
}

#[test]
fn policy_outage_degrades_to_default_streams_without_aborting() {
    // Single replica, no backup: an outage spanning most of the run forces
    // the executor onto its fallback (execute the submitted list with the
    // default stream count) instead of aborting.
    let cfg = ChaosConfig {
        replicas: 1,
        link_faults: false,
        outage_start: SimTime::from_secs(5),
        outage_duration: SimDuration::from_secs(600),
        ..scenario()
    };
    let report = run_chaos(&cfg, 9);
    assert!(
        report.stats.success,
        "a policy outage must never abort the workflow"
    );
    assert!(report.injected_service_failures > 0);
    assert_eq!(report.failovers, 0, "no backup replica to fail over to");
    assert!(report.stats.bytes_staged > 0.0);
    assert_eq!(report.stats.final_scratch_bytes, 0.0);
}
