//! Integration: crash-consistent policy memory, end to end.
//!
//! The acceptance criteria for the durability layer:
//!
//! 1. **Recovery equivalence** — for seeded crash points,
//!    [`PolicyService::recover_from`] rebuilds a service that is
//!    `PartialEq`-identical (facts, ids, ledgers, stats, audit numbering)
//!    to an uninterrupted service that applied exactly the commands that
//!    survived on disk: all `n` for `AfterAppend(n)` and
//!    `MidSnapshot { append: n }`, the first `n - 1` for a torn `n`-th
//!    append.
//! 2. **Warm-failover invariants** — a backup warmed from the dead
//!    primary's log never grants a host pair past its threshold on top of
//!    allocations that survived the crash, and never re-advises a file the
//!    ledger already marked staged.
//! 3. **Determinism** — the full crash → failover → recovery scenario is a
//!    pure function of its seed, and an uneventful durability sink does
//!    not perturb the simulation it shadows.

use pwm_bench::{run_crash, CrashConfig};
use pwm_core::{
    CleanupId, CleanupOutcome, CleanupSpec, CrashPoint, DurabilityConfig, FailoverTransport,
    InProcessTransport, PolicyConfig, PolicyController, PolicyService, PolicyTransport,
    TransferAdvice, TransferId, TransferOutcome, TransferSpec, TransportError, Url, WalCommand,
    WorkflowId, DEFAULT_SESSION,
};
use pwm_sim::{SimDuration, SimRng, SimTime};
use std::path::PathBuf;

/// Unique scratch directory (no tempfile crate in the dependency set).
fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pwm-it-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deterministic, seed-derived script of service commands: staged and
/// re-requested files (exercising dedup), successes and failures, cleanups,
/// and mid-stream config changes. Reports may name ids that were never
/// granted — the service ignores them, identically live and on replay.
fn command_script(rng: &mut SimRng, steps: usize) -> Vec<WalCommand> {
    let sources = ["srcA", "srcB"];
    let mut transfers_seen: u64 = 0;
    let mut cleanups_seen: u64 = 0;
    let mut cmds = Vec::with_capacity(steps);
    for step in 0..steps {
        let kind = if transfers_seen == 0 {
            0
        } else {
            rng.uniform_u64(0, 4)
        };
        match kind {
            0 | 1 => {
                let batch: Vec<TransferSpec> = (0..rng.uniform_u64(1, 3))
                    .map(|_| {
                        let f = rng.uniform_u64(0, 11);
                        let src = sources[rng.uniform_u64(0, 1) as usize];
                        TransferSpec {
                            source: Url::new("gsiftp", src, format!("/data/f{f}")),
                            dest: Url::new("file", "wn", format!("/scratch/f{f}")),
                            bytes: (f + 1) * 1_000_000,
                            requested_streams: None,
                            workflow: WorkflowId(1 + f % 2),
                            cluster: None,
                            priority: None,
                        }
                    })
                    .collect();
                transfers_seen += batch.len() as u64;
                cmds.push(WalCommand::EvaluateTransfers(batch));
            }
            2 => {
                let outcomes = (0..rng.uniform_u64(1, 2))
                    .map(|_| TransferOutcome {
                        id: TransferId(rng.uniform_u64(0, transfers_seen - 1)),
                        success: rng.uniform_u64(0, 3) != 0,
                    })
                    .collect();
                cmds.push(WalCommand::ReportTransfers(outcomes));
            }
            3 => {
                let f = rng.uniform_u64(0, 11);
                cmds.push(WalCommand::EvaluateCleanups(vec![CleanupSpec {
                    file: Url::new("file", "wn", format!("/scratch/f{f}")),
                    workflow: WorkflowId(1),
                }]));
                cleanups_seen += 1;
            }
            _ => {
                if cleanups_seen == 0 || step % 2 == 0 {
                    cmds.push(WalCommand::SetConfig(
                        PolicyConfig::default().with_threshold(30 + (step as u32 % 3) * 10),
                    ));
                } else {
                    cmds.push(WalCommand::ReportCleanups(vec![CleanupOutcome {
                        id: CleanupId(rng.uniform_u64(0, cleanups_seen - 1)),
                        success: true,
                    }]));
                }
            }
        }
    }
    cmds
}

/// Drive one logged command through the public service API (what the WAL
/// replay itself does internally).
fn apply(svc: &mut PolicyService, cmd: &WalCommand) {
    match cmd.clone() {
        WalCommand::EvaluateTransfers(batch) => {
            svc.evaluate_transfers(batch);
        }
        WalCommand::EvaluateTransferGroups(groups) => {
            svc.evaluate_transfer_groups(groups);
        }
        WalCommand::ReportTransfers(outcomes) => svc.report_transfers(outcomes),
        WalCommand::EvaluateCleanups(batch) => {
            svc.evaluate_cleanups(batch);
        }
        WalCommand::ReportCleanups(outcomes) => svc.report_cleanups(outcomes),
        WalCommand::SetConfig(config) => svc.set_config(config),
        WalCommand::ReportHealth(events) => svc.report_health(events),
    }
}

/// How many commands of the script the disk still holds after `crash`.
fn surviving_prefix(crash: CrashPoint) -> usize {
    match crash {
        // The n-th record hit the disk whole before the process died.
        CrashPoint::AfterAppend(n) => n as usize,
        // The n-th frame is partial: the torn-tail rule drops exactly it.
        CrashPoint::TornAppend { append, .. } => (append - 1) as usize,
        // The snapshot after record n tore before its rename, so the old
        // snapshot plus the uncompacted log — all n records — stay
        // authoritative.
        CrashPoint::MidSnapshot { append } => append as usize,
    }
}

#[test]
fn recovery_equals_uninterrupted_prefix_for_seeded_crash_points() {
    for seed in 1..=10u64 {
        let mut script_rng = SimRng::for_component(seed, "crash-recovery-script");
        let cmds = command_script(&mut script_rng, 32);
        let crash = CrashPoint::seeded(
            &mut SimRng::for_component(seed, "crash-recovery-point"),
            cmds.len() as u64,
        );

        // Live service with the seeded crash injected into its sink; keep
        // feeding it after the "death" — the frozen sink drops the writes,
        // exactly like a process that died mid-run.
        let dir = scratch_dir("crash-recovery");
        let mut durable = PolicyService::new(PolicyConfig::default());
        durable
            .enable_durability(
                DurabilityConfig::new(&dir)
                    .with_snapshot_every(5)
                    .with_crash(crash),
            )
            .unwrap();
        for cmd in &cmds {
            apply(&mut durable, cmd);
        }
        assert!(
            durable.durability_crashed(),
            "seed {seed}: crash point {crash:?} never fired"
        );

        // The reference: a never-crashed service that applied exactly the
        // prefix the disk retained.
        let survived = surviving_prefix(crash);
        let mut reference = PolicyService::new(PolicyConfig::default());
        for cmd in &cmds[..survived] {
            apply(&mut reference, cmd);
        }

        let recovered = PolicyService::recover_from(&dir).unwrap();
        assert_eq!(
            recovered.durable_state(),
            reference.durable_state(),
            "seed {seed}: recovery after {crash:?} must equal the \
             uninterrupted {survived}-command prefix"
        );
        assert_eq!(recovered.snapshot(), reference.snapshot());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn every_crash_class_recovers_its_documented_prefix() {
    let cases = [
        (CrashPoint::AfterAppend(10), 10),
        (
            CrashPoint::TornAppend {
                append: 10,
                keep: 7,
            },
            9,
        ),
        // keep = 0: the torn frame left zero bytes — still only record 10
        // is lost.
        (
            CrashPoint::TornAppend {
                append: 10,
                keep: 0,
            },
            9,
        ),
        (CrashPoint::MidSnapshot { append: 10 }, 10),
    ];
    let mut rng = SimRng::for_component(99, "crash-class-script");
    let cmds = command_script(&mut rng, 16);
    for (crash, survived) in cases {
        let dir = scratch_dir("crash-class");
        let mut durable = PolicyService::new(PolicyConfig::default());
        durable
            .enable_durability(
                DurabilityConfig::new(&dir)
                    .with_snapshot_every(4)
                    .with_crash(crash),
            )
            .unwrap();
        for cmd in &cmds {
            apply(&mut durable, cmd);
        }
        let recovered = PolicyService::recover_from(&dir).unwrap();
        let mut reference = PolicyService::new(PolicyConfig::default());
        for cmd in &cmds[..survived] {
            apply(&mut reference, cmd);
        }
        assert_eq!(
            recovered.durable_state(),
            reference.durable_state(),
            "{crash:?} must recover exactly {survived} commands"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A replica that is already dead: every request fails at the transport.
struct Dead;

impl PolicyTransport for Dead {
    fn evaluate_transfers(
        &mut self,
        _batch: Vec<TransferSpec>,
    ) -> Result<Vec<TransferAdvice>, TransportError> {
        Err(TransportError::Io("primary crashed".into()))
    }
    fn report_transfers(&mut self, _outcomes: Vec<TransferOutcome>) -> Result<(), TransportError> {
        Err(TransportError::Io("primary crashed".into()))
    }
    fn evaluate_cleanups(
        &mut self,
        _batch: Vec<CleanupSpec>,
    ) -> Result<Vec<pwm_core::CleanupAdvice>, TransportError> {
        Err(TransportError::Io("primary crashed".into()))
    }
    fn report_cleanups(&mut self, _outcomes: Vec<CleanupOutcome>) -> Result<(), TransportError> {
        Err(TransportError::Io("primary crashed".into()))
    }
}

fn stage_spec(n: u64) -> TransferSpec {
    TransferSpec {
        source: Url::new("gsiftp", "srcA", format!("/data/g{n}")),
        dest: Url::new("file", "wn", format!("/scratch/g{n}")),
        bytes: 5_000_000,
        requested_streams: None,
        workflow: WorkflowId(1),
        cluster: None,
        priority: None,
    }
}

#[test]
fn warm_failover_never_overgrants_and_never_restages() {
    let dir = scratch_dir("warm-invariants");
    let config = PolicyConfig::default()
        .with_default_streams(6)
        .with_threshold(10);

    // Durable primary stages g1 to completion and leaves g2 in flight,
    // holding 6 of the pair's 10 streams; then the process dies.
    let primary = PolicyController::new(config.clone());
    primary
        .create_durable_session(
            DEFAULT_SESSION,
            config.clone(),
            DurabilityConfig::new(&dir).with_snapshot_every(3),
        )
        .unwrap();
    let mut live = InProcessTransport::new(primary.clone(), DEFAULT_SESSION);
    let staged = live.evaluate_transfers(vec![stage_spec(1)]).unwrap();
    live.report_transfers(vec![TransferOutcome {
        id: staged[0].id,
        success: true,
    }])
    .unwrap();
    let inflight = live.evaluate_transfers(vec![stage_spec(2)]).unwrap();
    assert_eq!(inflight[0].streams, 6);

    // The backup warms itself from the primary's log just before its first
    // request.
    let backup = PolicyController::new(config.clone());
    let hook_backup = backup.clone();
    let hook_dir = dir.clone();
    let mut chain = FailoverTransport::new(vec![
        Box::new(Dead),
        Box::new(InProcessTransport::new(backup.clone(), DEFAULT_SESSION)),
    ])
    .with_warm_recovery(move |_ix| {
        hook_backup
            .recover_session(DEFAULT_SESSION, &hook_dir)
            .unwrap();
    });

    // Invariant: the staged g1 is never re-advised.
    let again = chain.evaluate_transfers(vec![stage_spec(1)]).unwrap();
    assert!(
        !again[0].should_execute(),
        "warm backup must remember g1 is AlreadyStaged"
    );

    // Invariant: the surviving g2 allocation still counts against the
    // pair, so new grants never push (srcA, wn) past its threshold.
    let fresh = chain.evaluate_transfers(vec![stage_spec(3)]).unwrap();
    let snap = backup.snapshot(DEFAULT_SESSION).unwrap();
    let pair = snap
        .host_pairs
        .iter()
        .find(|hp| hp.src_host == "srcA" && hp.dst_host == "wn")
        .expect("recovered ledger tracks the pair");
    assert!(
        pair.allocated <= 10,
        "warm failover over-granted: {} streams allocated on a threshold-10 pair",
        pair.allocated
    );
    assert!(inflight[0].streams + fresh[0].streams <= 10);
    assert_eq!(chain.failovers(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// A compact crash scenario so debug-mode integration runs stay quick.
fn scenario() -> CrashConfig {
    CrashConfig {
        extra_file_bytes: 2_000_000,
        max_crash_append: 20,
        snapshot_every: 8,
        outage_start: SimTime::from_secs(30),
        outage_duration: SimDuration::from_secs(100_000),
        ..CrashConfig::default()
    }
}

#[test]
fn crash_failover_scenario_holds_recovery_invariants_end_to_end() {
    let report = run_crash(&scenario(), 21);
    let violations = report.violations();
    assert!(
        violations.is_empty(),
        "recovery invariants violated:\n{}",
        violations.join("\n")
    );
    // The warm hook really replayed the primary's log.
    assert!(report.warm.recovered_records.is_some());
    assert!(report.warm.failovers >= 1);
}

#[test]
fn crash_recovery_outcome_is_a_pure_function_of_the_seed() {
    let cfg = scenario();
    let a = run_crash(&cfg, 33);
    let b = run_crash(&cfg, 33);
    assert_eq!(a.crash, b.crash);
    assert_eq!(a.cold.stats.makespan, b.cold.stats.makespan);
    assert_eq!(a.warm.stats.makespan, b.warm.stats.makespan);
    assert_eq!(a.warm.recovered_records, b.warm.recovered_records);
    assert_eq!(a.warm.recovered_staged_files, b.warm.recovered_staged_files);
}

#[test]
fn an_uneventful_durability_sink_does_not_perturb_advice() {
    // Same command script through a plain service and a durable one whose
    // crash point never fires: byte-identical policy memory afterwards.
    let mut rng = SimRng::for_component(55, "no-perturb-script");
    let cmds = command_script(&mut rng, 24);
    let dir = scratch_dir("no-perturb");
    let mut plain = PolicyService::new(PolicyConfig::default());
    let mut durable = PolicyService::new(PolicyConfig::default());
    durable
        .enable_durability(DurabilityConfig::new(&dir).with_snapshot_every(6))
        .unwrap();
    for cmd in &cmds {
        apply(&mut plain, cmd);
        apply(&mut durable, cmd);
    }
    assert!(!durable.durability_crashed());
    assert_eq!(plain.snapshot(), durable.snapshot());
    assert_eq!(plain.stats(), durable.stats());
    // And the disk image round-trips to the same memory.
    let recovered = PolicyService::recover_from(&dir).unwrap();
    assert_eq!(recovered.durable_state(), plain.durable_state());
    std::fs::remove_dir_all(&dir).ok();
}
