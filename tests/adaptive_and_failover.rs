//! Integration: the future-work extensions running against the full stack —
//! the adaptive threshold tuner fed by real simulated transfers, and the
//! replicated-policy failover transport driving a whole workflow.

use pwm_bench::{mb, MontageExperiment, PolicyMode};
use pwm_core::transport::{InProcessTransport, PolicyTransport, TransportError};
use pwm_core::{
    CleanupAdvice, CleanupOutcome, CleanupSpec, FailoverTransport, PolicyConfig, PolicyController,
    ThresholdTuner, TransferAdvice, TransferObservation, TransferOutcome, TransferSpec,
    DEFAULT_SESSION,
};
use pwm_montage::{montage_replicas, montage_workflow, MontageConfig};
use pwm_net::{paper_testbed, Network, StreamModel};
use pwm_workflow::{plan, ComputeSite, ExecutorConfig, PlannerConfig, WorkflowExecutor};

/// The tuner, fed by real simulated campaigns, must end up preferring a
/// threshold at or below 100 (the healthy region) over 200.
#[test]
fn tuner_learns_the_healthy_region_from_real_runs() {
    let mut tuner = ThresholdTuner::new(vec![50, 200], 3)
        .with_min_samples(80)
        .with_epsilon(0.0);
    for episode in 0..6 {
        let threshold = tuner.active_threshold();
        let exp = MontageExperiment::paper_setup(mb(10), 8, PolicyMode::Greedy { threshold });
        let stats = exp.run_once(500 + episode);
        assert!(stats.success);
        for t in stats.transfers.iter().filter(|t| t.bytes >= 9.0e6) {
            tuner.observe(TransferObservation {
                goodput: t.goodput(),
                concurrent: 20,
            });
        }
    }
    assert_eq!(
        tuner.best_threshold(),
        50,
        "estimates: {:?}",
        tuner.estimates()
    );
}

/// A transport that fails after `live_calls` successful calls, simulating a
/// policy-service crash mid-workflow.
struct DiesAfter {
    inner: InProcessTransport,
    live_calls: u32,
}

impl DiesAfter {
    fn dead(&mut self) -> bool {
        if self.live_calls == 0 {
            return true;
        }
        self.live_calls -= 1;
        false
    }
}

impl PolicyTransport for DiesAfter {
    fn evaluate_transfers(
        &mut self,
        batch: Vec<TransferSpec>,
    ) -> Result<Vec<TransferAdvice>, TransportError> {
        if self.dead() {
            return Err(TransportError::Io("crashed".into()));
        }
        self.inner.evaluate_transfers(batch)
    }
    fn report_transfers(&mut self, outcomes: Vec<TransferOutcome>) -> Result<(), TransportError> {
        if self.dead() {
            return Err(TransportError::Io("crashed".into()));
        }
        self.inner.report_transfers(outcomes)
    }
    fn evaluate_cleanups(
        &mut self,
        batch: Vec<CleanupSpec>,
    ) -> Result<Vec<CleanupAdvice>, TransportError> {
        if self.dead() {
            return Err(TransportError::Io("crashed".into()));
        }
        self.inner.evaluate_cleanups(batch)
    }
    fn report_cleanups(&mut self, outcomes: Vec<CleanupOutcome>) -> Result<(), TransportError> {
        if self.dead() {
            return Err(TransportError::Io("crashed".into()));
        }
        self.inner.report_cleanups(outcomes)
    }
}

/// A mid-run primary crash fails over to the backup replica and the whole
/// Montage workflow still completes with policy service involvement.
#[test]
fn workflow_survives_policy_primary_crash_via_failover() {
    let (topo, gridftp, apache, nfs) = paper_testbed();
    let site = ComputeSite {
        name: "obelix".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: nfs,
        storage_host_name: "obelix-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    let wf = montage_workflow(&MontageConfig {
        rows: 3,
        cols: 3,
        extra_file_bytes: 2_000_000,
        seed: 8,
    });
    let rc = montage_replicas(&wf, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();

    let primary_ctl = PolicyController::new(PolicyConfig::default());
    let backup_ctl = PolicyController::new(PolicyConfig::default());
    let primary = DiesAfter {
        inner: InProcessTransport::new(primary_ctl, DEFAULT_SESSION),
        live_calls: 25, // crash mid-workflow
    };
    let backup = InProcessTransport::new(backup_ctl.clone(), DEFAULT_SESSION);
    let transport = FailoverTransport::new(vec![Box::new(primary), Box::new(backup)]);

    let network = Network::with_seed(topo, StreamModel::default(), 8);
    let exec = WorkflowExecutor::new(
        &p,
        &site,
        network,
        Box::new(transport),
        ExecutorConfig {
            seed: 8,
            ..Default::default()
        },
    );
    let (stats, _) = exec.run();
    assert!(stats.success, "failover must keep the workflow alive");
    // The backup served the post-crash traffic.
    let backup_stats = backup_ctl.stats(DEFAULT_SESSION).unwrap();
    assert!(
        backup_stats.transfer_requests > 0,
        "backup replica never saw traffic"
    );
}
