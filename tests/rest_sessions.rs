//! Integration: multi-session REST lifecycle — per-experiment sessions with
//! different configurations, mixed JSON/XML clients against one server,
//! incremental audit-log polling, and graceful shutdown of the event loop
//! under pipelined load.

use pwm_core::transport::PolicyTransport;
use pwm_core::{PolicyConfig, PolicyController, TransferSpec, Url, WorkflowId};
use pwm_rest::{PolicyRestClient, PolicyRestServer, WireFormat};

fn spec(n: u32) -> TransferSpec {
    TransferSpec {
        source: Url::new("gsiftp", "gridftp-vm", format!("/d/f{n}.dat")),
        dest: Url::new("file", "obelix-nfs", format!("/s/f{n}.dat")),
        bytes: 1_000_000,
        requested_streams: None,
        workflow: WorkflowId(1),
        cluster: None,
        priority: None,
    }
}

#[test]
fn per_experiment_sessions_have_independent_configs_and_state() {
    let controller = PolicyController::new(PolicyConfig::default());
    let server = PolicyRestServer::start(controller).unwrap();

    // Two experiment sessions, as the paper configures "prior to each test".
    let exp_a = PolicyRestClient::new(server.addr(), "exp-threshold-50");
    exp_a
        .put_config(
            &PolicyConfig::default()
                .with_default_streams(8)
                .with_threshold(50),
        )
        .unwrap();
    let exp_b = PolicyRestClient::new(server.addr(), "exp-threshold-200");
    exp_b
        .put_config(
            &PolicyConfig::default()
                .with_default_streams(12)
                .with_threshold(200),
        )
        .unwrap();

    let mut a = exp_a.clone();
    let mut b = exp_b.clone();
    let advice_a = a.evaluate_transfers(vec![spec(1)]).unwrap();
    let advice_b = b.evaluate_transfers(vec![spec(1)]).unwrap();
    assert_eq!(advice_a[0].streams, 8);
    assert_eq!(advice_b[0].streams, 12);
    // Same file in both sessions — no cross-session dedup.
    assert!(advice_a[0].should_execute());
    assert!(advice_b[0].should_execute());

    // Independent ledgers.
    let sa = exp_a.status().unwrap();
    let sb = exp_b.status().unwrap();
    assert_eq!(sa.snapshot.host_pairs[0].allocated, 8);
    assert_eq!(sb.snapshot.host_pairs[0].allocated, 12);
}

#[test]
fn json_and_xml_clients_share_one_session() {
    let controller = PolicyController::new(PolicyConfig::default());
    let server = PolicyRestServer::start(controller).unwrap();
    let mut json = PolicyRestClient::new(server.addr(), "default");
    let mut xml = PolicyRestClient::new(server.addr(), "default").with_format(WireFormat::Xml);

    // The JSON client stages a file; the XML client's duplicate is skipped —
    // one policy session, two wire formats.
    let first = json.evaluate_transfers(vec![spec(7)]).unwrap();
    assert!(first[0].should_execute());
    let second = xml.evaluate_transfers(vec![spec(7)]).unwrap();
    assert!(!second[0].should_execute());
}

/// Graceful shutdown under pipelined load: while several connections are
/// mid-window, `shutdown()` must answer every fully-received request (200),
/// 503 the partially-received one, flush whole frames, and only then close
/// — no truncated responses, no drops before the drain begins, and no new
/// connections afterwards.
#[test]
fn graceful_shutdown_under_pipelined_load() {
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    const DEPTH: usize = 8;

    let controller = PolicyController::new(PolicyConfig::default());
    let mut server = PolicyRestServer::start(controller).unwrap();
    let addr = server.addr();

    let draining = Arc::new(AtomicBool::new(false));
    let answered = Arc::new(AtomicU64::new(0));

    let render = |t: u32, n: u32| {
        let body = serde_json::to_vec(&pwm_rest::TransferRequestEnvelope {
            transfers: vec![spec(1000 * t + n)],
        })
        .unwrap();
        pwm_rest::http::render_request(
            WireFormat::Json,
            pwm_rest::Method::Post,
            "/sessions/default/transfers",
            &body,
            true,
        )
    };

    // A connection parked with half a request on the wire: the drain must
    // answer it with a clean 503, not silence or a torn frame.
    let mut parked = TcpStream::connect(addr).unwrap();
    parked.set_nodelay(true).ok();
    let half = render(9, 0);
    parked.write_all(&half[..half.len() / 2]).unwrap();

    // Load threads, each pipelining windows of DEPTH distinct requests.
    let mut threads = Vec::new();
    for t in 0..3u32 {
        let draining = Arc::clone(&draining);
        let answered = Arc::clone(&answered);
        let reqs: Vec<Vec<u8>> = (0..64).map(|n| render(t, n)).collect();
        threads.push(std::thread::spawn(move || -> u64 {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).ok();
            let mut ok200 = 0u64;
            let mut cursor = 0usize;
            let mut rbuf: Vec<u8> = Vec::new();
            let mut chunk = [0u8; 8192];
            loop {
                let mut window = Vec::new();
                for _ in 0..DEPTH {
                    window.extend_from_slice(&reqs[cursor % reqs.len()]);
                    cursor += 1;
                }
                if stream.write_all(&window).is_err() {
                    assert!(
                        draining.load(Ordering::SeqCst),
                        "write failed before shutdown began"
                    );
                    break;
                }
                let mut got = 0usize;
                let mut closed = false;
                while got < DEPTH {
                    while let Some((status, _body, consumed)) =
                        pwm_rest::http::try_parse_response(&rbuf).expect("well-formed frame")
                    {
                        rbuf.drain(..consumed);
                        got += 1;
                        assert!(
                            status == 200 || status == 503,
                            "unexpected status {status} during drain"
                        );
                        if status == 200 {
                            ok200 += 1;
                        }
                        answered.fetch_add(1, Ordering::SeqCst);
                        if got == DEPTH {
                            break;
                        }
                    }
                    if got == DEPTH {
                        break;
                    }
                    match stream.read(&mut chunk) {
                        Ok(0) | Err(_) => {
                            closed = true;
                            break;
                        }
                        Ok(n) => rbuf.extend_from_slice(&chunk[..n]),
                    }
                }
                if closed {
                    assert!(
                        draining.load(Ordering::SeqCst),
                        "server closed a connection before shutdown began"
                    );
                    assert!(
                        rbuf.is_empty(),
                        "connection closed with a truncated response in flight"
                    );
                    break;
                }
                if draining.load(Ordering::SeqCst) {
                    break;
                }
            }
            ok200
        }));
    }

    // Let the load demonstrably flow, then pull the plug mid-traffic.
    while answered.load(Ordering::SeqCst) < 200 {
        std::thread::yield_now();
    }
    draining.store(true, Ordering::SeqCst);
    server.shutdown();

    for t in threads {
        let ok200 = t.join().expect("load thread");
        assert!(
            ok200 > 0,
            "every connection served requests before shutdown"
        );
    }

    // The parked half-request got its clean 503 before the close.
    let mut tail = Vec::new();
    parked.read_to_end(&mut tail).expect("read parked tail");
    let (status, _body, consumed) = pwm_rest::http::try_parse_response(&tail)
        .expect("well-formed frame")
        .expect("partial request must be answered, not dropped");
    assert_eq!(status, 503, "partial request gets a clean 503");
    assert_eq!(consumed, tail.len(), "nothing after the 503 frame");

    // The listener is gone: no new connections after shutdown returns.
    assert!(
        TcpStream::connect(addr).is_err(),
        "shutdown must close the listener"
    );
}

#[test]
fn audit_log_can_be_polled_incrementally() {
    let controller = PolicyController::new(PolicyConfig::default());
    let mut t = pwm_core::transport::InProcessTransport::new(controller.clone(), "default");

    t.evaluate_transfers(vec![spec(1)]).unwrap();
    let first_batch = controller.audit_since("default", 0).unwrap();
    assert_eq!(first_batch.len(), 1);
    let next_seq = first_batch.last().unwrap().seq + 1;

    t.evaluate_transfers(vec![spec(2), spec(2)]).unwrap();
    let second_batch = controller.audit_since("default", next_seq).unwrap();
    // Two evaluations recorded (one execute, one duplicate-skip), nothing
    // from before the cursor.
    assert_eq!(second_batch.len(), 2);
    assert!(second_batch.iter().all(|r| r.seq >= next_seq));
    let skipped = second_batch
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                pwm_core::PolicyEvent::TransferEvaluated {
                    skipped: Some(_),
                    ..
                }
            )
        })
        .count();
    assert_eq!(skipped, 1);
}
