//! Integration: multi-session REST lifecycle — per-experiment sessions with
//! different configurations, mixed JSON/XML clients against one server, and
//! incremental audit-log polling.

use pwm_core::transport::PolicyTransport;
use pwm_core::{PolicyConfig, PolicyController, TransferSpec, Url, WorkflowId};
use pwm_rest::{PolicyRestClient, PolicyRestServer, WireFormat};

fn spec(n: u32) -> TransferSpec {
    TransferSpec {
        source: Url::new("gsiftp", "gridftp-vm", format!("/d/f{n}.dat")),
        dest: Url::new("file", "obelix-nfs", format!("/s/f{n}.dat")),
        bytes: 1_000_000,
        requested_streams: None,
        workflow: WorkflowId(1),
        cluster: None,
        priority: None,
    }
}

#[test]
fn per_experiment_sessions_have_independent_configs_and_state() {
    let controller = PolicyController::new(PolicyConfig::default());
    let server = PolicyRestServer::start(controller).unwrap();

    // Two experiment sessions, as the paper configures "prior to each test".
    let exp_a = PolicyRestClient::new(server.addr(), "exp-threshold-50");
    exp_a
        .put_config(
            &PolicyConfig::default()
                .with_default_streams(8)
                .with_threshold(50),
        )
        .unwrap();
    let exp_b = PolicyRestClient::new(server.addr(), "exp-threshold-200");
    exp_b
        .put_config(
            &PolicyConfig::default()
                .with_default_streams(12)
                .with_threshold(200),
        )
        .unwrap();

    let mut a = exp_a.clone();
    let mut b = exp_b.clone();
    let advice_a = a.evaluate_transfers(vec![spec(1)]).unwrap();
    let advice_b = b.evaluate_transfers(vec![spec(1)]).unwrap();
    assert_eq!(advice_a[0].streams, 8);
    assert_eq!(advice_b[0].streams, 12);
    // Same file in both sessions — no cross-session dedup.
    assert!(advice_a[0].should_execute());
    assert!(advice_b[0].should_execute());

    // Independent ledgers.
    let sa = exp_a.status().unwrap();
    let sb = exp_b.status().unwrap();
    assert_eq!(sa.snapshot.host_pairs[0].allocated, 8);
    assert_eq!(sb.snapshot.host_pairs[0].allocated, 12);
}

#[test]
fn json_and_xml_clients_share_one_session() {
    let controller = PolicyController::new(PolicyConfig::default());
    let server = PolicyRestServer::start(controller).unwrap();
    let mut json = PolicyRestClient::new(server.addr(), "default");
    let mut xml = PolicyRestClient::new(server.addr(), "default").with_format(WireFormat::Xml);

    // The JSON client stages a file; the XML client's duplicate is skipped —
    // one policy session, two wire formats.
    let first = json.evaluate_transfers(vec![spec(7)]).unwrap();
    assert!(first[0].should_execute());
    let second = xml.evaluate_transfers(vec![spec(7)]).unwrap();
    assert!(!second[0].should_execute());
}

#[test]
fn audit_log_can_be_polled_incrementally() {
    let controller = PolicyController::new(PolicyConfig::default());
    let mut t = pwm_core::transport::InProcessTransport::new(controller.clone(), "default");

    t.evaluate_transfers(vec![spec(1)]).unwrap();
    let first_batch = controller.audit_since("default", 0).unwrap();
    assert_eq!(first_batch.len(), 1);
    let next_seq = first_batch.last().unwrap().seq + 1;

    t.evaluate_transfers(vec![spec(2), spec(2)]).unwrap();
    let second_batch = controller.audit_since("default", next_seq).unwrap();
    // Two evaluations recorded (one execute, one duplicate-skip), nothing
    // from before the cursor.
    assert_eq!(second_batch.len(), 2);
    assert!(second_batch.iter().all(|r| r.seq >= next_seq));
    let skipped = second_batch
        .iter()
        .filter(|r| {
            matches!(
                r.event,
                pwm_core::PolicyEvent::TransferEvaluated {
                    skipped: Some(_),
                    ..
                }
            )
        })
        .count();
    assert_eq!(skipped, 1);
}
