//! Shape assertions for the paper's figures: who wins, by roughly what
//! factor, and where the effects vanish. These are the reproduction
//! contract — absolute seconds are simulator-specific, orderings are not.
//!
//! Kept to two seeds and the @8-streams cut of each figure so the suite
//! stays minutes, not hours; the `repro` binary regenerates the full grids.

use pwm_bench::{mb, MontageExperiment, PolicyMode};

fn makespan(extra: u64, streams: u32, mode: PolicyMode) -> f64 {
    let exp = MontageExperiment::paper_setup(extra, streams, mode);
    let (summary, _) = exp.run_seeds(&[1, 2]);
    summary.mean
}

/// Fig. 7 (100 MB): threshold 50 beats no-policy; threshold 200 is much
/// worse than 50 ("28.8% worse" in the paper; we require > 12%).
#[test]
fn fig7_shape_100mb() {
    let g50 = makespan(mb(100), 8, PolicyMode::Greedy { threshold: 50 });
    let g200 = makespan(mb(100), 8, PolicyMode::Greedy { threshold: 200 });
    let np = makespan(mb(100), 4, PolicyMode::NoPolicy);
    assert!(
        g50 < np,
        "greedy-50 ({g50:.0}s) must beat no-policy ({np:.0}s) at 100 MB"
    );
    assert!(
        np < g50 * 1.12,
        "no-policy should trail by a modest margin, not {:.1}%",
        (np / g50 - 1.0) * 100.0
    );
    assert!(
        g200 > g50 * 1.12,
        "greedy-200 ({g200:.0}s) must be substantially worse than greedy-50 ({g50:.0}s)"
    );
}

/// Fig. 8 (500 MB): thresholds 50 and 100 both beat no-policy; 200 degrades
/// at high stream defaults.
#[test]
fn fig8_shape_500mb() {
    let g50 = makespan(mb(500), 8, PolicyMode::Greedy { threshold: 50 });
    let g100 = makespan(mb(500), 8, PolicyMode::Greedy { threshold: 100 });
    let np = makespan(mb(500), 4, PolicyMode::NoPolicy);
    let g200_high = makespan(mb(500), 12, PolicyMode::Greedy { threshold: 200 });
    assert!(g50 < np, "greedy-50 must beat no-policy at 500 MB");
    assert!(
        g100 < np * 1.04,
        "greedy-100 ({g100:.0}s) should stay competitive with no-policy ({np:.0}s)"
    );
    assert!(
        g200_high > g50 * 1.08,
        "greedy-200 at 12 streams ({g200_high:.0}s) must degrade vs greedy-50 ({g50:.0}s)"
    );
}

/// Fig. 9 (1 GB): "no clear advantage to using any of the greedy threshold
/// values over the default Pegasus performance" — everything within a
/// narrow band.
#[test]
fn fig9_shape_1gb() {
    let g50 = makespan(mb(1000), 8, PolicyMode::Greedy { threshold: 50 });
    let g100 = makespan(mb(1000), 8, PolicyMode::Greedy { threshold: 100 });
    let np = makespan(mb(1000), 4, PolicyMode::NoPolicy);
    for (label, v) in [("greedy-100", g100), ("no-policy", np)] {
        let gap = (v / g50 - 1.0).abs();
        assert!(
            gap < 0.06,
            "{label} differs from greedy-50 by {:.1}% at 1 GB; the paper finds no clear winner",
            gap * 100.0
        );
    }
}

/// Fig. 6 (10 MB): "not much difference in the behavior" — policy vs
/// no-policy within a few percent.
#[test]
fn fig6_shape_10mb() {
    let g50 = makespan(mb(10), 8, PolicyMode::Greedy { threshold: 50 });
    let np = makespan(mb(10), 4, PolicyMode::NoPolicy);
    let gap = (g50 / np - 1.0).abs();
    assert!(
        gap < 0.08,
        "10 MB extras: policy and no-policy should be close (gap {:.1}%)",
        gap * 100.0
    );
}

/// Fig. 5's two claims: execution time rises strongly with extra-file size
/// beyond 100 MB, and the default-streams setting has little impact when
/// the threshold caps total streams at 50.
#[test]
fn fig5_shape_size_dominates_streams() {
    let sizes = [0u64, mb(10), mb(100), mb(500)];
    let mut last = 0.0;
    for &size in &sizes {
        let m = makespan(size, 8, PolicyMode::Greedy { threshold: 50 });
        assert!(
            m > last,
            "makespan must grow with extra-file size ({size} bytes → {m:.0}s ≤ {last:.0}s)"
        );
        last = m;
    }
    // 500 MB ≫ 10 MB: the "significant effect ... for file sizes over 100
    // Megabytes".
    let m10 = makespan(mb(10), 8, PolicyMode::Greedy { threshold: 50 });
    let m500 = makespan(mb(500), 8, PolicyMode::Greedy { threshold: 50 });
    assert!(m500 > m10 * 10.0);

    // Default streams 4 vs 12 at threshold 50: small impact ("increasing
    // the default number of streams per transfer has relatively little
    // impact on performance").
    let s4 = makespan(mb(100), 4, PolicyMode::Greedy { threshold: 50 });
    let s12 = makespan(mb(100), 12, PolicyMode::Greedy { threshold: 50 });
    let gap = (s12 / s4 - 1.0).abs();
    assert!(
        gap < 0.06,
        "default streams should barely matter at threshold 50 (gap {:.1}%)",
        gap * 100.0
    );
}

/// Table IV, simulated: the peak concurrent streams observed on the WAN
/// never exceed the paper's allocation bound for the configuration.
#[test]
fn table4_bounds_hold_in_simulation() {
    for (threshold, default, bound) in [(50, 8, 63), (50, 12, 65), (100, 10, 110)] {
        let exp = MontageExperiment::paper_setup(mb(10), default, PolicyMode::Greedy { threshold });
        let stats = exp.run_once(1);
        let peak = stats.peak_wan_streams.unwrap();
        assert!(
            peak <= bound,
            "threshold {threshold}, default {default}: WAN peak {peak} > Table IV bound {bound}"
        );
    }
}
