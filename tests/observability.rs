//! Integration: the unified observability subsystem end to end — a traced
//! seeded Montage run exporting a Chrome-trace flame timeline, and a
//! Prometheus `/metrics` scrape over the REST interface after real policy
//! traffic.

use pwm_bench::{mb, MontageExperiment, PolicyMode};
use pwm_core::transport::PolicyTransport;
use pwm_core::{PolicyConfig, PolicyController, TransferSpec, Url, WorkflowId};
use pwm_obs::{validate_chrome_trace, JsonValue};
use pwm_rest::{PolicyRestClient, PolicyRestServer};

fn small_experiment() -> MontageExperiment {
    MontageExperiment::paper_setup(mb(1), 4, PolicyMode::Greedy { threshold: 50 })
}

#[test]
fn traced_montage_run_round_trips_through_chrome_trace() {
    let (stats, obs) = small_experiment().run_once_traced(1);
    assert!(stats.success);

    // The export is valid JSON with properly nested spans (the validator
    // checks every child against its parent's [ts, ts+dur] interval).
    let trace = obs.tracer.chrome_trace_json();
    let events = validate_chrome_trace(&trace).expect("export must validate");
    assert!(
        events > 500,
        "a Montage run yields many events, got {events}"
    );

    // The flame timeline carries every instrumented layer: workflow job
    // rows, transfer + net flow rows, policy RPC rows, and the policy
    // engine's evaluation instants.
    let doc = JsonValue::parse(&trace).expect("parseable");
    let rows = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
    for cat in [
        "stage_in",
        "compute",
        "cleanup",
        "transfer",
        "net",
        "policy_rpc",
        "policy",
    ] {
        assert!(
            rows.iter()
                .any(|e| e.get("cat").and_then(|c| c.as_str()) == Some(cat)),
            "no {cat} events in trace"
        );
    }

    // Every JSONL line parses on its own (streaming consumers).
    let jsonl = obs.tracer.jsonl();
    assert!(jsonl.lines().count() >= events);
    for line in jsonl.lines().take(50) {
        JsonValue::parse(line).expect("jsonl line parses");
    }
}

#[test]
fn same_seed_exports_identical_traces() {
    let a = small_experiment()
        .run_once_traced(3)
        .1
        .tracer
        .chrome_trace_json();
    let b = small_experiment()
        .run_once_traced(3)
        .1
        .tracer
        .chrome_trace_json();
    assert_eq!(a, b, "sim-time tracing must be deterministic per seed");
    let c = small_experiment()
        .run_once_traced(4)
        .1
        .tracer
        .chrome_trace_json();
    assert_ne!(a, c, "different seeds should differ");
}

#[test]
fn metrics_scrape_reflects_rest_traffic() {
    let controller = PolicyController::new(PolicyConfig::default());
    let server = PolicyRestServer::start(controller.clone()).unwrap();
    controller
        .set_sim_clock(
            pwm_core::DEFAULT_SESSION,
            pwm_core::SharedSimClock::default(),
        )
        .unwrap();
    let mut client = PolicyRestClient::new(server.addr(), pwm_core::DEFAULT_SESSION);

    for n in 0..3u32 {
        let advice = client
            .evaluate_transfers(vec![TransferSpec {
                source: Url::new("gsiftp", "gridftp-vm", format!("/d/f{n}.dat")),
                dest: Url::new("file", "obelix-nfs", format!("/s/f{n}.dat")),
                bytes: 1_000_000,
                requested_streams: None,
                workflow: WorkflowId(1),
                cluster: None,
                priority: None,
            }])
            .unwrap();
        assert!(advice[0].should_execute());
    }

    let text = client.metrics().unwrap();
    assert!(
        text.contains("pwm_policy_transfer_requests_total{session=\"default\"} 3"),
        "scrape missing request counter:\n{text}"
    );
    assert!(text.contains("# TYPE pwm_policy_advice_latency_micros histogram"));
    assert!(text.contains("pwm_rules_firings_total"));

    // The event loop publishes its own readiness/queue-depth series on the
    // same scrape.
    for metric in [
        "pwm_rest_event_loop_wakeups_total",
        "pwm_rest_requests_total",
        "pwm_rest_batched_requests_total",
        "pwm_rest_open_connections",
        "pwm_rest_write_backlog_bytes",
    ] {
        assert!(text.contains(metric), "scrape missing {metric}:\n{text}");
    }

    // The per-session trace dump validates too (evaluation instants were
    // stamped with the attached sim clock).
    let trace = client.trace().unwrap();
    let events = validate_chrome_trace(&trace).expect("session trace validates");
    assert!(events >= 3, "one instant per evaluation, got {events}");
}

/// A sharded session's counters appear once per shard under a `shard="N"`
/// label, and pipelined traffic drives the event loop's batched counter.
#[test]
fn sharded_session_metrics_carry_per_shard_labels() {
    let controller = PolicyController::new(PolicyConfig::default());
    controller.create_sharded_session("grid", PolicyConfig::default(), 4);
    let server = PolicyRestServer::start(controller).unwrap();
    let client = PolicyRestClient::new(server.addr(), "grid");

    // 32 requests over 32 distinct host pairs, pipelined in one window so
    // the event loop collapses them into batched rules passes.
    let groups: Vec<Vec<TransferSpec>> = (0..32u32)
        .map(|n| {
            vec![TransferSpec {
                source: Url::new("gsiftp", format!("gridftp-{n}"), format!("/d/f{n}.dat")),
                dest: Url::new("file", format!("scratch-{n}"), format!("/s/f{n}.dat")),
                bytes: 1_000_000,
                requested_streams: None,
                workflow: WorkflowId(1),
                cluster: None,
                priority: None,
            }]
        })
        .collect();
    let advice = client.evaluate_transfers_pipelined(&groups).unwrap();
    assert_eq!(advice.len(), 32);

    let text = client.metrics().unwrap();

    // Every shard that saw traffic reports under its own label, and the
    // per-shard counts add up to exactly the 32 requests issued — the
    // series partition the session's traffic, they don't duplicate it.
    let mut shards_seen = 0u32;
    let mut sum = 0u64;
    for line in text.lines() {
        if let Some(rest) =
            line.strip_prefix("pwm_policy_transfer_requests_total{session=\"grid\",shard=\"")
        {
            shards_seen += 1;
            let count = rest
                .split_once("\"} ")
                .expect("well-formed series line")
                .1
                .parse::<u64>()
                .expect("counter value");
            sum += count;
        }
    }
    assert!(
        shards_seen >= 2,
        "32 host pairs must spread over several shards:\n{text}"
    );
    assert_eq!(sum, 32, "per-shard request counters must sum to the total");

    // The batched path served the pipelined window.
    let batched = text
        .lines()
        .find(|l| l.starts_with("pwm_rest_batched_requests_total"))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse::<u64>().ok())
        .expect("batched counter present");
    assert!(
        batched >= 32,
        "a 32-deep pipelined window must be served by the batched path, got {batched}"
    );
}

/// The simulation event queue's health series reach the Prometheus render
/// end to end: a traced run (executor → network → queue) publishes
/// `sim_queue_*` gauges labeled with the queue kind, and the ladder's
/// geometry series (current bucket / rungs / overflow) are present. Pinning
/// the experiment to the heap oracle relabels the same series.
#[test]
fn queue_health_series_reach_the_metrics_render() {
    let (stats, obs) = small_experiment().run_once_traced(7);
    assert!(stats.success);
    let text = obs.registry.render_prometheus();
    for metric in [
        "sim_queue_depth{queue=\"ladder\"}",
        "sim_queue_current_bucket_events{queue=\"ladder\"}",
        "sim_queue_rung_events{queue=\"ladder\"}",
        "sim_queue_overflow_events{queue=\"ladder\"}",
        "sim_queue_active_rungs{queue=\"ladder\"}",
        "sim_queue_cancelled_total{queue=\"ladder\"}",
    ] {
        assert!(text.contains(metric), "scrape missing {metric}:\n{text}");
    }
    // The series carry parseable sample values (the engine moves ETAs with
    // in-place `reschedule`, so the cancel counter may legitimately read 0;
    // it must still render as a number).
    for name in ["sim_queue_depth", "sim_queue_cancelled_total"] {
        let v = text
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or_else(|| panic!("{name} must render a numeric sample"));
        assert!(v.is_finite() && v >= 0.0, "{name} rendered {v}");
    }

    // The queue knob relabels the series with the heap oracle's name.
    let mut exp = small_experiment();
    exp.queue = pwm_sim::QueueKind::Heap;
    let (stats, obs) = exp.run_once_traced(7);
    assert!(stats.success);
    let text = obs.registry.render_prometheus();
    assert!(
        text.contains("sim_queue_depth{queue=\"heap\"}"),
        "heap-pinned run must label queue series with queue=\"heap\":\n{text}"
    );
}
