//! Integration: the unified observability subsystem end to end — a traced
//! seeded Montage run exporting a Chrome-trace flame timeline, and a
//! Prometheus `/metrics` scrape over the REST interface after real policy
//! traffic.

use pwm_bench::{mb, MontageExperiment, PolicyMode};
use pwm_core::transport::PolicyTransport;
use pwm_core::{PolicyConfig, PolicyController, TransferSpec, Url, WorkflowId};
use pwm_obs::{validate_chrome_trace, JsonValue};
use pwm_rest::{PolicyRestClient, PolicyRestServer};

fn small_experiment() -> MontageExperiment {
    MontageExperiment::paper_setup(mb(1), 4, PolicyMode::Greedy { threshold: 50 })
}

#[test]
fn traced_montage_run_round_trips_through_chrome_trace() {
    let (stats, obs) = small_experiment().run_once_traced(1);
    assert!(stats.success);

    // The export is valid JSON with properly nested spans (the validator
    // checks every child against its parent's [ts, ts+dur] interval).
    let trace = obs.tracer.chrome_trace_json();
    let events = validate_chrome_trace(&trace).expect("export must validate");
    assert!(
        events > 500,
        "a Montage run yields many events, got {events}"
    );

    // The flame timeline carries every instrumented layer: workflow job
    // rows, transfer + net flow rows, policy RPC rows, and the policy
    // engine's evaluation instants.
    let doc = JsonValue::parse(&trace).expect("parseable");
    let rows = doc.get("traceEvents").and_then(|v| v.as_arr()).unwrap();
    for cat in [
        "stage_in",
        "compute",
        "cleanup",
        "transfer",
        "net",
        "policy_rpc",
        "policy",
    ] {
        assert!(
            rows.iter()
                .any(|e| e.get("cat").and_then(|c| c.as_str()) == Some(cat)),
            "no {cat} events in trace"
        );
    }

    // Every JSONL line parses on its own (streaming consumers).
    let jsonl = obs.tracer.jsonl();
    assert!(jsonl.lines().count() >= events);
    for line in jsonl.lines().take(50) {
        JsonValue::parse(line).expect("jsonl line parses");
    }
}

#[test]
fn same_seed_exports_identical_traces() {
    let a = small_experiment()
        .run_once_traced(3)
        .1
        .tracer
        .chrome_trace_json();
    let b = small_experiment()
        .run_once_traced(3)
        .1
        .tracer
        .chrome_trace_json();
    assert_eq!(a, b, "sim-time tracing must be deterministic per seed");
    let c = small_experiment()
        .run_once_traced(4)
        .1
        .tracer
        .chrome_trace_json();
    assert_ne!(a, c, "different seeds should differ");
}

#[test]
fn metrics_scrape_reflects_rest_traffic() {
    let controller = PolicyController::new(PolicyConfig::default());
    let server = PolicyRestServer::start(controller.clone()).unwrap();
    controller
        .set_sim_clock(
            pwm_core::DEFAULT_SESSION,
            pwm_core::SharedSimClock::default(),
        )
        .unwrap();
    let mut client = PolicyRestClient::new(server.addr(), pwm_core::DEFAULT_SESSION);

    for n in 0..3u32 {
        let advice = client
            .evaluate_transfers(vec![TransferSpec {
                source: Url::new("gsiftp", "gridftp-vm", format!("/d/f{n}.dat")),
                dest: Url::new("file", "obelix-nfs", format!("/s/f{n}.dat")),
                bytes: 1_000_000,
                requested_streams: None,
                workflow: WorkflowId(1),
                cluster: None,
                priority: None,
            }])
            .unwrap();
        assert!(advice[0].should_execute());
    }

    let text = client.metrics().unwrap();
    assert!(
        text.contains("pwm_policy_transfer_requests_total{session=\"default\"} 3"),
        "scrape missing request counter:\n{text}"
    );
    assert!(text.contains("# TYPE pwm_policy_advice_latency_micros histogram"));
    assert!(text.contains("pwm_rules_firings_total"));

    // The per-session trace dump validates too (evaluation instants were
    // stamped with the attached sim clock).
    let trace = client.trace().unwrap();
    let events = validate_chrome_trace(&trace).expect("session trace validates");
    assert!(events >= 3, "one instant per evaluation, got {events}");
}
