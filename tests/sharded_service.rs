//! Integration: the sharded Policy Service.
//!
//! Three acceptance properties of the host-pair sharding layer:
//!
//! 1. **Ring stability** (proptest) — the consistent-hash ring assigns
//!    host pairs deterministically, and growing or shrinking the ring by
//!    one shard moves only the keys the added/removed shard owns (~K/n of
//!    them), never reshuffling the rest.
//! 2. **Equivalence** — a sharded + batched service hands out the same
//!    advice and audit outcomes as the single-domain service for a
//!    same-seed Montage session, with per-shard ordering preserved; a
//!    one-shard sharded service is bit-identical to the unsharded one.
//! 3. **Per-shard crash recovery** — with a seeded `CrashPoint` injected
//!    into every shard's WAL, each shard freezes independently after its
//!    own N-th append, and `ShardedPolicyService::recover_from` rebuilds
//!    every shard `PartialEq`-identical to an uninterrupted reference
//!    that applied exactly the commands that shard's disk retained.

use pwm_core::{
    AuditRecord, CrashPoint, DurabilityConfig, HashRing, PolicyConfig, PolicyEvent, PolicyService,
    ShardedPolicyService, TransferAction, TransferAdvice, TransferOutcome, TransferSpec, Url,
    WorkflowId,
};
use pwm_montage::{montage_replicas, montage_workflow, MontageConfig};
use pwm_net::paper_testbed;
use pwm_workflow::{plan, ComputeSite, PlanJobKind, PlannerConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;

// ---------------------------------------------------------------------------
// 1. Consistent-hash ring properties.
// ---------------------------------------------------------------------------

mod ring_props {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic host-pair keys derived from proptest-chosen indices.
    fn pairs(keys: &[(u16, u16)]) -> Vec<(String, String)> {
        keys.iter()
            .map(|&(a, b)| (format!("src-{a}"), format!("dst-{b}")))
            .collect()
    }

    proptest! {
        /// Two independently built rings of the same size agree on every
        /// key: placement is a pure function of (key, shard count).
        #[test]
        fn assignment_is_stable(
            shards in 1u16..9,
            keys in proptest::collection::vec((any::<u16>(), any::<u16>()), 1..256),
        ) {
            let a = HashRing::new(shards);
            let b = HashRing::new(shards);
            for (s, d) in pairs(&keys) {
                let owner = a.shard_for_pair(&s, &d);
                prop_assert_eq!(owner, b.shard_for_pair(&s, &d));
                prop_assert!(owner < shards);
            }
        }

        /// Growing the ring from n to n+1 shards moves only the keys the
        /// new shard captures — every reassigned key lands on shard n, so
        /// at most ~K/(n+1) keys move and nothing else is reshuffled.
        #[test]
        fn growing_moves_only_the_new_shards_keys(
            shards in 1u16..8,
            keys in proptest::collection::vec((any::<u16>(), any::<u16>()), 32..512),
        ) {
            let small = HashRing::new(shards);
            let grown = HashRing::new(shards + 1);
            let mut moved = 0usize;
            for (s, d) in pairs(&keys) {
                let before = small.shard_for_pair(&s, &d);
                let after = grown.shard_for_pair(&s, &d);
                if before != after {
                    prop_assert_eq!(
                        after, shards,
                        "a key moving on growth must move to the new shard"
                    );
                    moved += 1;
                }
            }
            // Expected share is K/(n+1); vnode placement is uneven, so
            // allow a wide margin — the point is "a slice, not a reshuffle".
            let bound = 3 * keys.len() / (shards as usize + 1) + 8;
            prop_assert!(
                moved <= bound,
                "grow {shards}->{} moved {moved} of {} keys (bound {bound})",
                shards + 1,
                keys.len()
            );
        }

        /// Shrinking is the mirror image: only the removed shard's keys
        /// are redistributed.
        #[test]
        fn shrinking_moves_only_the_removed_shards_keys(
            shards in 1u16..8,
            keys in proptest::collection::vec((any::<u16>(), any::<u16>()), 32..512),
        ) {
            let grown = HashRing::new(shards + 1);
            let small = HashRing::new(shards);
            for (s, d) in pairs(&keys) {
                let before = grown.shard_for_pair(&s, &d);
                let after = small.shard_for_pair(&s, &d);
                if before != after {
                    prop_assert_eq!(
                        before, shards,
                        "a key moving on shrink must come from the removed shard"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Sharded + batched ≡ single-domain, on a seeded Montage session.
// ---------------------------------------------------------------------------

/// The stage-in request groups of a seeded Montage plan, in plan order —
/// exactly the specs the workflow executor submits per staging job.
fn montage_stage_in_groups(seed: u64) -> Vec<Vec<TransferSpec>> {
    let (_topo, gridftp, apache, nfs) = paper_testbed();
    let site = ComputeSite {
        name: "obelix".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: nfs,
        storage_host_name: "obelix-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    let wf = montage_workflow(&MontageConfig {
        extra_file_bytes: 10_000_000,
        seed,
        ..Default::default()
    });
    let rc = montage_replicas(&wf, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
    let mut groups = Vec::new();
    for job in p.jobs() {
        if let PlanJobKind::StageIn { transfers, cluster } = &job.kind {
            groups.push(
                transfers
                    .iter()
                    .map(|pt| TransferSpec {
                        source: pt.source.clone(),
                        dest: pt.dest.clone(),
                        bytes: pt.bytes,
                        requested_streams: None,
                        workflow: job.workflow.unwrap_or(WorkflowId(1)),
                        cluster: cluster.map(pwm_core::ClusterId),
                        priority: Some(job.priority),
                    })
                    .collect(),
            );
        }
    }
    assert!(groups.len() >= 80, "Montage has ~89 staging jobs");
    groups
}

/// Advice with the service-assigned identifiers masked out: shards mint
/// ids and group ids from disjoint namespaces, so equivalence is about
/// the decision content, not the raw numbers.
fn advice_content(a: &TransferAdvice) -> (Url, Url, TransferAction, u32, u32) {
    (
        a.source.clone(),
        a.dest.clone(),
        a.action,
        a.streams,
        a.order,
    )
}

/// An audit record's content modulo id namespacing.
fn audit_content(r: &AuditRecord) -> String {
    match &r.event {
        PolicyEvent::TransferEvaluated {
            streams, skipped, ..
        } => format!("eval streams={streams} skipped={skipped:?}"),
        PolicyEvent::TransferReported { success, .. } => format!("reported success={success}"),
        other => format!("{other:?}"),
    }
}

#[test]
fn sharded_batched_service_matches_single_domain_on_a_montage_session() {
    let config = PolicyConfig::default()
        .with_default_streams(8)
        .with_threshold(50);
    let groups = montage_stage_in_groups(1);

    let mut single = PolicyService::new(config.clone());
    let sharded = ShardedPolicyService::new(config.clone(), 4);
    let one_shard = ShardedPolicyService::new(config, 1);

    // id → owning shard, for projecting the single-domain audit per shard.
    let mut single_id_shard: BTreeMap<u64, u16> = BTreeMap::new();

    // Drive the plan's staging jobs in batched windows of four groups —
    // the event loop's pipelined-batch shape — reporting every granted
    // transfer complete between windows, as the PTT does.
    for window in groups.chunks(4) {
        let win: Vec<Vec<TransferSpec>> = window.to_vec();
        let a_single = single.evaluate_transfer_groups(win.clone());
        let a_sharded = sharded.evaluate_transfer_groups(win.clone());
        let a_one = one_shard.evaluate_transfer_groups(win.clone());

        assert_eq!(
            a_single, a_one,
            "a one-shard sharded service must be bit-identical to the \
             unsharded service (same ids, groups, everything)"
        );
        assert_eq!(a_single.len(), a_sharded.len());
        for (gs, gh) in a_single.iter().zip(&a_sharded) {
            let lhs: Vec<_> = gs.iter().map(advice_content).collect();
            let rhs: Vec<_> = gh.iter().map(advice_content).collect();
            assert_eq!(lhs, rhs, "sharded advice content diverged");
        }

        for advice in a_single.iter().flatten() {
            single_id_shard.insert(
                advice.id.0,
                sharded
                    .ring()
                    .shard_for_pair(&advice.source.host, &advice.dest.host),
            );
        }

        // Report completions to each service under its own id namespace.
        let outs = |advice: &[Vec<TransferAdvice>]| -> Vec<TransferOutcome> {
            advice
                .iter()
                .flatten()
                .filter(|a| a.should_execute())
                .map(|a| TransferOutcome {
                    id: a.id,
                    success: true,
                })
                .collect()
        };
        single.report_transfers(outs(&a_single));
        sharded.report_transfers(outs(&a_sharded));
        one_shard.report_transfers(outs(&a_one));
    }

    // Per-shard ordering: shard s's own audit trail must equal the
    // single-domain trail filtered to the requests shard s owns — same
    // events, same relative order, numbering aside.
    let single_audit = single.audit_since(0);
    for s in 0..sharded.shard_count() {
        let projected: Vec<String> = single_audit
            .iter()
            .filter(|r| {
                let id = match &r.event {
                    PolicyEvent::TransferEvaluated { id, .. } => id.0,
                    PolicyEvent::TransferReported { id, .. } => id.0,
                    _ => return true,
                };
                single_id_shard.get(&id) == Some(&s)
            })
            .map(audit_content)
            .collect();
        let shard_audit: Vec<String> = sharded
            .with_shard(s, |p| p.audit_since(0))
            .iter()
            .map(audit_content)
            .collect();
        assert_eq!(
            projected, shard_audit,
            "shard {s}: audit trail must be the single-domain trail \
             restricted to this shard's host pairs, in the same order"
        );
    }

    // Aggregate monitoring agrees too: same grant totals per host pair.
    let mut lhs = single.snapshot().host_pairs;
    let mut rhs = sharded.snapshot().host_pairs;
    pwm_core::shard::sort_host_pairs(&mut lhs);
    pwm_core::shard::sort_host_pairs(&mut rhs);
    assert_eq!(lhs, rhs, "host-pair ledgers diverged");
}

// ---------------------------------------------------------------------------
// 3. Per-shard WAL crash recovery.
// ---------------------------------------------------------------------------

/// Unique scratch directory (no tempfile crate in the dependency set).
fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pwm-it-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One logged command, replayed against a reference shard's public API.
enum ShardCmd {
    Evaluate(Vec<Vec<TransferSpec>>),
    Report(Vec<TransferOutcome>),
}

#[test]
fn every_shard_recovers_identically_from_its_seeded_crash_point() {
    // Each shard's sink freezes after its own N-th append (TornAppend
    // additionally tears the N-th frame, losing it).
    let cases: [(CrashPoint, u64); 2] = [
        (CrashPoint::AfterAppend(6), 6),
        (CrashPoint::TornAppend { append: 6, keep: 5 }, 5),
    ];
    for (crash, survived) in cases {
        let shards: u16 = 3;
        let config = PolicyConfig::default()
            .with_default_streams(4)
            .with_threshold(50);
        let dir = scratch_dir("shard-crash");

        let live = ShardedPolicyService::new(config.clone(), shards);
        live.enable_durability(
            &DurabilityConfig::new(&dir)
                .with_snapshot_every(4)
                .with_crash(crash),
        )
        .unwrap();

        // Mirror of what each shard's WAL receives: the sharded dispatcher
        // partitions every call per shard (order preserved), appending one
        // record per involved shard. Traffic spreads over 24 host pairs so
        // every shard sees appends well past the crash point.
        let mut logs: Vec<Vec<ShardCmd>> = (0..shards).map(|_| Vec::new()).collect();
        let spec = |round: usize, pair: usize, file: usize| TransferSpec {
            source: Url::new(
                "gsiftp",
                format!("src-{pair}"),
                format!("/d/r{round}-f{file}"),
            ),
            dest: Url::new(
                "file",
                format!("dst-{pair}"),
                format!("/s/r{round}-f{file}"),
            ),
            bytes: 1_000_000,
            requested_streams: None,
            workflow: WorkflowId(1 + (file % 2) as u64),
            cluster: None,
            priority: None,
        };
        for round in 0..10usize {
            let groups: Vec<Vec<TransferSpec>> = (0..24)
                .map(|pair| vec![spec(round, pair, round), spec(round, pair, round + 1)])
                .collect();
            // Partition the window exactly as the dispatcher does.
            let mut per_shard: Vec<Vec<Vec<TransferSpec>>> =
                (0..shards).map(|_| Vec::new()).collect();
            for g in &groups {
                let s = live
                    .ring()
                    .shard_for_pair(&g[0].source.host, &g[0].dest.host);
                per_shard[s as usize].push(g.clone());
            }
            for (s, gs) in per_shard.into_iter().enumerate() {
                if !gs.is_empty() {
                    logs[s].push(ShardCmd::Evaluate(gs));
                }
            }
            let advice = live.evaluate_transfer_groups(groups);

            // Report every grant; outcomes route back by id namespace.
            let outcomes: Vec<TransferOutcome> = advice
                .iter()
                .flatten()
                .filter(|a| a.should_execute())
                .map(|a| TransferOutcome {
                    id: a.id,
                    success: round % 3 != 2,
                })
                .collect();
            let mut per_shard: Vec<Vec<TransferOutcome>> =
                (0..shards).map(|_| Vec::new()).collect();
            for o in &outcomes {
                per_shard[PolicyService::shard_of_transfer(o.id) as usize].push(*o);
            }
            for (s, os) in per_shard.into_iter().enumerate() {
                if !os.is_empty() {
                    logs[s].push(ShardCmd::Report(os));
                }
            }
            live.report_transfers(outcomes);
        }
        assert!(
            live.durability_crashed(),
            "{crash:?}: every shard got 20 appends, all must have crashed"
        );

        // Recover all shards from disk and compare each against an
        // uninterrupted reference that applied exactly the surviving
        // prefix of that shard's command stream.
        let recovered = ShardedPolicyService::recover_from(&dir, shards).unwrap();
        for s in 0..shards {
            let mut reference = PolicyService::with_shard(config.clone(), s);
            for cmd in logs[s as usize].iter().take(survived as usize) {
                match cmd {
                    ShardCmd::Evaluate(gs) => {
                        reference.evaluate_transfer_groups(gs.clone());
                    }
                    ShardCmd::Report(os) => reference.report_transfers(os.clone()),
                }
            }
            let (rec_state, rec_snap) =
                recovered.with_shard(s, |p| (p.durable_state(), p.snapshot()));
            assert_eq!(
                rec_state,
                reference.durable_state(),
                "shard {s}: recovery after {crash:?} must equal the \
                 uninterrupted {survived}-record prefix"
            );
            assert_eq!(
                rec_snap,
                reference.snapshot(),
                "shard {s}: snapshot diverged"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
