//! End-to-end determinism: the raw-speed core must not cost reproducibility.
//!
//! The arena fact store, the indexed event queue (in-place `reschedule`
//! instead of cancel + schedule), and the SoA flow table all recycle ids and
//! slots aggressively. Any order-sensitivity introduced there — iterating in
//! slot order instead of id order, a reschedule firing before a same-instant
//! tie it used to follow — would show up here first: two same-seed runs of
//! the full stack (workflow → policy → network → trace export) must be
//! *bit-identical*, not merely statistically close.
//!
//! Two probes:
//! - a traced Montage run: full [`RunStats`] equality (every field, floats
//!   exact, including the per-transfer record stream) plus a byte-identical
//!   Chrome-trace export;
//! - a chaos run (WAN flaps + replica outage): full `RunStats` equality and
//!   an identical fault fingerprint.
//!
//! Seed sensitivity is asserted alongside, so the equalities can't be
//! trivially satisfied by an empty or constant artifact.

use pwm_bench::{mb, run_chaos, ChaosConfig, MontageExperiment, PolicyMode};
use pwm_sim::{QueueKind, SimDuration, SimTime};

#[test]
fn same_seed_traced_runs_are_bit_identical() {
    let exp = MontageExperiment::paper_setup(mb(10), 8, PolicyMode::Greedy { threshold: 50 });
    let (stats_a, obs_a) = exp.run_once_traced(42);
    let (stats_b, obs_b) = exp.run_once_traced(42);

    // Full-struct equality: every counter, every float, and the complete
    // TransferRecord stream (source/dest/bytes/rates/timestamps per flow).
    assert_eq!(stats_a, stats_b, "same-seed RunStats diverged");
    assert!(stats_a.success);
    assert!(
        !stats_a.transfers.is_empty(),
        "equality would be vacuous without transfer records"
    );

    // The exported trace is byte-identical and well-formed.
    let trace_a = obs_a.tracer.chrome_trace_json();
    let trace_b = obs_b.tracer.chrome_trace_json();
    assert!(trace_a == trace_b, "same-seed trace exports differ");
    let events = pwm_obs::validate_chrome_trace(&trace_a).expect("valid Chrome trace");
    assert!(
        events > 100,
        "a traced Montage run should export many spans"
    );

    // A different seed perturbs both artifacts — the checks above are live.
    let (stats_c, obs_c) = exp.run_once_traced(43);
    assert_ne!(stats_a, stats_c, "seed must perturb RunStats");
    assert!(
        trace_a != obs_c.tracer.chrome_trace_json(),
        "seed must perturb the trace export"
    );
}

/// Swapping the event-queue implementation must be invisible: the ladder
/// queue bins events by epoch internally, but its pop order is exactly
/// `(time, seq)` — the same total order as the indexed-heap oracle — so a
/// full-stack run must be *bit-identical* under either queue, floats and
/// per-transfer record streams included. This is the end-to-end half of the
/// exactness argument; the per-operation half is the lockstep differential
/// suite in `crates/sim/tests/event_differential.rs`.
#[test]
fn same_seed_runs_are_bit_identical_across_queue_kinds() {
    let mut exp = MontageExperiment::paper_setup(mb(10), 8, PolicyMode::Greedy { threshold: 50 });
    exp.queue = QueueKind::Ladder;
    let (stats_ladder, obs_ladder) = exp.run_once_traced(42);
    exp.queue = QueueKind::Heap;
    let (stats_heap, obs_heap) = exp.run_once_traced(42);

    assert_eq!(
        stats_ladder, stats_heap,
        "RunStats diverged between ladder and heap queues"
    );
    assert!(stats_ladder.success);
    assert!(
        !stats_ladder.transfers.is_empty(),
        "equality would be vacuous without transfer records"
    );
    assert!(
        obs_ladder.tracer.chrome_trace_json() == obs_heap.tracer.chrome_trace_json(),
        "trace exports diverged between ladder and heap queues"
    );
}

#[test]
fn same_seed_chaos_runs_are_bit_identical() {
    // Compact chaos scenario (mirrors tests/chaos_faults.rs): two WAN
    // flaps, a degradation window, and a 45 s replica outage.
    let cfg = ChaosConfig {
        extra_file_bytes: 2_000_000,
        flaps: 2,
        degradations: 1,
        fault_horizon: SimDuration::from_secs(150),
        outage_start: SimTime::from_secs(30),
        outage_duration: SimDuration::from_secs(45),
        timeout_glitches: 1,
        transfer_failure_prob: 0.0,
        ..ChaosConfig::default()
    };
    let a = run_chaos(&cfg, 21);
    let b = run_chaos(&cfg, 21);

    // Stronger than the field-by-field chaos test: the whole RunStats —
    // transfer records included — and the fault fingerprint must match.
    assert_eq!(a.stats, b.stats, "same-seed chaos RunStats diverged");
    assert_eq!(a.fault_events, b.fault_events);
    assert_eq!(a.injected_service_failures, b.injected_service_failures);
    assert_eq!(a.failovers, b.failovers);
    assert!(a.stats.success);
    assert!(!a.stats.transfers.is_empty());
    assert!(!a.fault_events.is_empty(), "chaos plan must be non-trivial");
}
