//! Equivalence and determinism of the incremental component-local rate
//! allocator (`pwm-net`).
//!
//! The allocator-level proptest (`crates/net/src/sharing.rs`) already shows
//! the scratch-buffer progressive filling matches the naive reference within
//! 1e-6 relative on random topologies. These tests close the loop at the
//! system level: a full `Network` driven through churn produces the same
//! transfers whether rates come from the incremental engine (the default)
//! or the preserved full-recompute baseline (`set_full_recompute`), and a
//! same-seed `MontageExperiment::run_once` is exactly reproducible.

use pwm_bench::{MontageExperiment, PolicyMode};
use pwm_net::{FlowSpec, Network, SimDuration, SimTime, StreamModel, Topology};

/// A small multi-cluster topology: three disjoint host pairs with their own
/// WAN links plus one pair sharing the first cluster's destination, so the
/// flow↔link graph has both isolated components and a shared one.
fn test_topology() -> (Topology, Vec<(pwm_net::HostId, pwm_net::HostId)>) {
    let mut t = Topology::new();
    let mut pairs = Vec::new();
    for i in 0..3 {
        let src = t.add_host(format!("src{i}"), 50.0e6 + i as f64 * 10.0e6);
        let dst = t.add_host(format!("dst{i}"), 40.0e6);
        let wan = t.add_link(
            format!("wan{i}"),
            3.0e6 + i as f64 * 2.0e6,
            SimDuration::from_millis(20 + i as u64 * 10),
        );
        t.set_route(src, dst, vec![wan]);
        pairs.push((src, dst));
    }
    // A fourth source funnels into dst0, entangling it with cluster 0.
    let extra = t.add_host("extra", 60.0e6);
    let dst0 = pairs[0].1;
    let wan = t.add_link("wan-extra", 4.0e6, SimDuration::from_millis(15));
    t.set_route(extra, dst0, vec![wan]);
    pairs.push((extra, dst0));
    (t, pairs)
}

/// Drive a churn workload — staggered starts, every completion replaced
/// until 120 flows have been started, then drain — and return every
/// completed transfer as `(tag, completed_at, bytes)`, sorted by tag.
///
/// Weight jitter is disabled so the per-flow RNG draw order (which can
/// legitimately differ between modes when near-simultaneous completions
/// swap) cannot alter flow weights; everything else is the default model,
/// turbulence included.
fn run_workload(full_recompute: bool) -> Vec<(u64, SimTime, f64)> {
    let (topo, pairs) = test_topology();
    let model = StreamModel {
        flow_weight_jitter: 0.0,
        ..StreamModel::default()
    };
    let mut net = Network::with_seed(topo, model, 99);
    net.set_full_recompute(full_recompute);
    let total = 120u64;
    let mut next_tag = 0u64;
    let start = |net: &mut Network, cluster: usize, tag: u64| {
        let (src, dst) = pairs[cluster];
        net.start_flow(
            net.now(),
            FlowSpec {
                src,
                dst,
                bytes: 8.0e6 + (tag % 7) as f64 * 3.0e6,
                streams: 1 + (tag % 6) as u32,
                tag: tag * 8 + cluster as u64,
            },
        );
    };
    for cluster in 0..pairs.len() {
        for _ in 0..5 {
            start(&mut net, cluster, next_tag);
            next_tag += 1;
        }
    }
    let mut done = Vec::new();
    for _ in 0..100_000 {
        let Some(t) = net.next_wakeup() else { break };
        net.advance(t);
        for r in net.take_completed() {
            let cluster = (r.tag % 8) as usize;
            done.push((r.tag, r.completed_at, r.bytes));
            if next_tag < total {
                start(&mut net, cluster, next_tag);
                next_tag += 1;
            }
        }
        if net.live_flow_count() == 0 {
            break;
        }
    }
    assert_eq!(done.len() as u64, total, "workload must drain completely");
    done.sort_by_key(|(tag, _, _)| *tag);
    done
}

/// The incremental engine and the full-recompute baseline agree on *what*
/// completes and *when*. Completion times are compared at 0.1% relative:
/// beyond float-summation noise, the incremental engine deliberately stops
/// chasing the slow-start exponential tail once a flow is `ramp_done`
/// (caps freeze at ≥ 99.3% of asymptote instead of being re-evaluated
/// forever), which shifts completion times by a few parts in 1e5.
#[test]
fn incremental_matches_full_recompute_end_to_end() {
    let incremental = run_workload(false);
    let full = run_workload(true);
    assert_eq!(
        incremental.len(),
        full.len(),
        "modes completed different transfer counts"
    );
    for ((tag_i, at_i, bytes_i), (tag_f, at_f, bytes_f)) in incremental.iter().zip(&full) {
        assert_eq!(tag_i, tag_f, "completion order diverged");
        assert_eq!(bytes_i, bytes_f);
        let a = at_i.as_secs_f64();
        let b = at_f.as_secs_f64();
        assert!(
            (a - b).abs() <= 1e-3 * b.max(1.0),
            "flow {tag_i} completed at {a} (incremental) vs {b} (full)"
        );
    }
}

/// The incremental engine does strictly less allocation work than the
/// baseline on the same workload — the counters that back `BENCH_net.json`
/// must show it, not just wall-clock.
#[test]
fn incremental_allocates_fewer_flow_slots() {
    let run_stats = |full: bool| {
        let (topo, pairs) = test_topology();
        // Clean model: no turbulence or slow-start, so the only dirty links
        // are the ones membership actually changed and disjoint clusters
        // stay out of each other's components.
        let model = StreamModel {
            turbulence_per_event: 0.0,
            flow_weight_jitter: 0.0,
            ramp_tau: SimDuration::ZERO,
            ..StreamModel::default()
        };
        let mut net = Network::with_seed(topo, model, 7);
        net.set_full_recompute(full);
        for (cluster, &(src, dst)) in pairs.iter().enumerate() {
            for j in 0..4u64 {
                net.start_flow(
                    net.now(),
                    FlowSpec {
                        src,
                        dst,
                        bytes: 5.0e6,
                        streams: 2 + j as u32,
                        tag: cluster as u64,
                    },
                );
            }
        }
        net.run_to_completion(SimTime::from_secs(4000));
        assert_eq!(net.live_flow_count(), 0, "workload must drain");
        net.alloc_stats()
    };
    let inc = run_stats(false);
    let full = run_stats(true);
    assert!(
        inc.flows_allocated < full.flows_allocated,
        "incremental allocated {} flow-slots, full {}",
        inc.flows_allocated,
        full.flows_allocated
    );
    assert!(inc.skipped > 0, "no recompute was ever skipped");
}

/// Same-seed `MontageExperiment::run_once` is exactly reproducible: every
/// field of `RunStats`, including each transfer record, compares equal.
#[test]
fn same_seed_run_once_produces_identical_run_stats() {
    let exp = MontageExperiment::paper_setup(100_000_000, 8, PolicyMode::Greedy { threshold: 50 });
    let a = exp.run_once(1234);
    let b = exp.run_once(1234);
    assert_eq!(a, b, "same-seed runs diverged");
    assert!(a.success);
    assert!(!a.transfers.is_empty());
}
