//! End-to-end integration: plan and execute the paper's Montage workflow
//! with the Policy Service in the loop, over both in-process and real
//! loopback-HTTP transports.

use pwm_core::transport::InProcessTransport;
use pwm_core::{PolicyConfig, PolicyController, WorkflowId, DEFAULT_SESSION};
use pwm_montage::{montage_replicas, montage_workflow, MontageConfig};
use pwm_net::{paper_testbed, Network, StreamModel};
use pwm_rest::{PolicyRestClient, PolicyRestServer};
use pwm_sim::SimDuration;
use pwm_workflow::{
    plan, ComputeSite, ExecutorConfig, PlanJobKind, PlannerConfig, WorkflowExecutor,
};

fn obelix(nfs: pwm_net::HostId) -> ComputeSite {
    ComputeSite {
        name: "obelix".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: nfs,
        storage_host_name: "obelix-nfs".into(),
        scratch_dir: "/scratch".into(),
    }
}

#[test]
fn the_plan_has_the_papers_89_staging_jobs() {
    let (_topo, gridftp, apache, nfs) = paper_testbed();
    let wf = montage_workflow(&MontageConfig {
        extra_file_bytes: 10_000_000,
        seed: 1,
        ..Default::default()
    });
    let rc = montage_replicas(&wf, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let p = plan(&wf, &obelix(nfs), &rc, &PlannerConfig::default()).unwrap();
    assert_eq!(p.stage_in_count(), 89, "paper: 89 data staging jobs");
    assert_eq!(
        p.count_jobs(|j| matches!(j.kind, PlanJobKind::Compute { .. })),
        89
    );
    // Cleanup enabled: one cleanup per scratch file.
    assert!(p.count_jobs(|j| matches!(j.kind, PlanJobKind::Cleanup { .. })) > 100);
    p.validate().unwrap();
}

#[test]
fn montage_runs_to_completion_with_the_policy_service() {
    let (topo, gridftp, apache, nfs) = paper_testbed();
    let site = obelix(nfs);
    let wf = montage_workflow(&MontageConfig {
        extra_file_bytes: 10_000_000,
        seed: 1,
        ..Default::default()
    });
    let rc = montage_replicas(&wf, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();

    let controller = PolicyController::new(
        PolicyConfig::default()
            .with_default_streams(8)
            .with_threshold(50),
    );
    let wan = topo
        .links()
        .find(|(_, l)| l.name == "wan-tacc-isi")
        .map(|(id, _)| id);
    let network = Network::with_seed(topo, StreamModel::default(), 1);
    let transport = Box::new(InProcessTransport::new(controller.clone(), DEFAULT_SESSION));
    let exec = WorkflowExecutor::new(
        &p,
        &site,
        network,
        transport,
        ExecutorConfig {
            seed: 1,
            policy_call_latency: SimDuration::from_millis(75),
            watch_link: wan,
            ..Default::default()
        },
    );
    let (stats, _net) = exec.run();
    assert!(stats.success, "workflow must complete");
    assert_eq!(stats.staging_jobs, 89);
    // All 89 extra files (10 MB each) crossed the WAN.
    assert!(stats.bytes_staged >= 89.0 * 10.0e6);
    // Policy memory is fully cleaned up afterwards (cleanup jobs ran).
    let snap = controller.snapshot(DEFAULT_SESSION).unwrap();
    assert_eq!(snap.in_progress_transfers, 0);
    assert_eq!(
        snap.staged_files, 0,
        "cleanup should have removed all resources"
    );
    // The greedy ledger peaked within the Table IV bound for (50, 8): 63.
    assert!(stats.peak_wan_streams.unwrap() <= 63);
}

/// The same advice must come back whether the PTT talks to the service
/// in-process or over real loopback HTTP.
#[test]
fn rest_transport_equals_in_process_transport() {
    use pwm_core::transport::PolicyTransport;
    use pwm_core::{TransferSpec, Url};

    let make_batch = || {
        (0..6)
            .map(|i| TransferSpec {
                source: Url::new("gsiftp", "gridftp-vm", format!("/data/f{i}.dat")),
                dest: Url::new("file", "obelix-nfs", format!("/scratch/f{i}.dat")),
                bytes: 1_000_000,
                requested_streams: None,
                workflow: WorkflowId(1),
                cluster: None,
                priority: None,
            })
            .collect::<Vec<_>>()
    };
    let config = PolicyConfig::default()
        .with_default_streams(8)
        .with_threshold(20);

    // In-process.
    let c1 = PolicyController::new(config.clone());
    let mut t1 = InProcessTransport::new(c1, DEFAULT_SESSION);
    let a1 = t1.evaluate_transfers(make_batch()).unwrap();

    // Loopback HTTP.
    let c2 = PolicyController::new(config);
    let server = PolicyRestServer::start(c2).unwrap();
    let mut t2 = PolicyRestClient::new(server.addr(), DEFAULT_SESSION);
    let a2 = t2.evaluate_transfers(make_batch()).unwrap();

    assert_eq!(a1.len(), a2.len());
    for (x, y) in a1.iter().zip(a2.iter()) {
        assert_eq!(x.streams, y.streams);
        assert_eq!(x.action, y.action);
        assert_eq!(x.order, y.order);
        assert_eq!(x.source, y.source);
    }
    // Threshold 20 with default 8: grants 8, 8, 4, 1, 1, 1.
    let mut grants: Vec<u32> = a1.iter().map(|a| a.streams).collect();
    grants.sort_unstable();
    assert_eq!(grants, vec![1, 1, 1, 4, 8, 8]);
}

/// A small Montage on a tiny grid driven entirely over loopback HTTP: the
/// executor's policy callouts go through real sockets and JSON.
#[test]
fn small_montage_over_loopback_http() {
    let (topo, gridftp, apache, nfs) = paper_testbed();
    let site = obelix(nfs);
    let wf = montage_workflow(&MontageConfig {
        rows: 2,
        cols: 2,
        extra_file_bytes: 5_000_000,
        seed: 3,
    });
    let rc = montage_replicas(&wf, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();

    let controller = PolicyController::new(
        PolicyConfig::default()
            .with_default_streams(4)
            .with_threshold(50),
    );
    let server = PolicyRestServer::start(controller).unwrap();
    let client = PolicyRestClient::new(server.addr(), DEFAULT_SESSION);
    let network = Network::with_seed(topo, StreamModel::default(), 3);
    let exec = WorkflowExecutor::new(
        &p,
        &site,
        network,
        Box::new(client.clone()),
        ExecutorConfig {
            seed: 3,
            ..Default::default()
        },
    );
    let (stats, _net) = exec.run();
    assert!(stats.success);
    assert!(stats.policy_calls > 0);
    let status = client.status().unwrap();
    assert!(status.stats.transfer_requests > 0);
    assert_eq!(status.snapshot.in_progress_transfers, 0);
}

/// Same as the loopback test but with the client speaking XML — the paper's
/// alternative wire format — end to end through the executor.
#[test]
fn small_montage_over_xml_rest() {
    let (topo, gridftp, apache, nfs) = paper_testbed();
    let site = obelix(nfs);
    let wf = montage_workflow(&MontageConfig {
        rows: 2,
        cols: 2,
        extra_file_bytes: 5_000_000,
        seed: 4,
    });
    let rc = montage_replicas(&wf, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
    let controller = PolicyController::new(PolicyConfig::default());
    let server = PolicyRestServer::start(controller.clone()).unwrap();
    let client = PolicyRestClient::new(server.addr(), DEFAULT_SESSION)
        .with_format(pwm_rest::WireFormat::Xml);
    let network = Network::with_seed(topo, StreamModel::default(), 4);
    let exec = WorkflowExecutor::new(
        &p,
        &site,
        network,
        Box::new(client),
        ExecutorConfig {
            seed: 4,
            ..Default::default()
        },
    );
    let (stats, _net) = exec.run();
    assert!(stats.success, "XML transport must drive the workflow");
    let snap = controller.snapshot(DEFAULT_SESSION).unwrap();
    assert_eq!(snap.in_progress_transfers, 0);
    // The audit log captured the whole XML-driven lifecycle.
    let log = controller.audit_since(DEFAULT_SESSION, 0).unwrap();
    assert!(!log.is_empty());
}

#[test]
fn clustered_plan_runs_and_groups_transfers() {
    let (topo, gridftp, apache, nfs) = paper_testbed();
    let site = obelix(nfs);
    let wf = montage_workflow(&MontageConfig {
        extra_file_bytes: 5_000_000,
        seed: 2,
        ..Default::default()
    });
    let rc = montage_replicas(&wf, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let p = plan(
        &wf,
        &site,
        &rc,
        &PlannerConfig {
            clustering_factor: Some(4),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(p.stage_in_count() < 89, "clustering merges staging jobs");

    let controller = PolicyController::new(PolicyConfig::default());
    let network = Network::with_seed(topo, StreamModel::default(), 2);
    let transport = Box::new(InProcessTransport::new(controller, DEFAULT_SESSION));
    let exec = WorkflowExecutor::new(
        &p,
        &site,
        network,
        transport,
        ExecutorConfig {
            seed: 2,
            ..Default::default()
        },
    );
    let (stats, _net) = exec.run();
    assert!(stats.success);
}
