//! Integration: the Policy Service "allows multiple workflows to share
//! staged files safely" — duplicate staging is suppressed across workflows
//! and cleanup is deferred until the last user releases a file.

use pwm_core::transport::{InProcessTransport, PolicyTransport};
use pwm_core::{
    CleanupSpec, PolicyConfig, PolicyController, TransferOutcome, TransferSpec, Url, WorkflowId,
    DEFAULT_SESSION,
};

fn spec(file: &str, wf: u64) -> TransferSpec {
    TransferSpec {
        source: Url::new("gsiftp", "gridftp-vm", format!("/data/{file}")),
        dest: Url::new("file", "obelix-nfs", format!("/scratch/shared/{file}")),
        bytes: 50_000_000,
        requested_streams: None,
        workflow: WorkflowId(wf),
        cluster: None,
        priority: None,
    }
}

fn cleanup(file: &str, wf: u64) -> CleanupSpec {
    CleanupSpec {
        file: Url::new("file", "obelix-nfs", format!("/scratch/shared/{file}")),
        workflow: WorkflowId(wf),
    }
}

#[test]
fn two_workflows_share_one_staged_file_lifecycle() {
    let controller = PolicyController::new(PolicyConfig::default());
    let mut wf1 = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);
    let mut wf2 = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);

    // wf1 stages the file.
    let advice1 = wf1.evaluate_transfers(vec![spec("big.dat", 1)]).unwrap();
    assert!(advice1[0].should_execute());
    wf1.report_transfers(vec![TransferOutcome {
        id: advice1[0].id,
        success: true,
    }])
    .unwrap();

    // wf2 requests the same file → skipped, but registered as a user.
    let advice2 = wf2.evaluate_transfers(vec![spec("big.dat", 2)]).unwrap();
    assert!(!advice2[0].should_execute());

    // wf1 finishes and asks for cleanup → suppressed: wf2 still uses it.
    let c1 = wf1.evaluate_cleanups(vec![cleanup("big.dat", 1)]).unwrap();
    assert!(!c1[0].should_execute(), "cleanup must wait for wf2");
    assert_eq!(
        controller.snapshot(DEFAULT_SESSION).unwrap().staged_files,
        1
    );

    // wf2 finishes and asks for cleanup → executes now.
    let c2 = wf2.evaluate_cleanups(vec![cleanup("big.dat", 2)]).unwrap();
    assert!(c2[0].should_execute());
    wf2.report_cleanups(vec![pwm_core::CleanupOutcome {
        id: c2[0].id,
        success: true,
    }])
    .unwrap();
    assert_eq!(
        controller.snapshot(DEFAULT_SESSION).unwrap().staged_files,
        0
    );
}

#[test]
fn concurrent_request_for_in_flight_file_is_skipped_and_protected() {
    let controller = PolicyController::new(PolicyConfig::default());
    let mut wf1 = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);
    let mut wf2 = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);

    // wf1's transfer is in progress (not yet reported).
    let advice1 = wf1
        .evaluate_transfers(vec![spec("inflight.dat", 1)])
        .unwrap();
    assert!(advice1[0].should_execute());

    // wf2 asks for the same file while it is in flight → skipped.
    let advice2 = wf2
        .evaluate_transfers(vec![spec("inflight.dat", 2)])
        .unwrap();
    assert!(!advice2[0].should_execute());

    // wf1 completes; wf2's cleanup request is still blocked by... nobody:
    // wf2 detaches itself, wf1 remains a user.
    wf1.report_transfers(vec![TransferOutcome {
        id: advice1[0].id,
        success: true,
    }])
    .unwrap();
    let c2 = wf2
        .evaluate_cleanups(vec![cleanup("inflight.dat", 2)])
        .unwrap();
    assert!(
        !c2[0].should_execute(),
        "wf1 still uses the file; wf2's cleanup must be suppressed"
    );

    let c1 = wf1
        .evaluate_cleanups(vec![cleanup("inflight.dat", 1)])
        .unwrap();
    assert!(c1[0].should_execute(), "last user's cleanup proceeds");
}

#[test]
fn failed_staging_does_not_poison_sharing() {
    let controller = PolicyController::new(PolicyConfig::default());
    let mut wf1 = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);
    let mut wf2 = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);

    let advice1 = wf1.evaluate_transfers(vec![spec("flaky.dat", 1)]).unwrap();
    wf1.report_transfers(vec![TransferOutcome {
        id: advice1[0].id,
        success: false,
    }])
    .unwrap();

    // The failed staging must not make wf2 believe the file exists.
    let advice2 = wf2.evaluate_transfers(vec![spec("flaky.dat", 2)]).unwrap();
    assert!(
        advice2[0].should_execute(),
        "after a failure the file must be restageable"
    );
}

#[test]
fn many_workflows_one_transfer() {
    let controller = PolicyController::new(PolicyConfig::default());
    let mut first = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);
    let advice = first
        .evaluate_transfers(vec![spec("popular.dat", 0)])
        .unwrap();
    first
        .report_transfers(vec![TransferOutcome {
            id: advice[0].id,
            success: true,
        }])
        .unwrap();

    for wf in 1..=10 {
        let mut t = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);
        let a = t.evaluate_transfers(vec![spec("popular.dat", wf)]).unwrap();
        assert!(
            !a[0].should_execute(),
            "wf{wf} should reuse the staged file"
        );
    }
    let stats = controller.stats(DEFAULT_SESSION).unwrap();
    assert_eq!(stats.transfers_executed, 1);
    assert_eq!(stats.transfers_suppressed, 10);

    // Cleanups: the first nine are suppressed, the tenth (last user left
    // after wf0 and wf1..=9 detach one by one) executes.
    for wf in 0..=9 {
        let mut t = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);
        let c = t
            .evaluate_cleanups(vec![cleanup("popular.dat", wf)])
            .unwrap();
        assert!(
            !c[0].should_execute(),
            "wf{wf}'s cleanup should be suppressed"
        );
    }
    let mut last = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);
    let c = last
        .evaluate_cleanups(vec![cleanup("popular.dat", 10)])
        .unwrap();
    assert!(c[0].should_execute(), "the final user's cleanup executes");
}
