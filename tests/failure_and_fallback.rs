//! Integration: failure injection through the full stack (transfer retries
//! against the live Policy Service) and fail-safe behaviour when the policy
//! service is unreachable.

use pwm_bench::{mb, MontageExperiment, PolicyMode};
use pwm_core::transport::{PolicyTransport, TransportError};
use pwm_core::{
    CleanupAdvice, CleanupOutcome, CleanupSpec, TransferAdvice, TransferOutcome, TransferSpec,
};
use pwm_montage::{montage_replicas, montage_workflow, MontageConfig};
use pwm_net::{paper_testbed, Network, StreamModel};
use pwm_workflow::{plan, ComputeSite, ExecutorConfig, PlannerConfig, WorkflowExecutor};

#[test]
fn injected_failures_are_retried_and_absorbed() {
    let mut exp = MontageExperiment::paper_setup(mb(10), 4, PolicyMode::Greedy { threshold: 50 });
    exp.transfer_failure_prob = 0.15;
    let stats = exp.run_once(11);
    assert!(stats.transfer_retries > 0, "15% failure rate must retry");
    assert!(
        stats.success,
        "retries (budget 5/job) should absorb 15% failures"
    );
    // Retried bytes were eventually delivered.
    assert!(stats.bytes_staged >= 89.0 * 10.0e6);
}

#[test]
fn persistent_failures_fail_the_workflow_without_hanging() {
    let mut exp = MontageExperiment::paper_setup(mb(10), 4, PolicyMode::Greedy { threshold: 50 });
    exp.transfer_failure_prob = 1.0;
    let stats = exp.run_once(1);
    assert!(!stats.success);
    assert!(stats.failed_jobs > 0);
    // The run still terminates with a finite makespan.
    assert!(stats.makespan_secs() > 0.0);
}

/// A transport whose policy service is down: every call errors. The PTT must
/// fall back to executing its submitted list (fail-safe, not fail-stop).
struct DeadService;

impl PolicyTransport for DeadService {
    fn evaluate_transfers(
        &mut self,
        _batch: Vec<TransferSpec>,
    ) -> Result<Vec<TransferAdvice>, TransportError> {
        Err(TransportError::Io("connection refused".into()))
    }
    fn report_transfers(&mut self, _outcomes: Vec<TransferOutcome>) -> Result<(), TransportError> {
        Err(TransportError::Io("connection refused".into()))
    }
    fn evaluate_cleanups(
        &mut self,
        _batch: Vec<CleanupSpec>,
    ) -> Result<Vec<CleanupAdvice>, TransportError> {
        Err(TransportError::Io("connection refused".into()))
    }
    fn report_cleanups(&mut self, _outcomes: Vec<CleanupOutcome>) -> Result<(), TransportError> {
        Err(TransportError::Io("connection refused".into()))
    }
}

#[test]
fn unreachable_policy_service_degrades_to_one_stream_execution() {
    let (topo, gridftp, apache, nfs) = paper_testbed();
    let site = ComputeSite {
        name: "obelix".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: nfs,
        storage_host_name: "obelix-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    let wf = montage_workflow(&MontageConfig {
        rows: 2,
        cols: 2,
        extra_file_bytes: 2_000_000,
        seed: 5,
    });
    let rc = montage_replicas(&wf, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
    let network = Network::with_seed(topo, StreamModel::default(), 5);
    let exec = WorkflowExecutor::new(
        &p,
        &site,
        network,
        Box::new(DeadService),
        ExecutorConfig {
            seed: 5,
            ..Default::default()
        },
    );
    let (stats, _net) = exec.run();
    assert!(
        stats.success,
        "the workflow must survive a dead policy service"
    );
    assert!(stats.bytes_staged > 0.0);
}
