//! Scalability of the incremental rule-matching engine (ISSUE: the Policy
//! Service hot path).
//!
//! Two properties of the agenda + dirty-set design are asserted here:
//!
//! 1. **Sub-quadratic advice latency.** A transfer lifecycle against a
//!    session holding 10× more resident staged files must cost well under
//!    30× the time — the old engine re-matched every rule against the full
//!    cross product once per *firing*, which scales quadratically.
//! 2. **Clean types are not re-evaluated.** Transfer-only traffic never
//!    touches `CleanupFact`, so rules that only watch cleanup-side types
//!    must show zero additional evaluations in the per-rule counters.

use pwm_core::{
    CleanupOutcome, CleanupSpec, PolicyConfig, PolicyService, TransferOutcome, TransferSpec, Url,
    WorkflowId,
};
use std::time::{Duration, Instant};

fn spec(name: &str, workflow: u64) -> TransferSpec {
    TransferSpec {
        source: Url::new("gsiftp", "gridftp-vm", format!("/data/{name}.dat")),
        dest: Url::new("file", "obelix-nfs", format!("/scratch/{name}.dat")),
        bytes: 1,
        requested_streams: None,
        workflow: WorkflowId(workflow),
        cluster: None,
        priority: None,
    }
}

/// A service whose policy memory holds `resident` staged files owned by
/// other workflows (the multi-workflow sharing scenario of Table I).
fn service_with_resident_files(resident: usize) -> PolicyService {
    let mut service = PolicyService::new(
        PolicyConfig::default()
            .with_default_streams(8)
            .with_threshold(1_000_000),
    );
    // Small batches keep the in-flight transfer set (and thus the join
    // cross-product paid while staging) small during setup.
    const CHUNK: usize = 10;
    for chunk in 0..resident.div_ceil(CHUNK) {
        let batch: Vec<TransferSpec> = (0..CHUNK.min(resident - chunk * CHUNK))
            .map(|i| spec(&format!("resident_{chunk}_{i}"), chunk as u64))
            .collect();
        let advice = service.evaluate_transfers(batch);
        service.report_transfers(
            advice
                .iter()
                .map(|a| TransferOutcome {
                    id: a.id,
                    success: true,
                })
                .collect(),
        );
    }
    service
}

/// One full advice round-trip (transfer advice → completion → cleanup
/// advice → completion); policy memory returns to its resident baseline.
fn lifecycle(service: &mut PolicyService, tag: u64) {
    let name = format!("q{tag}");
    let advice = service.evaluate_transfers(vec![spec(&name, 9999)]);
    service.report_transfers(vec![TransferOutcome {
        id: advice[0].id,
        success: true,
    }]);
    let cleanups = service.evaluate_cleanups(vec![CleanupSpec {
        file: Url::new("file", "obelix-nfs", format!("/scratch/{name}.dat")),
        workflow: WorkflowId(9999),
    }]);
    service.report_cleanups(vec![CleanupOutcome {
        id: cleanups[0].id,
        success: true,
    }]);
}

/// Best-of-`repeats` time for `iters` lifecycles at a resident-set size.
fn measure(resident: usize, iters: u64, repeats: usize) -> Duration {
    let mut best = Duration::MAX;
    for rep in 0..repeats {
        let mut service = service_with_resident_files(resident);
        lifecycle(&mut service, u64::MAX); // warm the agenda caches
        let start = Instant::now();
        for i in 0..iters {
            lifecycle(&mut service, rep as u64 * iters + i);
        }
        best = best.min(start.elapsed());
    }
    best
}

#[test]
fn advice_latency_grows_subquadratically_with_resident_facts() {
    let iters = 30;
    let small = measure(80, iters, 2);
    let large = measure(800, iters, 2);
    // 10× the resident facts must cost < 30× the time. The pre-agenda
    // engine was ~quadratic here (every firing re-matched the full cross
    // product); linear-ish growth passes with a wide margin.
    let limit = small.saturating_mul(30);
    assert!(
        large < limit,
        "10x resident facts cost {large:?}, more than 30x the baseline {small:?}"
    );
}

#[test]
fn transfer_traffic_does_not_reevaluate_cleanup_only_rules() {
    let mut service = service_with_resident_files(100);
    // Warm-up: every rule is evaluated at least once when the agenda is
    // first computed (and the lifecycle touches the cleanup types too).
    lifecycle(&mut service, 0);

    let evals = |service: &PolicyService, rule: &str| -> u64 {
        service
            .rule_stats()
            .iter()
            .find(|s| s.name == rule)
            .unwrap_or_else(|| panic!("rule {rule:?} missing from stats"))
            .evaluations
    };
    const CLEANUP_RULE: &str = "remove duplicate cleanup requests";
    const TRANSFER_RULE: &str = "remove duplicate transfers from the transfer list";
    let cleanup_before = evals(&service, CLEANUP_RULE);
    let transfer_before = evals(&service, TRANSFER_RULE);

    // Transfer-only churn: inserts/updates/retracts TransferFact,
    // ResourceFact and HostPairFact — never CleanupFact.
    for i in 0..20 {
        let advice = service.evaluate_transfers(vec![spec(&format!("churn{i}"), 7)]);
        service.report_transfers(vec![TransferOutcome {
            id: advice[0].id,
            success: true,
        }]);
    }

    assert_eq!(
        evals(&service, CLEANUP_RULE),
        cleanup_before,
        "cleanup-only rule was re-evaluated by transfer traffic"
    );
    assert!(
        evals(&service, TRANSFER_RULE) > transfer_before,
        "transfer rule should have been re-evaluated by transfer traffic"
    );
}
