//! Offline substitute for `bytes`: the `BytesMut` subset this workspace
//! uses (append-and-split buffering for the HTTP reader).

use std::ops::{Deref, DerefMut};

/// A growable byte buffer with `split_off` semantics matching the real
/// crate: `split_off(at)` returns the tail `[at, len)` and keeps `[0, at)`.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append bytes.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Split the buffer at `at`: self keeps `[0, at)`, the returned buffer
    /// holds `[at, len)`. Panics if `at > len`, like the real crate.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            data: self.data.split_off(at),
        }
    }

    /// Shorten to `len` bytes (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_off_keeps_head() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(b"headBODY");
        let tail = b.split_off(4);
        assert_eq!(&b[..], b"head");
        assert_eq!(&tail[..], b"BODY");
    }

    #[test]
    fn windows_via_deref() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"ab\r\n\r\ncd");
        let pos = b.windows(4).position(|w| w == b"\r\n\r\n");
        assert_eq!(pos, Some(2));
    }
}
