//! Offline substitute for `proptest`.
//!
//! Implements the strategy surface this workspace's property tests use:
//! integer/float range strategies, tuple strategies, `collection::vec`,
//! `any::<T>()`, `prop_map`/`prop_flat_map`, simple regex string strategies
//! (literal chars, `[...]` classes, `\PC`, `{m,n}` repetition), the
//! `proptest!` macro with optional `#![proptest_config(...)]`, and the
//! `prop_assert*` macros.
//!
//! Sampling is driven by a fixed-seed SplitMix64 generator, so runs are
//! deterministic. There is no shrinking: a failing case panics with the
//! standard assertion message (bound values are visible via `{var:?}` in
//! assertion messages, as the tests already do).

use std::ops::Range;

/// Deterministic generator handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Fixed-seed generator for one test function.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform produced values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Produce a dependent strategy from each value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Always produce a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

// --- numeric ranges --------------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty sample range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty sample range");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// --- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// --- unions (prop_oneof!) --------------------------------------------------

/// Strategy choosing among weighted alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// A union over `(weight, strategy)` alternatives.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, strat) in &self.options {
            if pick < *w as u64 {
                return strat.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Choose among strategies, optionally weighted (`w => strat`). All arms must
/// produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(($weight as u32, Box::new($strat) as _)),+])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$((1u32, Box::new($strat) as _)),+])
    };
}

// --- any::<T>() ------------------------------------------------------------

/// Types with a canonical "anything" strategy.
pub trait ArbitraryValue: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2.0e9 - 1.0e9
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// --- collections -----------------------------------------------------------

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vector of `element` values, length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Optional-value strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` ~25% of the time, else `Some(inner)`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option` of the inner strategy's values.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

// --- regex-ish string strategies -------------------------------------------

enum Piece {
    Lit(char),
    Class(Vec<char>),
    AnyPrintable,
}

struct PatternPiece {
    piece: Piece,
    min: usize,
    max: usize,
}

/// `&str` acts as a regex-subset strategy for `String`, like real proptest.
/// Supported: literal chars, escaped chars, `[...]` classes with ranges,
/// `\PC` (any printable), and an optional `{m,n}`/`{m}` repetition suffix.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for p in &pieces {
            let reps = p.min + rng.below((p.max - p.min + 1) as u64) as usize;
            for _ in 0..reps {
                match &p.piece {
                    Piece::Lit(c) => out.push(*c),
                    Piece::Class(chars) => out.push(chars[rng.below(chars.len() as u64) as usize]),
                    Piece::AnyPrintable => {
                        // Printable ASCII plus a few multibyte chars to
                        // exercise UTF-8 handling.
                        const EXTRA: [char; 6] = ['é', 'λ', '√', '漢', '🦀', 'ß'];
                        let n = 95 + EXTRA.len() as u64;
                        let i = rng.below(n);
                        out.push(if i < 95 {
                            (b' ' + i as u8) as char
                        } else {
                            EXTRA[(i - 95) as usize]
                        });
                    }
                }
            }
        }
        out
    }
}

fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let piece = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated class in `{pattern}`"));
                    match c {
                        ']' => {
                            if let Some(p) = prev.take() {
                                set.push(p);
                            }
                            break;
                        }
                        '-' if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            for code in lo as u32..=hi as u32 {
                                if let Some(c) = char::from_u32(code) {
                                    set.push(c);
                                }
                            }
                        }
                        '\\' => {
                            if let Some(p) = prev.replace(chars.next().unwrap()) {
                                set.push(p);
                            }
                        }
                        other => {
                            if let Some(p) = prev.replace(other) {
                                set.push(p);
                            }
                        }
                    }
                }
                assert!(!set.is_empty(), "empty class in `{pattern}`");
                Piece::Class(set)
            }
            '\\' => match chars.next() {
                Some('P') => {
                    // `\PC`: anything outside the Control category.
                    let c = chars.next();
                    assert_eq!(c, Some('C'), "unsupported \\P class in `{pattern}`");
                    Piece::AnyPrintable
                }
                Some(escaped) => Piece::Lit(escaped),
                None => panic!("trailing backslash in `{pattern}`"),
            },
            other => Piece::Lit(other),
        };
        // Optional {m,n} / {m} repetition.
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition"),
                    n.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let m = spec.trim().parse().expect("bad repetition");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(PatternPiece { piece, min, max });
    }
    pieces
}

// --- config + macros -------------------------------------------------------

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy, Union,
    };
}

/// Run each property function `cases` times over sampled strategy values.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$attr:meta])*
            fn $name:ident($($var:pat_param in $strat:expr),+ $(,)?) $body:block
        )+
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let _ = __case;
                    $(let $var = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    $body
                }
            }
        )+
    };
}

/// Assert within a property.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(pair in (0u64..10, 1usize..4), x in -5i32..5) {
            prop_assert!(pair.0 < 10 && (1..4).contains(&pair.1));
            prop_assert!((-5..5).contains(&x));
        }

        #[test]
        fn vec_and_map(xs in crate::collection::vec(0u32..100, 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }

        #[test]
        fn regex_classes(s in "[a-z0-9_-]{1,8}", p in "/[a-z]{0,4}") {
            prop_assert!((1..=8).contains(&s.len()));
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit() || c == '_' || c == '-'));
            prop_assert!(p.starts_with('/'));
        }

        #[test]
        fn printable_strings(s in "\\PC{0,16}") {
            prop_assert!(s.chars().count() <= 16);
            prop_assert!(!s.chars().any(|c| c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_honored(_x in 0u8..2) {
            // Runs exactly 7 times; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn flat_map_dependent_sizes() {
        let strat = (2usize..6).prop_flat_map(|n| crate::collection::vec(0usize..n, 1..10));
        let mut rng = crate::TestRng::deterministic();
        for _ in 0..100 {
            let v = Strategy::sample(&strat, &mut rng);
            assert!(v.iter().all(|&x| x < 6));
        }
    }
}
