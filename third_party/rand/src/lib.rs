//! Offline substitute for `rand`: the seeded-RNG subset this workspace uses
//! (`rngs::StdRng`, `SeedableRng::seed_from_u64`, `RngExt::random_range`).
//!
//! The generator is SplitMix64 — statistically fine for simulation jitter
//! and fully deterministic per seed, but its stream differs from the real
//! crate's ChaCha-based `StdRng`. Experiments remain reproducible
//! run-to-run; absolute numbers differ from runs made against real `rand`.

use std::ops::{Range, RangeInclusive};

/// Core trait: produce raw 64-bit outputs.
pub trait RngCore {
    /// Next raw 64-bit draw.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    /// The default seeded generator (SplitMix64 here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Ranges a value type can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Draw a value in the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let v = self.start + unit_f64(rng) * (self.end - self.start);
        // Guard against end-inclusion from floating rounding.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty u64 sample range");
        sample_span(rng, self.start, self.end - self.start)
    }
}

impl SampleRange<u64> for RangeInclusive<u64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty u64 sample range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        sample_span(rng, lo, span + 1)
    }
}

/// Uniform in `[lo, lo + span)` via 128-bit widening multiply (no modulo
/// bias to speak of at simulation scales).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, lo: u64, span: u64) -> u64 {
    let wide = (rng.next_u64() as u128) * (span as u128);
    lo + (wide >> 64) as u64
}

/// Extension methods over any [`RngCore`] (the rand 0.10 `Rng`/`RngExt`
/// surface this workspace calls).
pub trait RngExt: RngCore {
    /// Uniform draw from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = r.random_range(2.0..3.0);
            assert!((2.0..3.0).contains(&f));
            let n = r.random_range(10u64..=20);
            assert!((10..=20).contains(&n));
        }
    }

    #[test]
    fn unit_interval_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(2);
        let mean: f64 = (0..20_000).map(|_| r.random_range(0.0..1.0)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
