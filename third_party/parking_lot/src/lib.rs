//! Offline substitute for `parking_lot`: the `Mutex` subset this workspace
//! uses, implemented over `std::sync::Mutex` with parking_lot's
//! non-poisoning `lock()` signature.

/// Guard type (std's guard; released on drop).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error
/// (matching parking_lot's API).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }
}
