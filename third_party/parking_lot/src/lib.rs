//! Offline substitute for `parking_lot`: the `Mutex`/`RwLock` subset this
//! workspace uses, implemented over `std::sync` with parking_lot's
//! non-poisoning lock signatures.

/// Guard type (std's guard; released on drop).
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error
/// (matching parking_lot's API).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Shared-read guard (std's guard; released on drop).
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Exclusive-write guard (std's guard; released on drop).
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock whose `read()`/`write()` never return a poison
/// error (matching parking_lot's API).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access, blocking the current thread.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access, blocking the current thread.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }
}
