//! JSON encoding/decoding for the offline serde substitute.
//!
//! Provides the `to_vec`/`to_string`/`to_string_pretty`/`from_str`/
//! `from_slice` entry points the workspace uses, rendering and parsing the
//! [`serde::Value`] tree. Output is compact (no whitespace) and objects keep
//! field declaration order, so encodings are deterministic.

use serde::{Deserialize, Serialize, Value};

/// Encode/decode error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => write_seq(items.iter(), out, indent, '[', ']', |item, out, ind| {
            write_value(item, out, ind)
        }),
        Value::Object(entries) => {
            write_seq(entries.iter(), out, indent, '{', '}', |(k, v), out, ind| {
                write_string(k, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(v, out, ind);
            })
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    items: I,
    out: &mut String,
    indent: Option<usize>,
    open: char,
    close: char,
    mut write_item: impl FnMut(I::Item, &mut String, Option<usize>),
) {
    if items.len() == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    let inner = indent.map(|i| i + 1);
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        if let Some(i) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(i));
        }
        write_item(item, out, inner);
    }
    if let Some(i) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(i));
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(Error(format!("expected object key at byte {}", self.pos)));
            }
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            entries.push((key, value));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Advance over a run of plain bytes, then copy it as UTF-8.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Vec<u64>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "a\"b\\c\nd".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("{not json").is_err());
        assert!(from_str::<u32>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }
}
