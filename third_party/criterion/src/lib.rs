//! Offline substitute for `criterion`: the harness subset this workspace's
//! benches use (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `bench_function`, `benchmark_group`, `Bencher::iter`, `sample_size`).
//!
//! Each benchmark runs one warm-up batch then `sample_size` timed samples
//! and prints min/mean/max wall-clock per iteration. No statistics engine,
//! plots, or saved baselines — just honest timings for before/after
//! comparisons in an offline environment.

use std::time::Instant;

/// Harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.to_string(), self.sample_size, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group; benchmark ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.criterion.sample_size,
            &mut f,
        );
        self
    }

    /// Close the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure under test; call [`Bencher::iter`].
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Time the routine: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let n = bencher.samples.len() as f64;
    let mean = bencher.samples.iter().sum::<f64>() / n;
    let min = bencher
        .samples
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = bencher
        .samples
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "{id:<50} time: [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.3} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.3} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.3} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Define a benchmark group: either `criterion_group!(name, target, ...)` or
/// the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
