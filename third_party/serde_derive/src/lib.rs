//! `#[derive(Serialize, Deserialize)]` for the offline serde substitute.
//!
//! Implemented directly over `proc_macro` token trees (no syn/quote, which
//! are unavailable offline). Supports the shapes this workspace uses:
//!
//! * named-field structs (externally a JSON object, declaration order),
//! * newtype structs (transparent),
//! * tuple structs (JSON array),
//! * enums with unit / newtype / tuple / struct variants (externally tagged,
//!   like real serde's default),
//! * field attributes `#[serde(with = "module")]` (module exports
//!   `serialize(&T) -> Value` and `deserialize(&Value) -> Result<T, Error>`)
//!   and `#[serde(default)]`,
//! * `Option<T>` fields absent from the input deserialize to `None`.
//!
//! Generics are not supported (the workspace derives on concrete types only).

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

struct Field {
    name: String,
    is_option: bool,
    with: Option<String>,
    default: bool,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    data: VariantData,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive substitute generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive substitute generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

/// Consume leading attributes; return the serde `with` path and `default`
/// flag if present among them.
fn take_attrs(it: &mut Tokens) -> (Option<String>, bool) {
    let mut with = None;
    let mut default = false;
    while let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() != '#' {
            break;
        }
        it.next();
        let group = match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            other => panic!("expected attribute body, found {other:?}"),
        };
        let mut inner = group.stream().into_iter();
        let is_serde =
            matches!(inner.next(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
        if !is_serde {
            continue;
        }
        let args = match inner.next() {
            Some(TokenTree::Group(g)) => g.stream(),
            _ => continue,
        };
        let mut args = args.into_iter().peekable();
        while let Some(tok) = args.next() {
            if let TokenTree::Ident(id) = &tok {
                match id.to_string().as_str() {
                    "with" => {
                        args.next(); // `=`
                        if let Some(TokenTree::Literal(lit)) = args.next() {
                            let s = lit.to_string();
                            with = Some(s.trim_matches('"').to_string());
                        }
                    }
                    "default" => default = true,
                    other => panic!("serde substitute: unsupported attribute `{other}`"),
                }
            }
        }
    }
    (with, default)
}

fn skip_visibility(it: &mut Tokens) {
    if matches!(it.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        it.next();
        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            it.next();
        }
    }
}

/// Parse `name: Type, ...` named fields, capturing serde attrs and whether
/// the type's head identifier is `Option`.
fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let (with, default) = take_attrs(&mut it);
        if it.peek().is_none() {
            break;
        }
        skip_visibility(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Consume the type up to a comma outside angle brackets.
        let mut angle = 0i32;
        let mut head: Option<String> = None;
        while let Some(tok) = it.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    it.next();
                    break;
                }
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Ident(id) if head.is_none() => head = Some(id.to_string()),
                _ => {}
            }
            it.next();
        }
        fields.push(Field {
            name,
            is_option: head.as_deref() == Some("Option"),
            with,
            default,
        });
    }
    fields
}

/// Count tuple-struct fields: top-level comma-separated segments.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut count = 0usize;
    let mut in_segment = false;
    for tok in stream {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => in_segment = false,
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            _ => {
                if !in_segment {
                    count += 1;
                    in_segment = true;
                }
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        take_attrs(&mut it);
        if it.peek().is_none() {
            break;
        }
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        let data = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let count = count_tuple_fields(g.stream());
                it.next();
                VariantData::Tuple(count)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                it.next();
                VariantData::Named(fields)
            }
            _ => VariantData::Unit,
        };
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant { name, data });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut it = input.into_iter().peekable();
    take_attrs(&mut it);
    skip_visibility(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde substitute: generic type `{name}` is not supported");
    }
    let shape = match kind.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde substitute cannot derive for `{other}`"),
    };
    Item { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `__fields.push((name, value))` statements for named fields read from
/// `{access}` (e.g. `&self.x` or a bound variable `x`).
fn ser_named_fields(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        let expr = access(&f.name);
        let value = match &f.with {
            Some(path) => format!("{path}::serialize({expr})"),
            None => format!("::serde::Serialize::to_value({expr})"),
        };
        out.push_str(&format!(
            "__fields.push((String::from(\"{}\"), {value}));\n",
            f.name
        ));
    }
    out
}

/// Field initializers `name: match ...` for a named-field constructor, read
/// from the object binding `{obj}`.
fn de_named_fields(fields: &[Field], obj: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let present = match &f.with {
            Some(path) => format!("{path}::deserialize(__f)?"),
            None => "::serde::Deserialize::from_value(__f)?".to_string(),
        };
        let absent = if f.default {
            "::std::default::Default::default()".to_string()
        } else if f.is_option {
            "::std::option::Option::None".to_string()
        } else {
            format!("return Err(::serde::Error::missing_field(\"{}\"))", f.name)
        };
        out.push_str(&format!(
            "{name}: match ::serde::field({obj}, \"{name}\") {{ Some(__f) => {present}, None => {absent} }},\n",
            name = f.name
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let pushes = ser_named_fields(fields, |f| format!("&self.{f}"));
            format!(
                "let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.data {
                    VariantData::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    VariantData::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    VariantData::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantData::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let pushes = ser_named_fields(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ let mut __fields: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Object(__fields))]) }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let inits = de_named_fields(fields, "__obj");
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\nOk({name} {{\n{inits}}})"
            )
        }
        Shape::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                .collect();
            format!(
                "match __v {{ ::serde::Value::Array(__a) if __a.len() == {n} => Ok({name}({})), _ => Err(::serde::Error::custom(\"expected {n}-element array for {name}\")) }}",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.data {
                    VariantData::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"))
                    }
                    VariantData::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__val)?)),\n"
                    )),
                    VariantData::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match __val {{ ::serde::Value::Array(__a) if __a.len() == {n} => Ok({name}::{vn}({})), _ => Err(::serde::Error::custom(\"expected {n}-element array for variant {vn}\")) }},\n",
                            items.join(", ")
                        ));
                    }
                    VariantData::Named(fields) => {
                        let inits = de_named_fields(fields, "__obj");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __obj = __val.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for variant {vn}\"))?; Ok({name}::{vn} {{\n{inits}}}) }},\n"
                        ));
                    }
                }
            }
            let str_arm = if unit_arms.is_empty() {
                format!("::serde::Value::Str(_) => Err(::serde::Error::custom(\"unexpected string for enum {name}\")),\n")
            } else {
                format!(
                    "::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}_ => Err(::serde::Error::custom(\"unknown variant of {name}\")),\n}},\n"
                )
            };
            let obj_arm = if data_arms.is_empty() {
                String::new()
            } else {
                format!(
                    "::serde::Value::Object(__o) if __o.len() == 1 => {{ let (__k, __val) = &__o[0]; match __k.as_str() {{\n{data_arms}_ => Err(::serde::Error::custom(\"unknown variant of {name}\")),\n}} }},\n"
                )
            };
            format!(
                "match __v {{\n{str_arm}{obj_arm}_ => Err(::serde::Error::custom(\"invalid value for enum {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }} }}"
    )
}
