//! Offline substitute for `crossbeam`: the `channel` subset this workspace
//! uses — an unbounded MPMC channel built on `Mutex` + `Condvar`. Both
//! `Sender` and `Receiver` are cloneable, like the real crate; the channel
//! disconnects when all senders (resp. receivers) are dropped.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; cloneable (competing consumers).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue a message, blocking until one arrives or the channel
        /// disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_fan_in() {
            let (job_tx, job_rx) = unbounded::<u64>();
            let (res_tx, res_rx) = unbounded::<u64>();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let rx = job_rx.clone();
                    let tx = res_tx.clone();
                    scope.spawn(move || {
                        while let Ok(n) = rx.recv() {
                            tx.send(n * 2).unwrap();
                        }
                    });
                }
                drop(job_rx);
                drop(res_tx);
                for n in 0..100 {
                    job_tx.send(n).unwrap();
                }
                drop(job_tx);
                let mut total = 0;
                for _ in 0..100 {
                    total += res_rx.recv().unwrap();
                }
                assert_eq!(total, (0..100).map(|n| n * 2).sum::<u64>());
                assert_eq!(res_rx.recv(), Err(RecvError));
            });
        }
    }
}
