//! Offline substitute for `serde` exposing the subset this workspace uses.
//!
//! Unlike real serde's visitor architecture, serialization here goes through
//! an intermediate [`Value`] tree: `Serialize::to_value` produces one,
//! `Deserialize::from_value` consumes one. `serde_json` (the sibling
//! substitute) renders/parses the tree as JSON text. Field order is
//! preserved (objects are association lists), so derived output is
//! deterministic and matches declaration order like real serde.
//!
//! `#[serde(with = "module")]` modules must therefore export
//! `fn serialize(&T) -> Value` and `fn deserialize(&Value) -> Result<T, Error>`
//! rather than the real crate's `Serializer`/`Deserializer` generics.

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer that does not fit `i64`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as an association list preserving insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
}

/// Look up a field in an object's association list (first match wins,
/// mirroring serde's duplicate-field behavior closely enough).
pub fn field<'a>(obj: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    /// Arbitrary error message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// A required field was absent.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves to a [`Value`].
pub trait Serialize {
    /// Convert to the value tree.
    fn to_value(&self) -> Value;
}

/// Types constructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse from the value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization-side helpers, mirroring `serde::de` paths.
pub mod de {
    /// Marker for deserializable owned types (`T: DeserializeOwned` bounds).
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Serialization-side namespace, mirroring `serde::ser` paths.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::custom("expected null")),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    _ => return Err(Error::custom("expected integer")),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
signed_impl!(i8, i16, i32, i64, isize);

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range"))?,
                    _ => return Err(Error::custom("expected integer")),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}
float_impl!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}
