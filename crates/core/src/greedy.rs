//! The Table II rule set: greedy stream allocation.
//!
//! "Transfers are allocated their requested number of parallel streams until
//! the threshold is exceeded. Transfers that are initiated after this
//! threshold is reached are allocated a single stream." The grant arithmetic
//! lives in [`crate::ledger::greedy_grant`]; these rules retrieve the
//! host-pair threshold, enforce it, and record the charge against the ledger
//! fact — the five rows of Table II.

use crate::ctx::PolicyCtx;
use crate::ledger::greedy_grant;
use crate::model::{HostPairFact, TransferFact};
use crate::rules_base::{batch_transfers, host_pair_for};
use pwm_rules::{Rule, Session};

/// Install the greedy allocation rules (salience 50, i.e. after all Table I
/// bookkeeping has settled for the batch).
pub fn install_greedy_rules(session: &mut Session<PolicyCtx>) {
    // One rule implements the "retrieve threshold / enforce maximum / clip
    // at the boundary / single stream past saturation / record the charge"
    // sequence atomically per transfer; transfers are charged in working-
    // memory (insertion) order, which is the order the PTT submitted them.
    session.add_rule(
        Rule::new("greedy: enforce the parallel-streams threshold on a transfer")
            .salience(50)
            .watches::<TransferFact>()
            .watches::<HostPairFact>()
            .when(|wm, ctx: &PolicyCtx| {
                if ctx.config.allocation != crate::config::AllocationPolicy::Greedy {
                    return Vec::new();
                }
                let mut out = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.suppressed.is_some() || t.charged_streams > 0 || t.streams.is_none() {
                        continue;
                    }
                    if let Some((ph, _)) = host_pair_for(wm, &t.spec.source.host, &t.spec.dest.host)
                    {
                        out.push(vec![h, ph]);
                    }
                }
                out
            })
            .then(|wm, ctx, m| {
                let (requested, src_host, dst_host) = {
                    let t = wm.get::<TransferFact>(m[0]).expect("matched transfer");
                    (
                        t.streams.unwrap_or(1),
                        t.spec.source.host.clone(),
                        t.spec.dest.host.clone(),
                    )
                };
                let threshold = ctx.config.threshold_for(&src_host, &dst_host);
                let allocated = wm
                    .get::<HostPairFact>(m[1])
                    .expect("matched host pair")
                    .allocated;
                let grant = greedy_grant(allocated, requested, threshold);
                wm.update::<HostPairFact>(m[1], |p| {
                    p.allocated += grant;
                    p.peak_allocated = p.peak_allocated.max(p.allocated);
                });
                wm.update::<TransferFact>(m[0], |t| {
                    t.streams = Some(grant);
                    t.charged_streams = grant;
                });
            }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AllocationPolicy, PolicyConfig};
    use crate::model::*;
    use crate::rules_base::install_base_rules;

    fn spec(n: u32) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", "tacc", format!("/data/f{n}.dat")),
            dest: Url::new("file", "isi", format!("/scratch/f{n}.dat")),
            bytes: 1,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: None,
            priority: None,
        }
    }

    fn session_with(config: PolicyConfig) -> (Session<PolicyCtx>, PolicyCtx) {
        let mut s = Session::new();
        install_base_rules(&mut s);
        install_greedy_rules(&mut s);
        (s, PolicyCtx::new(config))
    }

    fn submit_batch(s: &mut Session<PolicyCtx>, ctx: &mut PolicyCtx, specs: Vec<TransferSpec>) {
        for (i, sp) in specs.into_iter().enumerate() {
            s.wm.insert(TransferFact {
                id: TransferId(i as u64),
                spec: sp,
                state: TransferState::Pending,
                streams: None,
                charged_streams: 0,
                group: None,
                in_current_batch: true,
                suppressed: None,
                cluster_released: false,
                backend: None,
                backend_released: false,
            });
        }
        s.fire_all(ctx);
    }

    #[test]
    fn grants_defaults_until_threshold_then_ones() {
        let cfg = PolicyConfig::default()
            .with_default_streams(8)
            .with_threshold(50)
            .with_allocation(AllocationPolicy::Greedy);
        let (mut s, mut ctx) = session_with(cfg);
        submit_batch(&mut s, &mut ctx, (0..20).map(spec).collect());
        let grants: Vec<u32> =
            s.wm.iter::<TransferFact>()
                .map(|(_, t)| t.charged_streams)
                .collect();
        let total: u32 = grants.iter().sum();
        assert_eq!(total, 63, "Table IV: threshold 50, default 8 → 63");
        assert_eq!(grants.iter().filter(|&&g| g == 8).count(), 6);
        assert_eq!(grants.iter().filter(|&&g| g == 2).count(), 1);
        assert_eq!(grants.iter().filter(|&&g| g == 1).count(), 13);
        // Ledger fact agrees.
        let (_, pair) = s.wm.find::<HostPairFact>(|_| true).unwrap();
        assert_eq!(pair.allocated, 63);
        assert_eq!(pair.peak_allocated, 63);
    }

    #[test]
    fn requested_streams_override_the_default() {
        let cfg = PolicyConfig::default()
            .with_default_streams(4)
            .with_threshold(50);
        let (mut s, mut ctx) = session_with(cfg);
        let mut sp = spec(0);
        sp.requested_streams = Some(12);
        submit_batch(&mut s, &mut ctx, vec![sp]);
        let (_, t) = s.wm.find::<TransferFact>(|_| true).unwrap();
        assert_eq!(t.charged_streams, 12);
    }

    #[test]
    fn unlimited_policy_does_not_charge() {
        let cfg = PolicyConfig::default().with_allocation(AllocationPolicy::Unlimited);
        let (mut s, mut ctx) = session_with(cfg);
        submit_batch(&mut s, &mut ctx, (0..5).map(spec).collect());
        for (_, t) in s.wm.iter::<TransferFact>() {
            assert_eq!(t.charged_streams, 0);
            assert_eq!(t.streams, Some(4), "defaults still assigned");
        }
    }

    #[test]
    fn separate_host_pairs_have_separate_ledgers() {
        let cfg = PolicyConfig::default()
            .with_default_streams(30)
            .with_threshold(50);
        let (mut s, mut ctx) = session_with(cfg);
        let mut a = spec(0);
        let mut b = spec(1);
        b.source = Url::new("gsiftp", "other-site", "/data/g.dat");
        a.bytes = 1;
        submit_batch(&mut s, &mut ctx, vec![a, b]);
        let grants: Vec<u32> =
            s.wm.iter::<TransferFact>()
                .map(|(_, t)| t.charged_streams)
                .collect();
        // Both fit fully: different pairs don't share a threshold.
        assert_eq!(grants, vec![30, 30]);
        assert_eq!(s.wm.count::<HostPairFact>(), 2);
    }

    #[test]
    fn completion_releases_streams_for_new_arrivals() {
        let cfg = PolicyConfig::default()
            .with_default_streams(25)
            .with_threshold(50);
        let (mut s, mut ctx) = session_with(cfg.clone());
        submit_batch(&mut s, &mut ctx, vec![spec(0), spec(1), spec(2)]);
        // 25 + 25 + 1 = 51 charged.
        let (_, pair) = s.wm.find::<HostPairFact>(|_| true).unwrap();
        assert_eq!(pair.allocated, 51);

        // Complete the first transfer; mark batch processed.
        let handles = s.wm.handles::<TransferFact>();
        for h in &handles {
            s.wm.update::<TransferFact>(*h, |t| t.in_current_batch = false);
        }
        s.wm.update::<TransferFact>(handles[0], |t| {
            t.state = TransferState::Completed;
        });
        s.fire_all(&mut ctx);
        let (_, pair) = s.wm.find::<HostPairFact>(|_| true).unwrap();
        assert_eq!(pair.allocated, 26, "25 streams released");

        // A new arrival now gets its full request again.
        s.wm.insert(TransferFact {
            id: TransferId(99),
            spec: spec(99),
            state: TransferState::Pending,
            streams: None,
            charged_streams: 0,
            group: None,
            in_current_batch: true,
            suppressed: None,
            cluster_released: false,
            backend: None,
            backend_released: false,
        });
        s.fire_all(&mut ctx);
        let (_, t) =
            s.wm.find::<TransferFact>(|t| t.id == TransferId(99))
                .unwrap();
        assert_eq!(t.charged_streams, 24, "clipped to remaining headroom");
    }

    #[test]
    fn suppressed_duplicates_are_not_charged() {
        let cfg = PolicyConfig::default()
            .with_default_streams(8)
            .with_threshold(50);
        let (mut s, mut ctx) = session_with(cfg);
        submit_batch(&mut s, &mut ctx, vec![spec(0), spec(0)]);
        let charged: Vec<u32> =
            s.wm.iter::<TransferFact>()
                .map(|(_, t)| t.charged_streams)
                .collect();
        assert_eq!(charged.iter().sum::<u32>(), 8, "duplicate not charged");
    }

    #[test]
    fn per_pair_threshold_override_applies() {
        let cfg = PolicyConfig::default()
            .with_default_streams(8)
            .with_threshold(100)
            .with_pair_threshold("tacc", "isi", 10);
        let (mut s, mut ctx) = session_with(cfg);
        submit_batch(&mut s, &mut ctx, (0..3).map(spec).collect());
        let grants: Vec<u32> =
            s.wm.iter::<TransferFact>()
                .map(|(_, t)| t.charged_streams)
                .collect();
        assert_eq!(grants, vec![8, 2, 1]);
    }
}
