//! The Table III rule set: balanced stream allocation.
//!
//! "The Balanced Allocation Algorithm uses information about the Pegasus
//! clustering factor to allocate streams between a source and destination
//! host. ... Transfers on the cluster are allocated their requested number
//! of parallel streams until the cluster threshold is exceeded. Transfer
//! requests that arrive later from other clusters are therefore not starved
//! because available resources have already been reserved for use by each
//! cluster."

use crate::config::AllocationPolicy;
use crate::ctx::PolicyCtx;
use crate::ledger::balanced_grant;
use crate::model::{ClusterAllocFact, ClusterId, HostPairFact, TransferFact};
use crate::rules_base::batch_transfers;
use pwm_rules::{Rule, Session};

/// Install the balanced allocation rules.
pub fn install_balanced_rules(session: &mut Session<PolicyCtx>) {
    // "Retrieve the number of clusters used in the system" + create the
    // per-cluster ledger the first time a cluster appears on a host pair.
    session.add_rule(
        Rule::new("balanced: create the per-cluster ledger")
            .salience(52)
            .watches::<TransferFact>()
            .watches::<ClusterAllocFact>()
            .when(|wm, ctx: &PolicyCtx| {
                if ctx.config.allocation != AllocationPolicy::Balanced {
                    return Vec::new();
                }
                let mut out = Vec::new();
                let mut pending: Vec<(crate::model::GroupId, ClusterId)> = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.suppressed.is_some() {
                        continue;
                    }
                    let (Some(group), cluster) = (t.group, t.cluster_or_default()) else {
                        continue;
                    };
                    let exists = wm
                        .iter::<ClusterAllocFact>()
                        .any(|(_, c)| c.group == group && c.cluster == cluster)
                        || pending.contains(&(group, cluster));
                    if !exists {
                        pending.push((group, cluster));
                        out.push(vec![h]);
                    }
                }
                out
            })
            .then(|wm, _, m| {
                let (group, cluster) = {
                    let t = wm.get::<TransferFact>(m[0]).expect("matched transfer");
                    (t.group.expect("grouped"), t.cluster_or_default())
                };
                if wm
                    .find::<ClusterAllocFact>(|c| c.group == group && c.cluster == cluster)
                    .is_none()
                {
                    wm.insert(ClusterAllocFact {
                        group,
                        cluster,
                        allocated: 0,
                    });
                }
            }),
    );

    // "Retrieve the parallel streams threshold defined for a single cluster
    // between a source and destination host" / "Enforce the max number of
    // parallel streams on a transfer that violates the number of available
    // streams below the threshold on its cluster" / "Record the number of
    // parallel streams used by a transfer against the defined cluster
    // threshold".
    session.add_rule(
        Rule::new("balanced: enforce the per-cluster threshold on a transfer")
            .salience(50)
            .watches::<TransferFact>()
            .watches::<ClusterAllocFact>()
            .watches::<HostPairFact>()
            .when(|wm, ctx: &PolicyCtx| {
                if ctx.config.allocation != AllocationPolicy::Balanced {
                    return Vec::new();
                }
                let mut out = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.suppressed.is_some() || t.charged_streams > 0 || t.streams.is_none() {
                        continue;
                    }
                    let Some(group) = t.group else { continue };
                    let cluster = t.cluster_or_default();
                    let Some((ch, _)) =
                        wm.find::<ClusterAllocFact>(|c| c.group == group && c.cluster == cluster)
                    else {
                        continue;
                    };
                    let Some((ph, _)) = wm.find::<HostPairFact>(|p| p.group == group) else {
                        continue;
                    };
                    out.push(vec![h, ch, ph]);
                }
                out
            })
            .then(|wm, ctx, m| {
                let (requested, src_host, dst_host) = {
                    let t = wm.get::<TransferFact>(m[0]).expect("matched transfer");
                    (
                        t.streams.unwrap_or(1),
                        t.spec.source.host.clone(),
                        t.spec.dest.host.clone(),
                    )
                };
                let share = ctx.config.cluster_share(&src_host, &dst_host);
                let cluster_allocated = wm
                    .get::<ClusterAllocFact>(m[1])
                    .expect("matched cluster ledger")
                    .allocated;
                let grant = balanced_grant(cluster_allocated, requested, share);
                wm.update::<ClusterAllocFact>(m[1], |c| c.allocated += grant);
                // The host-pair ledger still tracks the pair-wide totals for
                // monitoring and release accounting.
                wm.update::<HostPairFact>(m[2], |p| {
                    p.allocated += grant;
                    p.peak_allocated = p.peak_allocated.max(p.allocated);
                });
                wm.update::<TransferFact>(m[0], |t| {
                    t.streams = Some(grant);
                    t.charged_streams = grant;
                });
            }),
    );

    // Release of cluster-ledger streams on completion/failure: the Table I
    // completion rules release the host-pair ledger; this companion releases
    // the per-cluster one before the transfer fact disappears.
    session.add_rule(
        Rule::new("balanced: release the cluster ledger on completion or failure")
            .salience(71) // must run before the Table I removal rules (70)
            .watches::<TransferFact>()
            .watches::<ClusterAllocFact>()
            .when(|wm, ctx: &PolicyCtx| {
                if ctx.config.allocation != AllocationPolicy::Balanced {
                    return Vec::new();
                }
                let mut out = Vec::new();
                for (h, t) in wm.iter::<TransferFact>() {
                    use crate::model::TransferState::*;
                    if !matches!(t.state, Completed | Failed)
                        || t.charged_streams == 0
                        || t.cluster_released
                    {
                        continue;
                    }
                    let Some(group) = t.group else { continue };
                    let cluster = t.cluster_or_default();
                    if let Some((ch, _)) =
                        wm.find::<ClusterAllocFact>(|c| c.group == group && c.cluster == cluster)
                    {
                        out.push(vec![h, ch]);
                    }
                }
                out
            })
            .then(|wm, _, m| {
                let charged = wm
                    .get::<TransferFact>(m[0])
                    .expect("matched transfer")
                    .charged_streams;
                wm.update::<ClusterAllocFact>(m[1], |c| {
                    c.allocated = c.allocated.saturating_sub(charged);
                });
                // Prevent double release if rules re-evaluate before the
                // Table I rule retracts the fact; the charge itself must stay
                // visible for the host-pair release in the Table I rules.
                wm.update::<TransferFact>(m[0], |t| t.cluster_released = true);
            }),
    );
}

impl TransferFact {
    /// The cluster this transfer charges under the balanced policy;
    /// transfers without cluster annotation share cluster 0.
    pub fn cluster_or_default(&self) -> ClusterId {
        self.spec.cluster.unwrap_or(ClusterId(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyConfig;
    use crate::model::*;
    use crate::rules_base::install_base_rules;

    fn spec(n: u32, cluster: u32) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", "tacc", format!("/data/f{n}.dat")),
            dest: Url::new("file", "isi", format!("/scratch/f{n}.dat")),
            bytes: 1,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: Some(ClusterId(cluster)),
            priority: None,
        }
    }

    fn run_batch(cfg: PolicyConfig, specs: Vec<TransferSpec>) -> Vec<(u32, u32)> {
        let mut s: Session<PolicyCtx> = Session::new();
        install_base_rules(&mut s);
        install_balanced_rules(&mut s);
        let mut ctx = PolicyCtx::new(cfg);
        for (i, sp) in specs.into_iter().enumerate() {
            s.wm.insert(TransferFact {
                id: TransferId(i as u64),
                spec: sp,
                state: TransferState::Pending,
                streams: None,
                charged_streams: 0,
                group: None,
                in_current_batch: true,
                suppressed: None,
                cluster_released: false,
                backend: None,
                backend_released: false,
            });
        }
        s.fire_all(&mut ctx);
        s.wm.iter::<TransferFact>()
            .map(|(_, t)| (t.cluster_or_default().0, t.charged_streams))
            .collect()
    }

    fn balanced_cfg(threshold: u32, clusters: u32, default: u32) -> PolicyConfig {
        PolicyConfig::default()
            .with_threshold(threshold)
            .with_cluster_factor(clusters)
            .with_default_streams(default)
            .with_allocation(AllocationPolicy::Balanced)
    }

    #[test]
    fn each_cluster_gets_its_share() {
        // Threshold 40, 2 clusters → 20 per cluster; default 8.
        // Cluster 0 submits 4 transfers: 8, 8, 4, 1.
        let grants = run_batch(balanced_cfg(40, 2, 8), (0..4).map(|i| spec(i, 0)).collect());
        let c0: Vec<u32> = grants.iter().map(|&(_, g)| g).collect();
        assert_eq!(c0, vec![8, 8, 4, 1]);
    }

    #[test]
    fn late_cluster_is_not_starved() {
        // Cluster 0 floods first, then cluster 1 arrives: it still gets its
        // full default because its share was reserved.
        let mut specs: Vec<TransferSpec> = (0..6).map(|i| spec(i, 0)).collect();
        specs.push(spec(100, 1));
        let grants = run_batch(balanced_cfg(40, 2, 8), specs);
        let late = grants.iter().find(|&&(c, _)| c == 1).unwrap();
        assert_eq!(late.1, 8, "late cluster receives its reserved share");
        // Cluster 0 totals its own share (+ starvation singles).
        let c0_total: u32 = grants
            .iter()
            .filter(|&&(c, _)| c == 0)
            .map(|&(_, g)| g)
            .sum();
        assert_eq!(c0_total, 8 + 8 + 4 + 1 + 1 + 1);
    }

    #[test]
    fn greedy_would_starve_where_balanced_does_not() {
        // Same arrival pattern under greedy: the late cluster gets 1 stream.
        let mut s: Session<PolicyCtx> = Session::new();
        install_base_rules(&mut s);
        crate::greedy::install_greedy_rules(&mut s);
        let cfg = PolicyConfig::default()
            .with_threshold(40)
            .with_default_streams(8)
            .with_allocation(AllocationPolicy::Greedy);
        let mut ctx = PolicyCtx::new(cfg);
        for i in 0..6 {
            s.wm.insert(TransferFact {
                id: TransferId(i),
                spec: spec(i as u32, 0),
                state: TransferState::Pending,
                streams: None,
                charged_streams: 0,
                group: None,
                in_current_batch: true,
                suppressed: None,
                cluster_released: false,
                backend: None,
                backend_released: false,
            });
        }
        s.wm.insert(TransferFact {
            id: TransferId(100),
            spec: spec(100, 1),
            state: TransferState::Pending,
            streams: None,
            charged_streams: 0,
            group: None,
            in_current_batch: true,
            suppressed: None,
            cluster_released: false,
            backend: None,
            backend_released: false,
        });
        s.fire_all(&mut ctx);
        let late =
            s.wm.find::<TransferFact>(|t| t.id == TransferId(100))
                .unwrap()
                .1
                .charged_streams;
        assert_eq!(late, 1, "greedy gives the latecomer a single stream");
    }

    #[test]
    fn cluster_ledger_releases_on_completion() {
        let mut s: Session<PolicyCtx> = Session::new();
        install_base_rules(&mut s);
        install_balanced_rules(&mut s);
        let mut ctx = PolicyCtx::new(balanced_cfg(40, 2, 20));
        s.wm.insert(TransferFact {
            id: TransferId(0),
            spec: spec(0, 0),
            state: TransferState::Pending,
            streams: None,
            charged_streams: 0,
            group: None,
            in_current_batch: true,
            suppressed: None,
            cluster_released: false,
            backend: None,
            backend_released: false,
        });
        s.fire_all(&mut ctx);
        let (_, c) = s.wm.find::<ClusterAllocFact>(|_| true).unwrap();
        assert_eq!(c.allocated, 20);

        let h = s.wm.handles::<TransferFact>()[0];
        s.wm.update::<TransferFact>(h, |t| {
            t.in_current_batch = false;
            t.state = TransferState::Completed;
        });
        s.fire_all(&mut ctx);
        let (_, c) = s.wm.find::<ClusterAllocFact>(|_| true).unwrap();
        assert_eq!(c.allocated, 0);
        let (_, p) = s.wm.find::<HostPairFact>(|_| true).unwrap();
        assert_eq!(p.allocated, 0);
    }

    #[test]
    fn unclustered_transfers_share_cluster_zero() {
        let mut sp = spec(0, 0);
        sp.cluster = None;
        let grants = run_batch(balanced_cfg(40, 4, 8), vec![sp, spec(1, 0)]);
        // Share = 10: first gets 8, second gets 2 (same implicit cluster 0).
        let gs: Vec<u32> = grants.iter().map(|&(_, g)| g).collect();
        assert_eq!(gs, vec![8, 2]);
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        // The Table III invariants over arbitrary interleaved batches:
        // every transfer is granted at least one stream and never more than
        // it requested, and each cluster's grant sequence equals replaying
        // its own arrivals alone against `balanced_grant` — so the
        // per-cluster share is never exceeded before saturation and traffic
        // from other clusters never steals a cluster's unused share.
        #[test]
        fn balanced_grants_are_cluster_isolated(
            threshold in 1u32..100,
            clusters in 1u32..6,
            default in 1u32..16,
            arrivals in proptest::collection::vec(
                (0u32..5, proptest::option::of(1u32..12)),
                1..32,
            ),
        ) {
            let cfg = balanced_cfg(threshold, clusters, default);
            let share = cfg.cluster_share("tacc", "isi");
            let mut specs = Vec::new();
            for (i, &(cluster, requested)) in arrivals.iter().enumerate() {
                let mut sp = spec(i as u32, cluster % clusters);
                sp.requested_streams = requested;
                specs.push(sp);
            }
            let grants = run_batch(cfg, specs);
            prop_assert_eq!(grants.len(), arrivals.len());
            for (&(_, g), &(_, requested)) in grants.iter().zip(&arrivals) {
                let requested = requested.unwrap_or(default);
                prop_assert!(g >= 1, "no transfer is starved below one stream");
                prop_assert!(g <= requested.max(1), "never granted more than requested");
            }
            for c in 0..clusters {
                let mut allocated = 0u32;
                for (&(gc, g), &(_, requested)) in grants.iter().zip(&arrivals) {
                    if gc != c {
                        continue;
                    }
                    let requested = requested.unwrap_or(default);
                    let expect = crate::ledger::balanced_grant(allocated, requested, share);
                    prop_assert_eq!(g, expect, "cluster {} grant diverges from its isolated replay", c);
                    if allocated < share {
                        prop_assert!(
                            allocated + g <= share,
                            "pre-saturation grants stay within the cluster share"
                        );
                    }
                    allocated += g;
                }
            }
        }
    }
}
