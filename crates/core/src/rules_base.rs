//! The Table I rule set: "Policies enforced for all transfers".
//!
//! Each rule below corresponds to one row of Table I in the paper (quoted in
//! the rule names). They run at high salience so that bookkeeping (dedup,
//! resource tracking, grouping, defaults) settles before the allocation
//! policies (Tables II/III, salience 50) charge streams.

use crate::ctx::PolicyCtx;
use crate::model::{
    CleanupFact, CleanupState, HostPairFact, ResourceFact, ResourceState, SuppressReason,
    TransferFact, TransferState, Url,
};
use pwm_rules::{FactHandle, Rule, Session, WorkingMemory};

/// Indexed probe: the resource tracking the staged file at `dest`, if any.
/// Resources are unique per destination ("create a resource" guards on it).
pub(crate) fn resource_for<'a>(
    wm: &'a WorkingMemory,
    dest: &Url,
) -> Option<(FactHandle, &'a ResourceFact)> {
    wm.find_by::<ResourceFact, Url>(dest)
}

/// FNV-1a key of a transfer's (source, destination) URL pair. Transfer
/// facts are indexed by this so the dedup rules probe a tiny hash bucket
/// instead of scanning every resident transfer; bucket hits re-verify the
/// actual URLs, so a collision costs a compare, never a wrong match.
pub(crate) fn transfer_pair_key(source: &Url, dest: &Url) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x1_0000_01b3);
        }
        hash ^= 0x1f;
        hash = hash.wrapping_mul(0x1_0000_01b3);
    };
    for url in [source, dest] {
        eat(url.scheme.as_bytes());
        eat(url.host.as_bytes());
        eat(url.path.as_bytes());
    }
    hash
}

/// Iterate only the transfers of the batch currently under evaluation —
/// the indexed equivalent of `iter::<TransferFact>()` + an
/// `in_current_batch` filter, O(batch) instead of O(resident transfers).
pub(crate) fn batch_transfers<'a>(
    wm: &'a WorkingMemory,
) -> impl Iterator<Item = (FactHandle, &'a TransferFact)> + 'a {
    wm.iter_by::<TransferFact, bool>(&true)
}

/// Indexed probe: the allocation ledger for a (source, destination) host
/// pair, if any. Pairs are unique ("generate a unique group ID" guards).
pub(crate) fn host_pair_for<'a>(
    wm: &'a WorkingMemory,
    src_host: &str,
    dst_host: &str,
) -> Option<(FactHandle, &'a HostPairFact)> {
    wm.find_by::<HostPairFact, (String, String)>(&(src_host.to_string(), dst_host.to_string()))
}

/// Install the Table I rules into a session.
pub fn install_base_rules(session: &mut Session<PolicyCtx>) {
    // Alpha memories for the equality joins below: rules probe resources by
    // destination URL and ledgers by host pair instead of scanning the full
    // fact population on every re-evaluation.
    session
        .wm
        .register_index::<ResourceFact, Url>(|r| r.dest.clone());
    session
        .wm
        .register_index::<HostPairFact, (String, String)>(|p| {
            (p.src_host.clone(), p.dst_host.clone())
        });
    // Dedup support: transfers bucketed by (source, dest) pair hash so the
    // duplicate / already-in-progress rules compare against the handful of
    // transfers sharing a pair instead of the whole population, and by the
    // current-batch flag so every batch-scoped rule walks O(batch) facts.
    session
        .wm
        .register_index::<TransferFact, u64>(|t| transfer_pair_key(&t.spec.source, &t.spec.dest));
    session
        .wm
        .register_index::<TransferFact, bool>(|t| t.in_current_batch);
    // "Remove duplicate transfers from the transfer list": a batch transfer
    // whose (source, dest) already appears earlier in the same batch is
    // suppressed.
    session.add_rule(
        Rule::new("remove duplicate transfers from the transfer list")
            .salience(100)
            .watches::<TransferFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.suppressed.is_some() {
                        continue;
                    }
                    let key = transfer_pair_key(&t.spec.source, &t.spec.dest);
                    let earlier_dup = wm.iter_by::<TransferFact, u64>(&key).any(|(uh, u)| {
                        uh < h
                            && u.in_current_batch
                            && u.suppressed.is_none()
                            && u.spec.source == t.spec.source
                            && u.spec.dest == t.spec.dest
                    });
                    if earlier_dup {
                        out.push(vec![h]);
                    }
                }
                out
            })
            .then(|wm, ctx, m| {
                if ctx.config.dedup {
                    wm.update::<TransferFact>(m[0], |t| {
                        t.suppressed = Some(SuppressReason::DuplicateInBatch);
                    });
                }
            }),
    );

    // "Remove transfers from the transfer list that are already in
    // progress": a matching transfer from an earlier batch is still running.
    session.add_rule(
        Rule::new("remove transfers that are already in progress")
            .salience(95)
            .watches::<TransferFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.suppressed.is_some() {
                        continue;
                    }
                    let key = transfer_pair_key(&t.spec.source, &t.spec.dest);
                    let in_progress = wm.iter_by::<TransferFact, u64>(&key).any(|(uh, u)| {
                        uh != h
                            && !u.in_current_batch
                            && u.state == TransferState::InProgress
                            && u.spec.source == t.spec.source
                            && u.spec.dest == t.spec.dest
                    });
                    if in_progress {
                        out.push(vec![h]);
                    }
                }
                out
            })
            .then(|wm, ctx, m| {
                if ctx.config.dedup {
                    wm.update::<TransferFact>(m[0], |t| {
                        t.suppressed = Some(SuppressReason::AlreadyInProgress);
                    });
                }
            }),
    );

    // Dedup against files already staged: "the Policy Service maintains
    // information about the location of staged files so that it can prevent
    // subsequent staging operations from restaging the same files".
    session.add_rule(
        Rule::new("remove transfers whose file is already staged")
            .salience(94)
            .watches::<TransferFact>()
            .watches::<ResourceFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.suppressed.is_some() {
                        continue;
                    }
                    let staged = resource_for(wm, &t.spec.dest)
                        .is_some_and(|(_, r)| r.state == ResourceState::Staged);
                    if staged {
                        out.push(vec![h]);
                    }
                }
                out
            })
            .then(|wm, ctx, m| {
                if ctx.config.dedup {
                    wm.update::<TransferFact>(m[0], |t| {
                        t.suppressed = Some(SuppressReason::AlreadyStaged);
                    });
                }
            }),
    );

    // "Create a resource for a new transfer to track the resulting staged
    // file".
    session.add_rule(
        Rule::new("create a resource for a new transfer")
            .salience(90)
            .watches::<TransferFact>()
            .watches::<ResourceFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.suppressed.is_some() {
                        continue;
                    }
                    let exists = resource_for(wm, &t.spec.dest).is_some();
                    if !exists {
                        out.push(vec![h]);
                    }
                }
                out
            })
            .then(|wm, _, m| {
                let (id, source, dest, workflow) = {
                    let t = wm.get::<TransferFact>(m[0]).expect("matched transfer");
                    (
                        t.id,
                        t.spec.source.clone(),
                        t.spec.dest.clone(),
                        t.spec.workflow,
                    )
                };
                let mut users = std::collections::BTreeSet::new();
                users.insert(workflow);
                wm.insert(ResourceFact {
                    dest,
                    source,
                    users,
                    state: ResourceState::Staging,
                    producer: Some(id),
                });
            }),
    );

    // "Associate a transfer with a resource to track the number of workflows
    // using the staged file" — also for suppressed (duplicate) requests, so
    // a second workflow sharing a staged file protects it from cleanup.
    session.add_rule(
        Rule::new("associate a transfer with a resource")
            .salience(89)
            .watches::<TransferFact>()
            .watches::<ResourceFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if let Some((rh, r)) = resource_for(wm, &t.spec.dest) {
                        if !r.users.contains(&t.spec.workflow) {
                            out.push(vec![h, rh]);
                        }
                    }
                }
                out
            })
            .then(|wm, _, m| {
                let workflow = wm
                    .get::<TransferFact>(m[0])
                    .expect("matched transfer")
                    .spec
                    .workflow;
                wm.update::<ResourceFact>(m[1], |r| {
                    r.users.insert(workflow);
                });
            }),
    );

    // "Generate a unique group ID for a source and destination host pair".
    session.add_rule(
        Rule::new("generate a unique group ID for a host pair")
            .salience(85)
            .watches::<TransferFact>()
            .watches::<HostPairFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                let mut seen: Vec<(String, String)> = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.suppressed.is_some() {
                        continue;
                    }
                    let key = (t.spec.source.host.clone(), t.spec.dest.host.clone());
                    let exists = wm.find_by::<HostPairFact, (String, String)>(&key).is_some();
                    if !exists && !seen.contains(&key) {
                        seen.push(key);
                        out.push(vec![h]);
                    }
                }
                out
            })
            .then(|wm, ctx, m| {
                let (src_host, dst_host) = {
                    let t = wm.get::<TransferFact>(m[0]).expect("matched transfer");
                    (t.spec.source.host.clone(), t.spec.dest.host.clone())
                };
                // Guard against a pair created by an earlier firing in the
                // same cascade.
                if host_pair_for(wm, &src_host, &dst_host).is_none() {
                    let group = ctx.fresh_group();
                    wm.insert(HostPairFact {
                        src_host,
                        dst_host,
                        group,
                        allocated: 0,
                        peak_allocated: 0,
                    });
                }
            }),
    );

    // "Assign the group ID to a transfer based on its source and destination
    // host pair".
    session.add_rule(
        Rule::new("assign the group ID to a transfer")
            .salience(84)
            .watches::<TransferFact>()
            .watches::<HostPairFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.group.is_some() || t.suppressed.is_some() {
                        continue;
                    }
                    if let Some((ph, _)) = host_pair_for(wm, &t.spec.source.host, &t.spec.dest.host)
                    {
                        out.push(vec![h, ph]);
                    }
                }
                out
            })
            .then(|wm, _, m| {
                let group = wm.get::<HostPairFact>(m[1]).expect("matched pair").group;
                wm.update::<TransferFact>(m[0], |t| t.group = Some(group));
            }),
    );

    // "Assign a default level of parallel streams to a transfer".
    session.add_rule(
        Rule::new("assign a default level of parallel streams")
            .salience(80)
            .when_each::<TransferFact>(|t, _: &PolicyCtx| t.in_current_batch && t.streams.is_none())
            .then(|wm, ctx, m| {
                let default = ctx.config.default_streams;
                wm.update::<TransferFact>(m[0], |t| {
                    t.streams = Some(t.spec.requested_streams.unwrap_or(default));
                });
            }),
    );

    // "Ensure each transfer has at least one parallel stream assigned".
    session.add_rule(
        Rule::new("ensure each transfer has at least one parallel stream")
            .salience(20)
            .when_each::<TransferFact>(|t, _: &PolicyCtx| t.streams == Some(0))
            .then(|wm, _, m| {
                wm.update::<TransferFact>(m[0], |t| t.streams = Some(1));
            }),
    );

    // "Remove a transfer that has completed": release its charged streams,
    // mark the resource staged, and retract the fact. "The detailed state
    // about successfully completed transfers is removed from the Policy
    // Memory; however, the Policy Service maintains information about the
    // location of staged files."
    session.add_rule(
        Rule::new("remove a transfer that has completed")
            .salience(70)
            .when_each::<TransferFact>(|t, _: &PolicyCtx| t.state == TransferState::Completed)
            .then(|wm, _, m| {
                let (id, charged, src_host, dst_host, dest) = {
                    let t = wm.get::<TransferFact>(m[0]).expect("matched transfer");
                    (
                        t.id,
                        t.charged_streams,
                        t.spec.source.host.clone(),
                        t.spec.dest.host.clone(),
                        t.spec.dest.clone(),
                    )
                };
                release_streams(wm, &src_host, &dst_host, id, charged);
                if let Some((rh, _)) = resource_for(wm, &dest) {
                    wm.update::<ResourceFact>(rh, |r| {
                        if r.producer == Some(id) {
                            r.state = ResourceState::Staged;
                            r.producer = None;
                        }
                    });
                }
                wm.retract(m[0]);
            }),
    );

    // "Remove a transfer that has failed": release streams; drop the
    // half-made resource so a retry is not treated as a duplicate.
    session.add_rule(
        Rule::new("remove a transfer that has failed")
            .salience(70)
            .when_each::<TransferFact>(|t, _: &PolicyCtx| t.state == TransferState::Failed)
            .then(|wm, _, m| {
                let (id, charged, src_host, dst_host, dest) = {
                    let t = wm.get::<TransferFact>(m[0]).expect("matched transfer");
                    (
                        t.id,
                        t.charged_streams,
                        t.spec.source.host.clone(),
                        t.spec.dest.host.clone(),
                        t.spec.dest.clone(),
                    )
                };
                release_streams(wm, &src_host, &dst_host, id, charged);
                if let Some((rh, r)) = resource_for(wm, &dest) {
                    if r.producer == Some(id) && r.state == ResourceState::Staging {
                        wm.retract(rh);
                    }
                }
                wm.retract(m[0]);
            }),
    );

    install_cleanup_rules(session);
}

fn release_streams(
    wm: &mut pwm_rules::WorkingMemory,
    src_host: &str,
    dst_host: &str,
    _id: crate::model::TransferId,
    charged: u32,
) {
    if charged == 0 {
        return;
    }
    if let Some((ph, _)) = host_pair_for(wm, src_host, dst_host) {
        wm.update::<HostPairFact>(ph, |p| {
            p.allocated = p.allocated.saturating_sub(charged);
        });
    }
}

/// The cleanup-related rows of Table I.
fn install_cleanup_rules(session: &mut Session<PolicyCtx>) {
    // Duplicate cleanup: "If there is a duplicate cleanup request and the
    // cleanup operation is in progress or completed, the Policy Service
    // removes the current operation from the cleanup list."
    session.add_rule(
        Rule::new("remove duplicate cleanup requests")
            .salience(60)
            .watches::<CleanupFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                for (h, c) in wm.iter::<CleanupFact>() {
                    if !c.in_current_batch || c.suppressed.is_some() {
                        continue;
                    }
                    let dup = wm.iter::<CleanupFact>().any(|(uh, u)| {
                        uh != h
                            && u.spec.file == c.spec.file
                            && u.suppressed.is_none()
                            && (uh < h || !u.in_current_batch)
                            && matches!(u.state, CleanupState::Pending | CleanupState::InProgress)
                    });
                    if dup {
                        out.push(vec![h]);
                    }
                }
                out
            })
            .then(|wm, _, m| {
                wm.update::<CleanupFact>(m[0], |c| {
                    c.suppressed = Some(SuppressReason::DuplicateCleanup);
                });
            }),
    );

    // "Detach a transfer from the resource when it requests to cleanup the
    // resource's staged file".
    session.add_rule(
        Rule::new("detach a transfer from the resource on cleanup request")
            .salience(58)
            .watches::<CleanupFact>()
            .watches::<ResourceFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                for (h, c) in wm.iter::<CleanupFact>() {
                    if !c.in_current_batch || c.suppressed.is_some() {
                        continue;
                    }
                    if let Some((rh, r)) = resource_for(wm, &c.spec.file) {
                        if r.users.contains(&c.spec.workflow) {
                            out.push(vec![h, rh]);
                        }
                    }
                }
                out
            })
            .then(|wm, _, m| {
                let workflow = wm
                    .get::<CleanupFact>(m[0])
                    .expect("matched cleanup")
                    .spec
                    .workflow;
                wm.update::<ResourceFact>(m[1], |r| {
                    r.users.remove(&workflow);
                });
            }),
    );

    // "Remove cleanups from the cleanup list that specify resources that
    // have other transfers using the staged files" — i.e. "if the Policy
    // Service receives a cleanup request for a file that is in use by other
    // workflows, then it removes the cleanup operation from the list".
    session.add_rule(
        Rule::new("remove cleanups for resources still in use")
            .salience(55)
            .watches::<CleanupFact>()
            .watches::<ResourceFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                for (h, c) in wm.iter::<CleanupFact>() {
                    if !c.in_current_batch || c.suppressed.is_some() {
                        continue;
                    }
                    if let Some((_, r)) = resource_for(wm, &c.spec.file) {
                        if !r.users.is_empty() {
                            out.push(vec![h]);
                        }
                    }
                }
                out
            })
            .then(|wm, _, m| {
                wm.update::<CleanupFact>(m[0], |c| {
                    c.suppressed = Some(SuppressReason::ResourceInUse);
                });
            }),
    );

    // Completed cleanups leave policy memory, along with the resource whose
    // file no longer exists.
    session.add_rule(
        Rule::new("remove a cleanup that has completed")
            .salience(54)
            .when_each::<CleanupFact>(|c, _: &PolicyCtx| c.state == CleanupState::Completed)
            .then(|wm, _, m| {
                let file = wm
                    .get::<CleanupFact>(m[0])
                    .expect("matched cleanup")
                    .spec
                    .file
                    .clone();
                if let Some((rh, r)) = resource_for(wm, &file) {
                    if r.users.is_empty() {
                        wm.retract(rh);
                    }
                }
                wm.retract(m[0]);
            }),
    );
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // configs are tweaked per-test
mod tests {
    use super::*;
    use crate::config::PolicyConfig;
    use crate::ctx::PolicyCtx;
    use crate::model::*;
    use pwm_rules::Session;

    fn session() -> (Session<PolicyCtx>, PolicyCtx) {
        let mut s = Session::new();
        install_base_rules(&mut s);
        (s, PolicyCtx::new(PolicyConfig::default()))
    }

    fn fact(id: u64, src_path: &str, dst_path: &str, wf: u64) -> TransferFact {
        TransferFact {
            id: TransferId(id),
            spec: TransferSpec {
                source: Url::new("gsiftp", "src-host", src_path),
                dest: Url::new("file", "dst-host", dst_path),
                bytes: 1,
                requested_streams: None,
                workflow: WorkflowId(wf),
                cluster: None,
                priority: None,
            },
            state: TransferState::Pending,
            streams: None,
            charged_streams: 0,
            group: None,
            in_current_batch: true,
            suppressed: None,
            cluster_released: false,
            backend: None,
            backend_released: false,
        }
    }

    #[test]
    fn rule_insert_new_transfers_creates_resources() {
        // Table I: "Create a resource for a new transfer to track the
        // resulting staged file."
        let (mut s, mut ctx) = session();
        s.wm.insert(fact(1, "/a", "/a", 1));
        s.fire_all(&mut ctx);
        assert_eq!(s.wm.count::<ResourceFact>(), 1);
        let (_, r) = s.wm.find::<ResourceFact>(|_| true).unwrap();
        assert_eq!(r.state, ResourceState::Staging);
        assert_eq!(r.producer, Some(TransferId(1)));
        assert!(r.users.contains(&WorkflowId(1)));
    }

    #[test]
    fn rule_duplicate_removal_keeps_the_first() {
        let (mut s, mut ctx) = session();
        s.wm.insert(fact(1, "/a", "/a", 1));
        s.wm.insert(fact(2, "/a", "/a", 1));
        s.fire_all(&mut ctx);
        let suppressed: Vec<_> =
            s.wm.iter::<TransferFact>()
                .map(|(_, t)| (t.id, t.suppressed))
                .collect();
        assert_eq!(suppressed[0], (TransferId(1), None));
        assert_eq!(
            suppressed[1],
            (TransferId(2), Some(SuppressReason::DuplicateInBatch))
        );
        // Only one resource despite two requests.
        assert_eq!(s.wm.count::<ResourceFact>(), 1);
    }

    #[test]
    fn rule_dedup_disabled_by_config() {
        let mut s = Session::new();
        install_base_rules(&mut s);
        let mut cfg = PolicyConfig::default();
        cfg.dedup = false;
        let mut ctx = PolicyCtx::new(cfg);
        s.wm.insert(fact(1, "/a", "/a", 1));
        s.wm.insert(fact(2, "/a", "/a", 1));
        s.fire_all(&mut ctx);
        assert!(s
            .wm
            .iter::<TransferFact>()
            .all(|(_, t)| t.suppressed.is_none()));
    }

    #[test]
    fn rule_group_id_per_host_pair() {
        // Table I: "Generate a unique group ID for a source and destination
        // host pair" + "Assign the group ID to a transfer".
        let (mut s, mut ctx) = session();
        s.wm.insert(fact(1, "/a", "/a", 1));
        s.wm.insert(fact(2, "/b", "/b", 1));
        let mut other = fact(3, "/c", "/c", 1);
        other.spec.source.host = "other-host".into();
        s.wm.insert(other);
        s.fire_all(&mut ctx);
        assert_eq!(s.wm.count::<HostPairFact>(), 2);
        let groups: Vec<Option<GroupId>> =
            s.wm.iter::<TransferFact>().map(|(_, t)| t.group).collect();
        assert_eq!(groups[0], groups[1], "same pair, same group");
        assert_ne!(groups[0], groups[2], "different pair, different group");
        assert!(groups.iter().all(|g| g.is_some()));
    }

    #[test]
    fn rule_default_streams_and_floor() {
        let (mut s, mut ctx) = session();
        s.wm.insert(fact(1, "/a", "/a", 1));
        let mut zero = fact(2, "/b", "/b", 1);
        zero.spec.requested_streams = Some(0);
        s.wm.insert(zero);
        s.fire_all(&mut ctx);
        let streams: Vec<Option<u32>> =
            s.wm.iter::<TransferFact>()
                .map(|(_, t)| t.streams)
                .collect();
        assert_eq!(streams[0], Some(4), "default assigned");
        assert_eq!(streams[1], Some(1), "zero request floored to one");
    }

    #[test]
    fn rule_completed_transfer_removed_resource_staged() {
        let (mut s, mut ctx) = session();
        let h = s.wm.insert(fact(1, "/a", "/a", 1));
        s.fire_all(&mut ctx);
        s.wm.update::<TransferFact>(h, |t| {
            t.in_current_batch = false;
            t.state = TransferState::Completed;
        });
        s.fire_all(&mut ctx);
        assert_eq!(s.wm.count::<TransferFact>(), 0, "transfer fact removed");
        let (_, r) = s.wm.find::<ResourceFact>(|_| true).unwrap();
        assert_eq!(r.state, ResourceState::Staged, "staged-file location kept");
        assert_eq!(r.producer, None);
    }

    #[test]
    fn rule_failed_transfer_removed_with_its_resource() {
        let (mut s, mut ctx) = session();
        let h = s.wm.insert(fact(1, "/a", "/a", 1));
        s.fire_all(&mut ctx);
        s.wm.update::<TransferFact>(h, |t| {
            t.in_current_batch = false;
            t.state = TransferState::Failed;
        });
        s.fire_all(&mut ctx);
        assert_eq!(s.wm.count::<TransferFact>(), 0);
        assert_eq!(
            s.wm.count::<ResourceFact>(),
            0,
            "half-staged resource dropped"
        );
    }

    fn cleanup_fact(id: u64, path: &str, wf: u64) -> CleanupFact {
        CleanupFact {
            id: CleanupId(id),
            spec: CleanupSpec {
                file: Url::new("file", "dst-host", path),
                workflow: WorkflowId(wf),
            },
            state: CleanupState::Pending,
            in_current_batch: true,
            suppressed: None,
        }
    }

    fn staged_resource(s: &mut Session<PolicyCtx>, path: &str, users: &[u64]) {
        let mut set = std::collections::BTreeSet::new();
        for &u in users {
            set.insert(WorkflowId(u));
        }
        s.wm.insert(ResourceFact {
            dest: Url::new("file", "dst-host", path),
            source: Url::new("gsiftp", "src-host", path),
            users: set,
            state: ResourceState::Staged,
            producer: None,
        });
    }

    #[test]
    fn rule_detach_then_in_use_suppression() {
        // Table I: "Detach a transfer from the resource when it requests to
        // cleanup" + "Remove cleanups ... that have other transfers using
        // the staged files".
        let (mut s, mut ctx) = session();
        staged_resource(&mut s, "/a", &[1, 2]);
        s.wm.insert(cleanup_fact(1, "/a", 1));
        s.fire_all(&mut ctx);
        let (_, c) = s.wm.find::<CleanupFact>(|_| true).unwrap();
        assert_eq!(c.suppressed, Some(SuppressReason::ResourceInUse));
        let (_, r) = s.wm.find::<ResourceFact>(|_| true).unwrap();
        assert!(!r.users.contains(&WorkflowId(1)), "requester detached");
        assert!(r.users.contains(&WorkflowId(2)), "other user kept");
    }

    #[test]
    fn rule_last_user_cleanup_proceeds() {
        let (mut s, mut ctx) = session();
        staged_resource(&mut s, "/a", &[1]);
        s.wm.insert(cleanup_fact(1, "/a", 1));
        s.fire_all(&mut ctx);
        let (_, c) = s.wm.find::<CleanupFact>(|_| true).unwrap();
        assert_eq!(c.suppressed, None, "no other users: cleanup proceeds");
    }

    #[test]
    fn rule_duplicate_cleanup_suppressed() {
        let (mut s, mut ctx) = session();
        staged_resource(&mut s, "/a", &[1]);
        let h1 = s.wm.insert(cleanup_fact(1, "/a", 1));
        s.fire_all(&mut ctx);
        // First cleanup handed out (in progress).
        s.wm.update::<CleanupFact>(h1, |c| {
            c.in_current_batch = false;
            c.state = CleanupState::InProgress;
        });
        s.wm.insert(cleanup_fact(2, "/a", 1));
        s.fire_all(&mut ctx);
        let (_, dup) = s.wm.find::<CleanupFact>(|c| c.id == CleanupId(2)).unwrap();
        assert_eq!(dup.suppressed, Some(SuppressReason::DuplicateCleanup));
    }

    #[test]
    fn rule_completed_cleanup_removes_resource() {
        let (mut s, mut ctx) = session();
        staged_resource(&mut s, "/a", &[1]);
        let h = s.wm.insert(cleanup_fact(1, "/a", 1));
        s.fire_all(&mut ctx);
        s.wm.update::<CleanupFact>(h, |c| {
            c.in_current_batch = false;
            c.state = CleanupState::Completed;
        });
        s.fire_all(&mut ctx);
        assert_eq!(s.wm.count::<CleanupFact>(), 0);
        assert_eq!(s.wm.count::<ResourceFact>(), 0);
    }

    #[test]
    fn rule_in_progress_dedup_attaches_workflow() {
        // A transfer already in progress suppresses the new request AND the
        // new workflow becomes a user of the staged file.
        let (mut s, mut ctx) = session();
        let h = s.wm.insert(fact(1, "/a", "/a", 1));
        s.fire_all(&mut ctx);
        s.wm.update::<TransferFact>(h, |t| {
            t.in_current_batch = false;
            t.state = TransferState::InProgress;
        });
        s.wm.insert(fact(2, "/a", "/a", 2));
        s.fire_all(&mut ctx);
        let (_, second) =
            s.wm.find::<TransferFact>(|t| t.id == TransferId(2))
                .unwrap();
        assert_eq!(second.suppressed, Some(SuppressReason::AlreadyInProgress));
        let (_, r) = s.wm.find::<ResourceFact>(|_| true).unwrap();
        assert!(r.users.contains(&WorkflowId(2)));
    }
}
