//! Deterministic policy-service fault injection.
//!
//! Two pieces turn the advisory-transport stack into a chaos testbed:
//!
//! * [`SharedSimClock`] — a cloneable handle onto the driver's virtual
//!   clock. The workflow executor publishes its current [`SimTime`] into
//!   the clock each scheduling step, so transports deep inside a
//!   `Box<dyn PolicyTransport>` chain can evaluate time-windowed faults
//!   without threading the clock through every call signature.
//! * [`ChaosTransport`] — wraps any [`PolicyTransport`] and consults a
//!   [`FaultPlan`] of [`ServiceFault`] windows against that clock. While a
//!   window is active every call fails with a [`TransportError`], which is
//!   exactly what a crashed replica or timed-out advice call looks like to
//!   the client. Wrapping one replica of a
//!   [`FailoverTransport`](crate::FailoverTransport) chain models replica
//!   crash/recovery; wrapping the only transport models a full outage the
//!   executor must ride out on fallback advice.
//!
//! Everything is plain data plus an atomic clock read: with the same fault
//! plan and the same executor seed, the injected failure sequence — and
//! therefore the makespan — reproduces bit-for-bit.

use crate::advice::{CleanupAdvice, CleanupOutcome, TransferAdvice, TransferOutcome};
use crate::model::{CleanupSpec, TransferSpec};
use crate::transport::{PolicyTransport, TransportError};
use parking_lot::Mutex;
use pwm_sim::{FaultPlan, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cloneable view of the simulation clock, readable from inside boxed
/// transports. The owner (the workflow executor) publishes time with
/// [`SharedSimClock::set`]; consumers read it with [`SharedSimClock::now`].
#[derive(Debug, Clone, Default)]
pub struct SharedSimClock {
    micros: Arc<AtomicU64>,
}

impl SharedSimClock {
    /// A clock starting at `t = 0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publish the current simulation time.
    pub fn set(&self, now: SimTime) {
        self.micros.store(now.as_micros(), Ordering::Relaxed);
    }

    /// The most recently published simulation time.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.micros.load(Ordering::Relaxed))
    }
}

/// How the policy service misbehaves during a fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFault {
    /// The replica is down: connections are refused outright.
    Outage,
    /// The replica accepts the connection but advice never arrives in
    /// time; the client sees a timeout. Indistinguishable from `Outage`
    /// in effect, but labelled separately in fault logs and reports.
    Timeout,
}

/// One injected failure: when it happened and what it looked like.
pub type InjectedFailure = (SimTime, ServiceFault);

/// Shared observation state between a [`ChaosTransport`] and its probe.
#[derive(Debug, Default)]
struct ChaosState {
    injected: AtomicU64,
    passed: AtomicU64,
    log: Mutex<Vec<InjectedFailure>>,
}

/// A cloneable handle for reading what a [`ChaosTransport`] injected,
/// available after the transport itself moves into an executor.
#[derive(Clone)]
pub struct ChaosProbe {
    state: Arc<ChaosState>,
}

impl ChaosProbe {
    /// Calls that were failed by an active fault window.
    pub fn injected_failures(&self) -> u64 {
        self.state.injected.load(Ordering::Relaxed)
    }

    /// Calls that passed through to the wrapped transport.
    pub fn calls_passed(&self) -> u64 {
        self.state.passed.load(Ordering::Relaxed)
    }

    /// The full injection log: one `(time, kind)` entry per failed call,
    /// in call order. A deterministic run reproduces this exactly.
    pub fn fault_log(&self) -> Vec<InjectedFailure> {
        self.state.log.lock().clone()
    }
}

/// Wraps a transport and fails calls during scheduled fault windows.
pub struct ChaosTransport {
    inner: Box<dyn PolicyTransport>,
    clock: SharedSimClock,
    plan: FaultPlan<ServiceFault>,
    state: Arc<ChaosState>,
    obs: Option<pwm_obs::Obs>,
}

impl ChaosTransport {
    /// Wrap `inner`, failing calls whenever `plan` has a window active at
    /// the time currently published on `clock`.
    pub fn new(
        inner: Box<dyn PolicyTransport>,
        clock: SharedSimClock,
        plan: FaultPlan<ServiceFault>,
    ) -> Self {
        ChaosTransport {
            inner,
            clock,
            plan,
            state: Arc::new(ChaosState::default()),
            obs: None,
        }
    }

    /// Attach observability: every injected failure increments
    /// `pwm_chaos_injected_failures_total{kind}` and emits a sim-time trace
    /// instant; passed calls increment `pwm_chaos_calls_passed_total`.
    pub fn with_obs(mut self, obs: pwm_obs::Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// A probe for reading injection statistics after the transport moves.
    pub fn probe(&self) -> ChaosProbe {
        ChaosProbe {
            state: Arc::clone(&self.state),
        }
    }

    /// Fail if a fault window is active right now.
    fn check(&self) -> Result<(), TransportError> {
        let now = self.clock.now();
        if let Some(ev) = self.plan.active_at(now).next() {
            self.state.injected.fetch_add(1, Ordering::Relaxed);
            self.state.log.lock().push((now, ev.kind));
            if let Some(obs) = &self.obs {
                let kind = match ev.kind {
                    ServiceFault::Outage => "outage",
                    ServiceFault::Timeout => "timeout",
                };
                obs.registry
                    .counter(
                        "pwm_chaos_injected_failures_total",
                        "Policy-transport calls failed by an active fault window",
                        &[("kind", kind)],
                    )
                    .inc();
                obs.tracer
                    .instant("chaos_fault", "chaos", now, &[("kind", kind.to_string())]);
            }
            return Err(match ev.kind {
                ServiceFault::Outage => {
                    TransportError::Io(format!("injected outage: connection refused at {now}"))
                }
                ServiceFault::Timeout => {
                    TransportError::Io(format!("injected advice timeout at {now}"))
                }
            });
        }
        self.state.passed.fetch_add(1, Ordering::Relaxed);
        if let Some(obs) = &self.obs {
            obs.registry
                .counter(
                    "pwm_chaos_calls_passed_total",
                    "Policy-transport calls that passed through to the wrapped transport",
                    &[],
                )
                .inc();
        }
        Ok(())
    }
}

impl PolicyTransport for ChaosTransport {
    fn evaluate_transfers(
        &mut self,
        batch: Vec<TransferSpec>,
    ) -> Result<Vec<TransferAdvice>, TransportError> {
        self.check()?;
        self.inner.evaluate_transfers(batch)
    }

    fn report_transfers(&mut self, outcomes: Vec<TransferOutcome>) -> Result<(), TransportError> {
        self.check()?;
        self.inner.report_transfers(outcomes)
    }

    fn evaluate_cleanups(
        &mut self,
        batch: Vec<CleanupSpec>,
    ) -> Result<Vec<CleanupAdvice>, TransportError> {
        self.check()?;
        self.inner.evaluate_cleanups(batch)
    }

    fn report_cleanups(&mut self, outcomes: Vec<CleanupOutcome>) -> Result<(), TransportError> {
        self.check()?;
        self.inner.report_cleanups(outcomes)
    }

    fn report_health(
        &mut self,
        events: Vec<crate::model::HealthEvent>,
    ) -> Result<(), TransportError> {
        self.check()?;
        self.inner.report_health(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyConfig;
    use crate::controller::{PolicyController, DEFAULT_SESSION};
    use crate::failover::FailoverTransport;
    use crate::model::{Url, WorkflowId};
    use crate::transport::InProcessTransport;
    use pwm_sim::SimDuration;

    fn spec(n: u32) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", "s", format!("/f{n}")),
            dest: Url::new("file", "d", format!("/f{n}")),
            bytes: 1,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: None,
            priority: None,
        }
    }

    fn live() -> Box<dyn PolicyTransport> {
        let c = PolicyController::new(PolicyConfig::default());
        Box::new(InProcessTransport::new(c, DEFAULT_SESSION))
    }

    fn outage_plan(start_s: u64, dur_s: u64) -> FaultPlan<ServiceFault> {
        let mut plan = FaultPlan::new();
        plan.add(
            SimTime::from_secs(start_s),
            SimDuration::from_secs(dur_s),
            ServiceFault::Outage,
        );
        plan
    }

    #[test]
    fn calls_pass_outside_fault_windows() {
        let clock = SharedSimClock::new();
        let mut t = ChaosTransport::new(live(), clock.clone(), outage_plan(100, 50));
        let probe = t.probe();
        clock.set(SimTime::from_secs(10));
        assert!(t.evaluate_transfers(vec![spec(1)]).is_ok());
        clock.set(SimTime::from_secs(200));
        assert!(t.evaluate_transfers(vec![spec(2)]).is_ok());
        assert_eq!(probe.calls_passed(), 2);
        assert_eq!(probe.injected_failures(), 0);
    }

    #[test]
    fn calls_fail_inside_the_window_and_are_logged() {
        let clock = SharedSimClock::new();
        let mut t = ChaosTransport::new(live(), clock.clone(), outage_plan(100, 50));
        let probe = t.probe();
        clock.set(SimTime::from_secs(120));
        let err = t.evaluate_transfers(vec![spec(1)]).unwrap_err();
        assert!(matches!(err, TransportError::Io(_)));
        assert!(t.report_transfers(vec![]).is_err());
        assert_eq!(probe.injected_failures(), 2);
        assert_eq!(
            probe.fault_log(),
            vec![
                (SimTime::from_secs(120), ServiceFault::Outage),
                (SimTime::from_secs(120), ServiceFault::Outage),
            ]
        );
    }

    #[test]
    fn timeout_faults_are_distinguishable_in_the_log() {
        let clock = SharedSimClock::new();
        let mut plan = FaultPlan::new();
        plan.add(
            SimTime::from_secs(5),
            SimDuration::from_secs(1),
            ServiceFault::Timeout,
        );
        let mut t = ChaosTransport::new(live(), clock.clone(), plan);
        let probe = t.probe();
        clock.set(SimTime::from_secs(5));
        let err = t.evaluate_cleanups(vec![]).unwrap_err();
        assert!(err.to_string().contains("timeout"), "{err}");
        assert_eq!(probe.fault_log()[0].1, ServiceFault::Timeout);
    }

    #[test]
    fn replica_crash_drives_failover_and_recovery_is_possible() {
        // Primary crashes during [10, 60); a failover chain rides it out on
        // the backup and sticks there.
        let clock = SharedSimClock::new();
        let chaotic = ChaosTransport::new(live(), clock.clone(), outage_plan(10, 50));
        let probe = chaotic.probe();
        let mut chain = FailoverTransport::new(vec![Box::new(chaotic), live()]);
        let fo_probe = chain.probe();

        clock.set(SimTime::from_secs(1));
        chain.evaluate_transfers(vec![spec(1)]).unwrap();
        assert_eq!(chain.active_replica(), 0);

        clock.set(SimTime::from_secs(30));
        chain.evaluate_transfers(vec![spec(2)]).unwrap();
        assert_eq!(chain.active_replica(), 1, "crash fails over to backup");
        assert_eq!(fo_probe.failovers(), 1);
        assert_eq!(probe.injected_failures(), 1);

        // After the window the primary has recovered and can serve again,
        // but sticky failover keeps the backup active (no flap-back churn).
        clock.set(SimTime::from_secs(120));
        chain.evaluate_transfers(vec![spec(3)]).unwrap();
        assert_eq!(chain.active_replica(), 1);
    }

    #[test]
    fn obs_counts_injections_and_records_instants() {
        let clock = SharedSimClock::new();
        let obs = pwm_obs::Obs::new();
        let mut t =
            ChaosTransport::new(live(), clock.clone(), outage_plan(100, 50)).with_obs(obs.clone());
        clock.set(SimTime::from_secs(10));
        t.evaluate_transfers(vec![spec(1)]).unwrap();
        clock.set(SimTime::from_secs(120));
        let _ = t.evaluate_transfers(vec![spec(2)]);
        let text = obs.registry.render_prometheus();
        assert!(
            text.contains("pwm_chaos_injected_failures_total{kind=\"outage\"} 1"),
            "{text}"
        );
        assert!(text.contains("pwm_chaos_calls_passed_total 1"), "{text}");
        let events = obs.tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "chaos_fault");
        assert_eq!(events[0].start, SimTime::from_secs(120));
    }

    #[test]
    fn same_plan_and_call_sequence_reproduces_the_fault_log() {
        let run = || {
            let clock = SharedSimClock::new();
            let mut t = ChaosTransport::new(live(), clock.clone(), outage_plan(10, 10));
            let probe = t.probe();
            for s in [5u64, 12, 15, 25] {
                clock.set(SimTime::from_secs(s));
                let _ = t.evaluate_transfers(vec![spec(s as u32)]);
            }
            probe.fault_log()
        };
        assert_eq!(run(), run());
    }
}
