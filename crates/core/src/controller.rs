//! The Policy Controller.
//!
//! Fig. 1: "A Policy Controller manages communication between the web
//! interface and the policy engine." [`PolicyController`] owns one or more
//! named policy sessions behind a lock so that concurrent HTTP handler
//! threads (see `pwm-rest`) can delegate requests safely, and routes each
//! request to the right session.

use crate::advice::{CleanupAdvice, CleanupOutcome, TransferAdvice, TransferOutcome};
use crate::config::PolicyConfig;
use crate::durable::DurabilityConfig;
use crate::model::{CleanupSpec, TransferSpec};
use crate::service::{MemorySnapshot, PolicyService, RuleCounters, ServiceStats};
use crate::shard::ShardedPolicyService;
use parking_lot::{Mutex, RwLock};
use pwm_obs::Obs;
use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Arc;

/// The default session name used when a client does not specify one.
pub const DEFAULT_SESSION: &str = "default";

/// Errors surfaced to the web interface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerError {
    /// The named session does not exist.
    NoSuchSession(String),
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::NoSuchSession(name) => write!(f, "no such policy session: {name}"),
        }
    }
}
impl std::error::Error for ControllerError {}

/// One live session behind the controller: either a single policy engine
/// behind its own lock, or a sharded engine with per-shard locks. Cloning
/// clones the `Arc`, so the session map's lock is never held while a
/// request runs — sessions contend only on their own locks.
#[derive(Clone)]
enum SessionEntry {
    Single(Arc<Mutex<PolicyService>>),
    Sharded(Arc<ShardedPolicyService>),
}

/// Thread-safe front door to one or more policy sessions.
///
/// Lock domains are per session (and, for sharded sessions, per shard):
/// the controller-level map lock is a read-mostly `RwLock` held only long
/// enough to clone a session handle, so traffic on one session never
/// blocks another.
#[derive(Clone)]
pub struct PolicyController {
    inner: Arc<RwLock<BTreeMap<String, SessionEntry>>>,
    /// Shared metrics registry for all sessions. Each session gets its own
    /// tracer (via [`Obs::with_fresh_tracer`]) so trace dumps are
    /// per-session while `/metrics` exposition is controller-wide.
    obs: Obs,
}

impl PolicyController {
    /// A controller with a single `default` session using `config`.
    pub fn new(config: PolicyConfig) -> Self {
        let controller = PolicyController {
            inner: Arc::new(RwLock::new(BTreeMap::new())),
            obs: Obs::new(),
        };
        controller.create_session(DEFAULT_SESSION, config);
        controller
    }

    fn insert(&self, name: String, entry: SessionEntry) {
        self.inner.write().insert(name, entry);
    }

    /// Create (or replace) a named session. The session shares the
    /// controller's metrics registry (labeled `session=<name>`) and gets a
    /// fresh tracer.
    pub fn create_session(&self, name: impl Into<String>, config: PolicyConfig) {
        let name = name.into();
        let mut service = PolicyService::new(config);
        service.set_obs(self.obs.with_fresh_tracer(), &name);
        self.insert(name, SessionEntry::Single(Arc::new(Mutex::new(service))));
    }

    /// Create (or replace) a sharded session: policy memory is split over
    /// `shards` independent engines by `(source, dest)` host pair (see
    /// [`ShardedPolicyService`]). Metrics carry `session=<name>` plus a
    /// per-shard `shard="N"` label.
    pub fn create_sharded_session(
        &self,
        name: impl Into<String>,
        config: PolicyConfig,
        shards: u16,
    ) {
        let name = name.into();
        let service = ShardedPolicyService::new(config, shards);
        service.set_obs(self.obs.with_fresh_tracer(), &name);
        self.insert(name, SessionEntry::Sharded(Arc::new(service)));
    }

    /// Create (or replace) a sharded session whose shards each write-ahead
    /// log and snapshot under `dcfg.dir/shard-N`.
    pub fn create_sharded_durable_session(
        &self,
        name: impl Into<String>,
        config: PolicyConfig,
        shards: u16,
        dcfg: DurabilityConfig,
    ) -> io::Result<()> {
        let name = name.into();
        let service = ShardedPolicyService::new(config, shards);
        service.enable_durability(&dcfg)?;
        service.set_obs(self.obs.with_fresh_tracer(), &name);
        self.insert(name, SessionEntry::Sharded(Arc::new(service)));
        Ok(())
    }

    /// Recover a sharded session from per-shard durability directories
    /// under `dir` (the warm-failover path; logging is not resumed).
    pub fn recover_sharded_session(
        &self,
        name: impl Into<String>,
        shards: u16,
        dir: &Path,
    ) -> io::Result<()> {
        let name = name.into();
        let service = ShardedPolicyService::recover_from(dir, shards)?;
        service.set_obs(self.obs.with_fresh_tracer(), &name);
        self.insert(name, SessionEntry::Sharded(Arc::new(service)));
        Ok(())
    }

    /// Create (or replace) a durable session: like
    /// [`PolicyController::create_session`], but every state-mutating
    /// request is write-ahead logged and snapshotted under `dcfg.dir` for
    /// crash recovery.
    pub fn create_durable_session(
        &self,
        name: impl Into<String>,
        config: PolicyConfig,
        dcfg: DurabilityConfig,
    ) -> io::Result<()> {
        let name = name.into();
        let mut service = PolicyService::new(config);
        service.enable_durability(dcfg)?;
        service.set_obs(self.obs.with_fresh_tracer(), &name);
        self.insert(name, SessionEntry::Single(Arc::new(Mutex::new(service))));
        Ok(())
    }

    /// Recover a session from a durability directory (snapshot + log
    /// replay) without resuming logging — the warm-failover path, where a
    /// successor replica replays the failed primary's log. Use
    /// [`PolicyController::resume_durable_session`] when the recovered
    /// session should keep persisting itself.
    pub fn recover_session(&self, name: impl Into<String>, dir: &Path) -> io::Result<()> {
        let name = name.into();
        let mut service = PolicyService::recover_from(dir)?;
        service.set_obs(self.obs.with_fresh_tracer(), &name);
        self.insert(name, SessionEntry::Single(Arc::new(Mutex::new(service))));
        Ok(())
    }

    /// Recover a session from `dcfg.dir` and resume durable operation.
    /// Re-enabling compacts naturally: the resumed log starts from a fresh
    /// snapshot of the recovered state.
    pub fn resume_durable_session(
        &self,
        name: impl Into<String>,
        dcfg: DurabilityConfig,
    ) -> io::Result<()> {
        let name = name.into();
        let mut service = PolicyService::recover_from(&dcfg.dir)?;
        service.enable_durability(dcfg)?;
        service.set_obs(self.obs.with_fresh_tracer(), &name);
        self.insert(name, SessionEntry::Single(Arc::new(Mutex::new(service))));
        Ok(())
    }

    /// The controller-wide observability handle (registry shared by all
    /// sessions; its tracer is unused — sessions trace separately).
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Render the shared metrics registry in Prometheus text format.
    pub fn render_metrics(&self) -> String {
        self.obs.registry.render_prometheus()
    }

    /// Chrome-trace JSON for one session's tracer (shard 0's tracer for a
    /// sharded session).
    pub fn trace_chrome_json(&self, session: &str) -> Result<String, ControllerError> {
        let fallback = || pwm_obs::Tracer::default().chrome_trace_json();
        match self.entry(session)? {
            SessionEntry::Single(s) => Ok(s.lock().trace_chrome_json().unwrap_or_else(fallback)),
            SessionEntry::Sharded(s) => Ok(s.trace_chrome_json().unwrap_or_else(fallback)),
        }
    }

    /// Redirect a session's observability onto an external handle — shared
    /// registry *and* tracer. Traced bench runs use this to merge policy
    /// spans into the same export as the executor's and network's spans.
    pub fn attach_obs(&self, session: &str, obs: Obs) -> Result<(), ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => s.lock().set_obs(obs, session),
            SessionEntry::Sharded(s) => s.set_obs(obs, session),
        }
        Ok(())
    }

    /// Attach a shared sim clock to a session so its evaluations emit
    /// sim-time trace instants (see [`PolicyService::set_sim_clock`]).
    pub fn set_sim_clock(
        &self,
        session: &str,
        clock: crate::chaos::SharedSimClock,
    ) -> Result<(), ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => s.lock().set_sim_clock(clock),
            SessionEntry::Sharded(s) => s.set_sim_clock(clock),
        }
        Ok(())
    }

    /// Delete a named session; returns whether it existed.
    pub fn drop_session(&self, name: &str) -> bool {
        self.inner.write().remove(name).is_some()
    }

    /// Names of all live sessions.
    pub fn session_names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }

    /// Shard count of a session (1 for unsharded sessions).
    pub fn session_shards(&self, session: &str) -> Result<u16, ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(_) => Ok(1),
            SessionEntry::Sharded(s) => Ok(s.shard_count()),
        }
    }

    /// Clone a session handle out of the map. The map's read lock is
    /// released before the caller touches the session, so requests only
    /// contend on their own session's (or shard's) lock.
    fn entry(&self, name: &str) -> Result<SessionEntry, ControllerError> {
        self.inner
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ControllerError::NoSuchSession(name.to_string()))
    }

    /// Delegate a transfer-request list to a session.
    pub fn evaluate_transfers(
        &self,
        session: &str,
        batch: Vec<TransferSpec>,
    ) -> Result<Vec<TransferAdvice>, ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => Ok(s.lock().evaluate_transfers(batch)),
            SessionEntry::Sharded(s) => Ok(s.evaluate_transfers(batch)),
        }
    }

    /// Delegate several pipelined request groups to a session in one
    /// batched rules pass per lock domain (see
    /// [`PolicyService::evaluate_transfer_groups`] and
    /// [`ShardedPolicyService::evaluate_transfer_groups`]). The result
    /// aligns 1:1 with `groups`.
    pub fn evaluate_transfer_groups(
        &self,
        session: &str,
        groups: Vec<Vec<TransferSpec>>,
    ) -> Result<Vec<Vec<TransferAdvice>>, ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => Ok(s.lock().evaluate_transfer_groups(groups)),
            SessionEntry::Sharded(s) => Ok(s.evaluate_transfer_groups(groups)),
        }
    }

    /// Delegate transfer outcomes to a session.
    pub fn report_transfers(
        &self,
        session: &str,
        outcomes: Vec<TransferOutcome>,
    ) -> Result<(), ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => s.lock().report_transfers(outcomes),
            SessionEntry::Sharded(s) => s.report_transfers(outcomes),
        }
        Ok(())
    }

    /// Delegate a cleanup-request list to a session.
    pub fn evaluate_cleanups(
        &self,
        session: &str,
        batch: Vec<CleanupSpec>,
    ) -> Result<Vec<CleanupAdvice>, ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => Ok(s.lock().evaluate_cleanups(batch)),
            SessionEntry::Sharded(s) => Ok(s.evaluate_cleanups(batch)),
        }
    }

    /// Delegate cleanup outcomes to a session.
    pub fn report_cleanups(
        &self,
        session: &str,
        outcomes: Vec<CleanupOutcome>,
    ) -> Result<(), ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => s.lock().report_cleanups(outcomes),
            SessionEntry::Sharded(s) => s.report_cleanups(outcomes),
        }
        Ok(())
    }

    /// Delegate infrastructure health observations to a session (broadcast
    /// to every shard of a sharded session).
    pub fn report_health(
        &self,
        session: &str,
        events: Vec<crate::model::HealthEvent>,
    ) -> Result<(), ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => s.lock().report_health(events),
            SessionEntry::Sharded(s) => s.report_health(events),
        }
        Ok(())
    }

    /// Snapshot a session's policy memory (merged across shards).
    pub fn snapshot(&self, session: &str) -> Result<MemorySnapshot, ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => Ok(s.lock().snapshot()),
            SessionEntry::Sharded(s) => Ok(s.snapshot()),
        }
    }

    /// A session's monitoring counters (summed across shards).
    pub fn stats(&self, session: &str) -> Result<ServiceStats, ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => Ok(s.lock().stats()),
            SessionEntry::Sharded(s) => Ok(s.stats()),
        }
    }

    /// A session's per-rule engine counters (summed across shards).
    pub fn rule_stats(&self, session: &str) -> Result<Vec<RuleCounters>, ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => Ok(s.lock().rule_stats()),
            SessionEntry::Sharded(s) => Ok(s.rule_stats()),
        }
    }

    /// A session's audit records with sequence ≥ `since` (concatenated
    /// shard by shard for sharded sessions — each shard numbers its own
    /// ring).
    pub fn audit_since(
        &self,
        session: &str,
        since: u64,
    ) -> Result<Vec<crate::audit::AuditRecord>, ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => Ok(s.lock().audit_since(since)),
            SessionEntry::Sharded(s) => Ok(s.audit_since(since)),
        }
    }

    /// Reconfigure a session in place (all shards for sharded sessions).
    pub fn set_config(&self, session: &str, config: PolicyConfig) -> Result<(), ControllerError> {
        match self.entry(session)? {
            SessionEntry::Single(s) => s.lock().set_config(config),
            SessionEntry::Sharded(s) => s.set_config(config),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Url, WorkflowId};

    fn spec(n: u32) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", "s", format!("/f{n}")),
            dest: Url::new("file", "d", format!("/f{n}")),
            bytes: 1,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: None,
            priority: None,
        }
    }

    #[test]
    fn default_session_exists() {
        let c = PolicyController::new(PolicyConfig::default());
        assert_eq!(c.session_names(), vec![DEFAULT_SESSION.to_string()]);
        let advice = c
            .evaluate_transfers(DEFAULT_SESSION, vec![spec(1)])
            .unwrap();
        assert_eq!(advice.len(), 1);
    }

    #[test]
    fn unknown_session_errors() {
        let c = PolicyController::new(PolicyConfig::default());
        let err = c.evaluate_transfers("nope", vec![spec(1)]).unwrap_err();
        assert_eq!(err, ControllerError::NoSuchSession("nope".into()));
    }

    #[test]
    fn sessions_are_isolated() {
        let c = PolicyController::new(PolicyConfig::default());
        c.create_session("other", PolicyConfig::default());
        c.evaluate_transfers(DEFAULT_SESSION, vec![spec(1)])
            .unwrap();
        // The duplicate is only a duplicate within the same session.
        let advice = c.evaluate_transfers("other", vec![spec(1)]).unwrap();
        assert!(advice[0].should_execute());
        assert_eq!(c.stats("other").unwrap().transfers_suppressed, 0);
    }

    #[test]
    fn drop_session_removes_it() {
        let c = PolicyController::new(PolicyConfig::default());
        c.create_session("temp", PolicyConfig::default());
        assert!(c.drop_session("temp"));
        assert!(!c.drop_session("temp"));
        assert!(c.snapshot("temp").is_err());
    }

    #[test]
    fn controller_is_cloneable_and_shares_state() {
        let c = PolicyController::new(PolicyConfig::default());
        let c2 = c.clone();
        c.evaluate_transfers(DEFAULT_SESSION, vec![spec(1)])
            .unwrap();
        assert_eq!(c2.stats(DEFAULT_SESSION).unwrap().transfer_requests, 1);
    }

    #[test]
    fn metrics_exposition_covers_all_sessions() {
        let c = PolicyController::new(PolicyConfig::default());
        c.create_session("other", PolicyConfig::default());
        c.evaluate_transfers(DEFAULT_SESSION, vec![spec(1)])
            .unwrap();
        c.evaluate_transfers("other", vec![spec(2)]).unwrap();
        let text = c.render_metrics();
        assert!(
            text.contains("pwm_policy_transfer_requests_total{session=\"default\"} 1"),
            "default session counters missing:\n{text}"
        );
        assert!(
            text.contains("pwm_policy_transfer_requests_total{session=\"other\"} 1"),
            "named session counters missing:\n{text}"
        );
        assert!(text.contains("# TYPE pwm_policy_advice_latency_micros histogram"));
    }

    #[test]
    fn session_trace_is_valid_chrome_json_even_when_empty() {
        let c = PolicyController::new(PolicyConfig::default());
        let trace = c.trace_chrome_json(DEFAULT_SESSION).unwrap();
        assert!(
            pwm_obs::JsonValue::parse(&trace).is_ok(),
            "not JSON: {trace}"
        );
        assert!(c.trace_chrome_json("nope").is_err());
    }

    #[test]
    fn durable_session_survives_controller_restart() {
        let dir = crate::durable::scratch_dir("ctl-restart");
        let c = PolicyController::new(PolicyConfig::default());
        c.create_durable_session(
            "durable",
            PolicyConfig::default(),
            DurabilityConfig::new(&dir),
        )
        .unwrap();
        let advice = c.evaluate_transfers("durable", vec![spec(1)]).unwrap();
        c.report_transfers(
            "durable",
            vec![TransferOutcome {
                id: advice[0].id,
                success: true,
            }],
        )
        .unwrap();
        let before = c.snapshot("durable").unwrap();

        // A brand-new controller (the restarted process) recovers it.
        let c2 = PolicyController::new(PolicyConfig::default());
        c2.resume_durable_session("durable", DurabilityConfig::new(&dir))
            .unwrap();
        assert_eq!(c2.snapshot("durable").unwrap(), before);
        // Dedup memory survived the restart.
        let again = c2.evaluate_transfers("durable", vec![spec(1)]).unwrap();
        assert!(!again[0].should_execute());
        // And the resumed session keeps logging: a third controller can
        // recover the post-restart state too.
        let c3 = PolicyController::new(PolicyConfig::default());
        c3.recover_session("durable", &dir).unwrap();
        assert_eq!(c3.stats("durable").unwrap(), c2.stats("durable").unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_session_from_empty_dir_errors() {
        let dir = crate::durable::scratch_dir("ctl-empty");
        let c = PolicyController::new(PolicyConfig::default());
        assert!(c.recover_session("x", &dir).is_err());
        assert!(!c.session_names().contains(&"x".to_string()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = PolicyController::new(PolicyConfig::default());
        let mut handles = Vec::new();
        for thread in 0..8 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..20 {
                    let n = thread * 100 + i;
                    c.evaluate_transfers(DEFAULT_SESSION, vec![spec(n)])
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.stats(DEFAULT_SESSION).unwrap().transfer_requests, 160);
    }
}
