//! Sharded policy memory: a consistent-hash ring over `(source, dest)`
//! host pairs, with one [`PolicyService`] per shard.
//!
//! The paper's centralized Policy Service is the broker every staging
//! decision flows through, which makes its single lock domain the
//! scalability ceiling of the whole system. Every base rule, ledger, and
//! dedup structure is keyed by destination URL or by `(source host,
//! destination host)` pair, so transfers on different host pairs never
//! read each other's facts — they can live in disjoint rule sessions.
//! [`ShardedPolicyService`] exploits exactly that: requests are routed by
//! host pair over a [`HashRing`], each shard owns its facts, rules agenda,
//! audit ring, and (optionally) its own WAL directory, and independent
//! transfers never contend on one lock.
//!
//! Identifier namespacing: shard `s` mints transfer/cleanup/group ids from
//! base `s << `[`SHARD_ID_BITS`], so ids stay globally unique and outcome
//! reports route back by id alone. Shard 0's base is 0 — a one-shard
//! sharded service assigns exactly the ids an unsharded service would.

use crate::advice::{CleanupAdvice, CleanupOutcome, TransferAdvice, TransferOutcome};
use crate::config::{OrderingPolicy, PolicyConfig};
use crate::durable::DurabilityConfig;
use crate::model::{CleanupSpec, TransferSpec, Url};
use crate::service::{HostPairSnapshot, MemorySnapshot, PolicyService, RuleCounters, ServiceStats};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Virtual nodes per shard on the ring. More vnodes smooth the key
/// distribution; the count is fixed so assignments are stable across
/// processes and releases.
pub const RING_VNODES: u32 = 64;

/// FNV-1a 64-bit hash — deterministic, dependency-free, and stable across
/// platforms (never use `std`'s `DefaultHasher` for placement: its seed
/// changes per process).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A consistent-hash ring mapping string keys to shard indices.
///
/// Each shard contributes [`RING_VNODES`] points whose positions depend
/// only on the shard's own index — so growing the ring from `n` to `n+1`
/// shards moves only the keys captured by the new shard's points (~K/(n+1)
/// of them), and removing a shard moves only that shard's keys.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, shard)` pairs.
    points: Vec<(u64, u16)>,
    shards: u16,
}

impl HashRing {
    /// A ring over `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is 0.
    pub fn new(shards: u16) -> Self {
        assert!(shards > 0, "a ring needs at least one shard");
        let mut points = Vec::with_capacity(shards as usize * RING_VNODES as usize);
        for s in 0..shards {
            for v in 0..RING_VNODES {
                let point = fnv1a64(format!("shard-{s}/vnode-{v}").as_bytes());
                points.push((point, s));
            }
        }
        points.sort_unstable();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> u16 {
        self.shards
    }

    /// The shard owning `key`: the first ring point at or after the key's
    /// hash, wrapping at the top.
    pub fn shard_for_key(&self, key: &str) -> u16 {
        let h = fnv1a64(key.as_bytes());
        let ix = self.points.partition_point(|(p, _)| *p < h);
        self.points[ix % self.points.len()].1
    }

    /// The shard owning a `(source host, destination host)` pair.
    pub fn shard_for_pair(&self, src_host: &str, dst_host: &str) -> u16 {
        self.shard_for_key(&format!("{src_host}\u{1f}{dst_host}"))
    }
}

/// A policy session sharded by host pair: N independent [`PolicyService`]s
/// behind per-shard locks, with request routing, advice merging, and
/// monitoring aggregation on top.
pub struct ShardedPolicyService {
    ring: HashRing,
    shards: Vec<Mutex<PolicyService>>,
}

impl ShardedPolicyService {
    /// Build `shards` policy engines, each enforcing `config` and minting
    /// ids from its own namespace.
    pub fn new(config: PolicyConfig, shards: u16) -> Self {
        let ring = HashRing::new(shards);
        let shards = (0..shards)
            .map(|s| Mutex::new(PolicyService::with_shard(config.clone(), s)))
            .collect();
        ShardedPolicyService { ring, shards }
    }

    /// Rebuild every shard from its durability directory under `base`
    /// (see [`ShardedPolicyService::shard_dir`]). Durability is *not*
    /// re-enabled on the recovered shards.
    pub fn recover_from(base: &Path, shards: u16) -> io::Result<Self> {
        assert!(shards > 0, "a sharded service needs at least one shard");
        let ring = HashRing::new(shards);
        let mut recovered = Vec::with_capacity(shards as usize);
        for s in 0..shards {
            recovered.push(Mutex::new(PolicyService::recover_from(&Self::shard_dir(
                base, s,
            ))?));
        }
        Ok(ShardedPolicyService {
            ring,
            shards: recovered,
        })
    }

    /// The durability directory of shard `s` under `base`.
    pub fn shard_dir(base: &Path, s: u16) -> PathBuf {
        base.join(format!("shard-{s}"))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u16 {
        self.ring.shards
    }

    /// The routing ring (exposed for tests and monitoring).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Run `f` against one shard's engine (test and admin access).
    pub fn with_shard<R>(&self, s: u16, f: impl FnOnce(&mut PolicyService) -> R) -> R {
        f(&mut self.shards[s as usize].lock())
    }

    /// Enable per-shard durability: shard `s` logs and snapshots under
    /// `cfg.dir/shard-s`, inheriting `cfg`'s compaction period and crash
    /// injection.
    pub fn enable_durability(&self, cfg: &DurabilityConfig) -> io::Result<()> {
        for (s, shard) in self.shards.iter().enumerate() {
            let mut scfg = cfg.clone();
            scfg.dir = Self::shard_dir(&cfg.dir, s as u16);
            shard.lock().enable_durability(scfg)?;
        }
        Ok(())
    }

    /// True when any shard's injected crash point has fired.
    pub fn durability_crashed(&self) -> bool {
        self.shards.iter().any(|s| s.lock().durability_crashed())
    }

    /// Attach observability: shard `s`'s metrics carry
    /// `session=<session>, shard="s"`; all shards share `obs`'s registry
    /// and tracer.
    pub fn set_obs(&self, obs: pwm_obs::Obs, session: &str) {
        for (s, shard) in self.shards.iter().enumerate() {
            shard.lock().set_obs_sharded(obs.clone(), session, s as u16);
        }
    }

    /// Attach a shared sim clock to every shard.
    pub fn set_sim_clock(&self, clock: crate::chaos::SharedSimClock) {
        for shard in &self.shards {
            shard.lock().set_sim_clock(clock.clone());
        }
    }

    /// Which shard owns a transfer spec (by its host pair).
    pub fn shard_for_transfer(&self, spec: &TransferSpec) -> u16 {
        self.ring.shard_for_pair(&spec.source.host, &spec.dest.host)
    }

    /// Which shard owns a cleanup for `file`: the shard whose policy
    /// memory holds the staged resource, if any — otherwise (unknown file:
    /// the cleanup will execute unsuppressed wherever it lands) a
    /// deterministic ring fallback on the file's host.
    pub fn shard_for_cleanup(&self, file: &Url) -> u16 {
        for (s, shard) in self.shards.iter().enumerate() {
            if shard.lock().has_resource(file) {
                return s as u16;
            }
        }
        self.ring.shard_for_key(&file.host)
    }

    /// Evaluate one request list: route by host pair, run each involved
    /// shard's rules once, and merge the per-shard advice into one list
    /// (see [`merge_advice`]).
    pub fn evaluate_transfers(&self, batch: Vec<TransferSpec>) -> Vec<TransferAdvice> {
        self.evaluate_transfer_groups(vec![batch])
            .pop()
            .unwrap_or_default()
    }

    /// Batched advice: evaluate several pipelined request groups with at
    /// most **one rules pass per involved shard** (each shard sees its
    /// slice of every group as one
    /// [`PolicyService::evaluate_transfer_groups`] call). Group boundaries
    /// are preserved: the result aligns 1:1 with `groups`.
    pub fn evaluate_transfer_groups(
        &self,
        groups: Vec<Vec<TransferSpec>>,
    ) -> Vec<Vec<TransferAdvice>> {
        let by_priority = self.shards[0].lock().config().ordering == OrderingPolicy::ByPriority;
        // Priorities for the cross-shard merge comparator (advice does not
        // carry the spec's priority).
        let mut priorities: BTreeMap<(Url, Url), i32> = BTreeMap::new();
        if by_priority {
            for g in &groups {
                for spec in g {
                    priorities.insert(
                        (spec.source.clone(), spec.dest.clone()),
                        spec.priority.unwrap_or(0),
                    );
                }
            }
        }

        // Partition every group across shards, preserving in-group order.
        // sub_groups[s] holds (group index, specs) pairs for shard s.
        let n = self.shards.len();
        let mut sub_groups: Vec<Vec<(usize, Vec<TransferSpec>)>> = vec![Vec::new(); n];
        for (gi, group) in groups.into_iter().enumerate() {
            let mut per_shard: Vec<Vec<TransferSpec>> = vec![Vec::new(); n];
            for spec in group {
                per_shard[self.shard_for_transfer(&spec) as usize].push(spec);
            }
            for (s, specs) in per_shard.into_iter().enumerate() {
                if !specs.is_empty() {
                    sub_groups[s].push((gi, specs));
                }
            }
        }
        let group_count = sub_groups
            .iter()
            .flat_map(|g| g.iter().map(|(gi, _)| gi + 1))
            .max()
            .unwrap_or(0);

        // One batched pass per involved shard, then stitch each group's
        // per-shard slices back together.
        let mut merged: Vec<Vec<Vec<TransferAdvice>>> = vec![Vec::new(); group_count];
        for (s, subs) in sub_groups.into_iter().enumerate() {
            if subs.is_empty() {
                continue;
            }
            let (indices, specs): (Vec<usize>, Vec<Vec<TransferSpec>>) = subs.into_iter().unzip();
            let advice = self.shards[s].lock().evaluate_transfer_groups(specs);
            for (gi, slice) in indices.into_iter().zip(advice) {
                merged[gi].push(slice);
            }
        }
        merged
            .into_iter()
            .map(|slices| merge_advice(slices, by_priority, &priorities))
            .collect()
    }

    /// Report transfer outcomes, routed back to the minting shard by the
    /// id's namespace bits. Ids outside every shard's namespace are
    /// dropped, matching the single service's treatment of unknown ids.
    pub fn report_transfers(&self, outcomes: Vec<TransferOutcome>) {
        let mut per_shard: Vec<Vec<TransferOutcome>> = vec![Vec::new(); self.shards.len()];
        for o in outcomes {
            let s = PolicyService::shard_of_transfer(o.id) as usize;
            if let Some(bucket) = per_shard.get_mut(s) {
                bucket.push(o);
            }
        }
        for (s, bucket) in per_shard.into_iter().enumerate() {
            if !bucket.is_empty() {
                self.shards[s].lock().report_transfers(bucket);
            }
        }
    }

    /// Evaluate cleanups: each request is routed to the shard owning the
    /// file's resource; results come back in request order.
    pub fn evaluate_cleanups(&self, batch: Vec<CleanupSpec>) -> Vec<CleanupAdvice> {
        let mut per_shard: Vec<Vec<CleanupSpec>> = vec![Vec::new(); self.shards.len()];
        // remember (shard, position) per original index
        let mut route = Vec::with_capacity(batch.len());
        for spec in batch {
            let s = self.shard_for_cleanup(&spec.file) as usize;
            route.push((s, per_shard[s].len()));
            per_shard[s].push(spec);
        }
        let mut results: Vec<Vec<CleanupAdvice>> = Vec::with_capacity(per_shard.len());
        for (s, bucket) in per_shard.into_iter().enumerate() {
            results.push(if bucket.is_empty() {
                Vec::new()
            } else {
                self.shards[s].lock().evaluate_cleanups(bucket)
            });
        }
        route
            .into_iter()
            .map(|(s, pos)| results[s][pos].clone())
            .collect()
    }

    /// Report cleanup outcomes, routed by id namespace.
    pub fn report_cleanups(&self, outcomes: Vec<CleanupOutcome>) {
        let mut per_shard: Vec<Vec<CleanupOutcome>> = vec![Vec::new(); self.shards.len()];
        for o in outcomes {
            let s = PolicyService::shard_of_cleanup(o.id) as usize;
            if let Some(bucket) = per_shard.get_mut(s) {
                bucket.push(o);
            }
        }
        for (s, bucket) in per_shard.into_iter().enumerate() {
            if !bucket.is_empty() {
                self.shards[s].lock().report_cleanups(bucket);
            }
        }
    }

    /// Report health observations to every shard. Health facts are not
    /// partitioned by host pair — any shard may evaluate a transfer sourced
    /// at the failed host — so reports broadcast.
    pub fn report_health(&self, events: Vec<crate::model::HealthEvent>) {
        if events.is_empty() {
            return;
        }
        for shard in &self.shards {
            shard.lock().report_health(events.clone());
        }
    }

    /// Monitoring counters summed across shards.
    pub fn stats(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for shard in &self.shards {
            let s = shard.lock().stats();
            total.transfer_requests += s.transfer_requests;
            total.transfers_executed += s.transfers_executed;
            total.transfers_suppressed += s.transfers_suppressed;
            total.transfers_completed += s.transfers_completed;
            total.transfers_failed += s.transfers_failed;
            total.cleanup_requests += s.cleanup_requests;
            total.cleanups_executed += s.cleanups_executed;
            total.cleanups_suppressed += s.cleanups_suppressed;
            total.rule_firings += s.rule_firings;
        }
        total
    }

    /// Memory snapshot merged across shards: occupancy counts summed, host
    /// pairs concatenated and sorted by `(src, dst)` for a deterministic
    /// view.
    pub fn snapshot(&self) -> MemorySnapshot {
        let mut merged = MemorySnapshot {
            in_progress_transfers: 0,
            staged_files: 0,
            staging_files: 0,
            in_progress_cleanups: 0,
            host_pairs: Vec::new(),
        };
        for shard in &self.shards {
            let s = shard.lock().snapshot();
            merged.in_progress_transfers += s.in_progress_transfers;
            merged.staged_files += s.staged_files;
            merged.staging_files += s.staging_files;
            merged.in_progress_cleanups += s.in_progress_cleanups;
            merged.host_pairs.extend(s.host_pairs);
        }
        merged
            .host_pairs
            .sort_by(|a, b| (&a.src_host, &a.dst_host).cmp(&(&b.src_host, &b.dst_host)));
        merged
    }

    /// Per-rule counters summed across shards, in shard 0's installation
    /// order.
    pub fn rule_stats(&self) -> Vec<RuleCounters> {
        let mut merged: Vec<RuleCounters> = self.shards[0].lock().rule_stats();
        for shard in &self.shards[1..] {
            for c in shard.lock().rule_stats() {
                if let Some(m) = merged.iter_mut().find(|m| m.name == c.name) {
                    m.evaluations += c.evaluations;
                    m.matches += c.matches;
                    m.firings += c.firings;
                    m.eval_nanos += c.eval_nanos;
                }
            }
        }
        merged
    }

    /// Audit records with sequence ≥ `since`, concatenated shard by shard
    /// (each shard numbers its own ring).
    pub fn audit_since(&self, since: u64) -> Vec<crate::audit::AuditRecord> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.lock().audit_since(since));
        }
        out
    }

    /// Replace every shard's configuration.
    pub fn set_config(&self, config: PolicyConfig) {
        for shard in &self.shards {
            shard.lock().set_config(config.clone());
        }
    }

    /// Streams currently allocated between a host pair (routed).
    pub fn allocated(&self, src_host: &str, dst_host: &str) -> u32 {
        let s = self.ring.shard_for_pair(src_host, dst_host) as usize;
        self.shards[s].lock().allocated(src_host, dst_host)
    }

    /// Peak streams allocated between a host pair (routed).
    pub fn peak_allocated(&self, src_host: &str, dst_host: &str) -> u32 {
        let s = self.ring.shard_for_pair(src_host, dst_host) as usize;
        self.shards[s].lock().peak_allocated(src_host, dst_host)
    }

    /// Shard 0's Chrome-trace JSON (per-shard tracers stay separate; the
    /// merged flame view comes from attaching one shared tracer via
    /// [`ShardedPolicyService::set_obs`]).
    pub fn trace_chrome_json(&self) -> Option<String> {
        self.shards[0].lock().trace_chrome_json()
    }
}

/// Merge per-shard advice slices of one request group into a single list
/// ordered like the single-domain service orders a batch: executing
/// transfers first, then (under the priority policy) priority descending,
/// then `(source, dest)`, then id. Each shard's slice is already
/// internally ordered this way, so the merge re-sorts the concatenation
/// and renumbers `order`.
fn merge_advice(
    slices: Vec<Vec<TransferAdvice>>,
    by_priority: bool,
    priorities: &BTreeMap<(Url, Url), i32>,
) -> Vec<TransferAdvice> {
    let mut all: Vec<TransferAdvice> = slices.into_iter().flatten().collect();
    let prio = |a: &TransferAdvice| -> i32 {
        *priorities
            .get(&(a.source.clone(), a.dest.clone()))
            .unwrap_or(&0)
    };
    all.sort_by(|a, b| {
        b.should_execute()
            .cmp(&a.should_execute())
            .then_with(|| {
                if by_priority {
                    prio(b).cmp(&prio(a))
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .then_with(|| (&a.source, &a.dest).cmp(&(&b.source, &b.dest)))
            .then_with(|| a.id.cmp(&b.id))
    });
    for (i, a) in all.iter_mut().enumerate() {
        a.order = i as u32;
    }
    all
}

/// Sort host-pair snapshots the way [`ShardedPolicyService::snapshot`]
/// does (helper for tests comparing sharded and single-domain views).
pub fn sort_host_pairs(pairs: &mut [HostPairSnapshot]) {
    pairs.sort_by(|a, b| (&a.src_host, &a.dst_host).cmp(&(&b.src_host, &b.dst_host)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::WorkflowId;

    fn spec(src: &str, dst: &str, n: u64, wf: u64) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", src, format!("/d/f{n}.dat")),
            dest: Url::new("file", dst, format!("/s/f{n}.dat")),
            bytes: 1_000_000,
            requested_streams: None,
            workflow: WorkflowId(wf),
            cluster: None,
            priority: None,
        }
    }

    #[test]
    fn ring_assignment_is_stable_across_constructions() {
        let a = HashRing::new(8);
        let b = HashRing::new(8);
        for i in 0..200 {
            let key = format!("host-{i}");
            assert_eq!(a.shard_for_key(&key), b.shard_for_key(&key));
        }
    }

    #[test]
    fn ring_uses_every_shard() {
        let ring = HashRing::new(4);
        let mut seen = [false; 4];
        for i in 0..400 {
            seen[ring.shard_for_pair(&format!("src{i}"), &format!("dst{i}")) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "400 keys must hit all 4 shards");
    }

    #[test]
    fn single_shard_ring_owns_every_key() {
        // The degenerate ring: every key maps to shard 0, and keys route
        // identically no matter where their hashes land relative to the
        // vnode points (including past the top of the ring, which wraps).
        let ring = HashRing::new(1);
        assert_eq!(ring.shards(), 1);
        for i in 0..500 {
            assert_eq!(ring.shard_for_key(&format!("key-{i}")), 0);
            assert_eq!(ring.shard_for_pair(&format!("s{i}"), &format!("d{i}")), 0);
        }
    }

    #[test]
    fn wide_ring_covers_all_64_shards_roughly_evenly() {
        // 64 shards × 64 vnodes = 4096 ring points. Every shard must own
        // keys (no starved shard), and no shard may capture a grossly
        // outsized fraction — the consistent-hash spread the router's
        // contention-avoidance story rests on.
        let ring = HashRing::new(64);
        let keys = 64 * 200;
        let mut counts = [0u32; 64];
        for i in 0..keys {
            counts[ring.shard_for_pair(&format!("host-a{i}"), &format!("host-b{i}")) as usize] += 1;
        }
        let expected = keys as u32 / 64;
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 0, "shard {s} owns no keys out of {keys}");
            assert!(
                c < expected * 4,
                "shard {s} owns {c} of {keys} keys (> 4x the even share)"
            );
        }
    }

    #[test]
    fn namespaced_ids_never_collide_across_shards() {
        // Regression guard on the `shard << SHARD_ID_BITS` namespace: ids
        // minted concurrently by every shard of a wide ring must be
        // globally unique and must decode back to their minting shard —
        // a collision would route an outcome report to the wrong shard's
        // ledger.
        let shards = 64u16;
        let sharded = ShardedPolicyService::new(PolicyConfig::default(), shards);
        let batch: Vec<TransferSpec> = (0..512)
            .map(|i| spec(&format!("src{i}"), &format!("dst{i}"), i, 1))
            .collect();
        let advice = sharded.evaluate_transfers(batch);
        assert_eq!(advice.len(), 512);
        let mut seen = std::collections::HashSet::new();
        for a in &advice {
            assert!(seen.insert(a.id), "duplicate transfer id {:?}", a.id);
            let shard = PolicyService::shard_of_transfer(a.id);
            assert!(shard < shards, "id {:?} decodes to shard {shard}", a.id);
        }
        // The ids must be usable as routing keys: reporting every outcome
        // lands each on its own shard and the aggregate ledger balances.
        sharded.report_transfers(
            advice
                .iter()
                .map(|a| TransferOutcome {
                    id: a.id,
                    success: true,
                })
                .collect(),
        );
        assert_eq!(sharded.stats().transfers_completed, 512);
    }

    #[test]
    fn one_shard_matches_unsharded_service_exactly() {
        let config = PolicyConfig::default();
        let sharded = ShardedPolicyService::new(config.clone(), 1);
        let mut single = PolicyService::new(config);
        let batch = vec![
            spec("a", "x", 1, 1),
            spec("b", "y", 2, 1),
            spec("a", "x", 1, 2),
        ];
        assert_eq!(
            sharded.evaluate_transfers(batch.clone()),
            single.evaluate_transfers(batch),
        );
        assert_eq!(sharded.stats(), single.stats());
        assert_eq!(sharded.snapshot(), single.snapshot());
    }

    #[test]
    fn ids_are_namespaced_per_shard_and_reports_route_back() {
        let sharded = ShardedPolicyService::new(PolicyConfig::default(), 4);
        let batch: Vec<TransferSpec> = (0..16)
            .map(|i| spec(&format!("src{i}"), &format!("dst{i}"), i, 1))
            .collect();
        let advice = sharded.evaluate_transfers(batch);
        assert_eq!(advice.len(), 16);
        // Every id carries its shard in the top bits.
        for a in &advice {
            assert!(PolicyService::shard_of_transfer(a.id) < 4);
        }
        let outcomes: Vec<TransferOutcome> = advice
            .iter()
            .map(|a| TransferOutcome {
                id: a.id,
                success: true,
            })
            .collect();
        sharded.report_transfers(outcomes);
        let stats = sharded.stats();
        assert_eq!(stats.transfers_completed, 16);
        assert_eq!(sharded.snapshot().staged_files, 16);
        assert_eq!(sharded.snapshot().in_progress_transfers, 0);
    }

    #[test]
    fn dedup_works_within_a_shard_across_groups() {
        let sharded = ShardedPolicyService::new(PolicyConfig::default(), 4);
        // Same file twice in one batched call, in different groups: one
        // executes, one is suppressed (both land on the same shard).
        let out = sharded
            .evaluate_transfer_groups(vec![vec![spec("a", "x", 1, 1)], vec![spec("a", "x", 1, 2)]]);
        assert_eq!(out.len(), 2);
        let executing: usize = out.iter().flatten().filter(|a| a.should_execute()).count();
        assert_eq!(executing, 1);
        assert_eq!(sharded.stats().transfers_suppressed, 1);
    }

    #[test]
    fn cleanups_route_to_the_owning_shard() {
        let sharded = ShardedPolicyService::new(PolicyConfig::default(), 4);
        let advice = sharded.evaluate_transfers(vec![spec("a", "x", 1, 1)]);
        sharded.report_transfers(vec![TransferOutcome {
            id: advice[0].id,
            success: true,
        }]);
        let cleanups = sharded.evaluate_cleanups(vec![CleanupSpec {
            file: Url::new("file", "x", "/s/f1.dat"),
            workflow: WorkflowId(1),
        }]);
        assert!(cleanups[0].should_execute());
        sharded.report_cleanups(vec![CleanupOutcome {
            id: cleanups[0].id,
            success: true,
        }]);
        assert_eq!(sharded.snapshot().staged_files, 0);
    }

    #[test]
    fn per_shard_durability_recovers_every_shard() {
        let base = crate::durable::scratch_dir("sharded-wal");
        let sharded = ShardedPolicyService::new(PolicyConfig::default(), 3);
        sharded
            .enable_durability(&DurabilityConfig::new(&base).with_snapshot_every(2))
            .unwrap();
        let batch: Vec<TransferSpec> = (0..12)
            .map(|i| spec(&format!("s{i}"), &format!("d{i}"), i, 1))
            .collect();
        let advice = sharded.evaluate_transfers(batch);
        sharded.report_transfers(
            advice
                .iter()
                .take(6)
                .map(|a| TransferOutcome {
                    id: a.id,
                    success: true,
                })
                .collect(),
        );

        let recovered = ShardedPolicyService::recover_from(&base, 3).unwrap();
        assert_eq!(recovered.stats(), sharded.stats());
        assert_eq!(recovered.snapshot(), sharded.snapshot());
        for s in 0..3 {
            let live = sharded.with_shard(s, |svc| {
                let mut st = svc.durable_state();
                st.applied_seq = 0;
                st
            });
            let rec = recovered.with_shard(s, |svc| svc.durable_state());
            assert_eq!(rec, live, "shard {s} must recover identically");
        }
        std::fs::remove_dir_all(&base).ok();
    }
}
