//! The storage policy family: backend selection for staged data.
//!
//! A site can expose several staging backends (shared NFS, parallel FS,
//! object store) with very different performance and dollar-cost envelopes;
//! *Data Sharing Options for Scientific Workflows on Amazon EC2* shows the
//! choice dominates both makespan and cost. This family extends the paper's
//! Table I/II pattern with three fact types —
//! [`BackendProfileFact`] (what exists, mirrored from configuration),
//! [`BackendLoadFact`] (a running allocation ledger per backend), and
//! [`StagedOnFact`] (where each staged file landed) — and two rules:
//!
//! * **selection** (salience 40, after the stream-allocation families):
//!   every executing batch transfer whose destination site has registered
//!   profiles is assigned a backend per the configured
//!   [`StoragePolicy`] variant, and the pick is charged against the
//!   backend's load ledger;
//! * **release** (salience 72, before the Table I removal rules at 70
//!   retract the fact): a finished transfer releases its load charge and —
//!   on success — records the `StagedOn` fact.
//!
//! With [`StoragePolicy::Off`] (the default) the selection guard returns no
//! matches and, with no profiles configured, neither rule can ever fire:
//! the family is inert and pre-storage behavior is byte-identical.

use crate::config::StoragePolicy;
use crate::ctx::PolicyCtx;
use crate::model::{
    BackendLoadFact, BackendProfileFact, StagedOnFact, TransferFact, TransferState,
};
use crate::rules_base::batch_transfers;
use pwm_rules::{Rule, Session};
use pwm_storage::BackendSpec;

/// Residency horizon assumed when estimating a transfer's $/GB·h component
/// before the cleanup time is known (selection needs a forecast; the cost
/// meter later bills actual residency).
const EST_RESIDENT_HOURS: f64 = 1.0;

/// Forecast dollars for staging `bytes` through `spec`: PUT + read-once GET
/// requests, egress for the read-back, and [`EST_RESIDENT_HOURS`] of
/// residency.
pub fn estimated_dollars(spec: &BackendSpec, bytes: u64) -> f64 {
    let gb = bytes as f64 / 1e9;
    let requests = 2.0 * spec.requests_for(bytes) as f64;
    requests * spec.cost.per_request
        + gb * spec.cost.per_gb_egress
        + gb * spec.cost.per_gb_hour * EST_RESIDENT_HOURS
}

/// Forecast seconds to land `bytes` on `spec` with the envelope to itself:
/// fixed per-request setup plus the bandwidth-limited transfer time.
pub fn estimated_seconds(spec: &BackendSpec, bytes: u64) -> f64 {
    spec.extra_setup(bytes).as_secs_f64() + bytes as f64 / spec.effective_bandwidth().max(1.0)
}

/// Pick a backend from `candidates` (already sorted by name, so every
/// tie-break is deterministic) for a transfer of `bytes`, under `policy`.
/// `committed` is the estimated spend already committed across all backends
/// (the budget-capped variant's running total).
fn select_backend<'a>(
    policy: &StoragePolicy,
    candidates: &'a [BackendSpec],
    bytes: u64,
    committed: f64,
) -> Option<&'a BackendSpec> {
    let cheapest = || {
        candidates.iter().min_by(|a, b| {
            estimated_dollars(a, bytes)
                .total_cmp(&estimated_dollars(b, bytes))
                .then_with(|| a.name.cmp(&b.name))
        })
    };
    let fastest = || {
        candidates.iter().min_by(|a, b| {
            estimated_seconds(a, bytes)
                .total_cmp(&estimated_seconds(b, bytes))
                .then_with(|| a.name.cmp(&b.name))
        })
    };
    match *policy {
        StoragePolicy::Off => None,
        StoragePolicy::GreedyCheapest => cheapest(),
        StoragePolicy::LatencyFloor {
            max_setup_s,
            min_bandwidth_bps,
        } => {
            let qualifying = candidates
                .iter()
                .filter(|s| {
                    s.extra_setup(bytes).as_secs_f64() <= max_setup_s
                        && s.effective_bandwidth() >= min_bandwidth_bps
                })
                .min_by(|a, b| {
                    estimated_dollars(a, bytes)
                        .total_cmp(&estimated_dollars(b, bytes))
                        .then_with(|| a.name.cmp(&b.name))
                });
            qualifying.or_else(fastest)
        }
        StoragePolicy::BudgetCapped { budget_dollars } => candidates
            .iter()
            .filter(|s| committed + estimated_dollars(s, bytes) <= budget_dollars)
            .min_by(|a, b| {
                estimated_seconds(a, bytes)
                    .total_cmp(&estimated_seconds(b, bytes))
                    .then_with(|| a.name.cmp(&b.name))
            })
            .or_else(cheapest),
    }
}

/// Install the storage policy family (selection + release rules and the
/// alpha-memory indexes they probe). Always installed; inert until backend
/// profiles are configured and a [`StoragePolicy`] other than `Off` is set.
pub fn install_storage_rules(session: &mut Session<PolicyCtx>) {
    // Profiles probed by destination site, ledgers and staged-on records by
    // backend name / file URL: all equality joins, all indexed.
    session
        .wm
        .register_index::<BackendProfileFact, String>(|b| b.site.clone());
    session
        .wm
        .register_index::<BackendLoadFact, String>(|l| l.backend.clone());
    session
        .wm
        .register_index::<StagedOnFact, crate::model::Url>(|s| s.file.clone());

    // Selection: after dedup/grouping/allocation have settled (salience 40 <
    // the allocation families' 50), assign each executing batch transfer a
    // backend and charge the pick against the backend's load ledger.
    session.add_rule(
        Rule::new("storage: pick the staging backend for a transfer")
            .salience(40)
            .watches::<TransferFact>()
            .watches::<BackendProfileFact>()
            .when(|wm, ctx: &PolicyCtx| {
                if ctx.config.storage == StoragePolicy::Off {
                    return Vec::new();
                }
                let mut out = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.suppressed.is_some() || t.backend.is_some() {
                        continue;
                    }
                    if wm
                        .iter_by::<BackendProfileFact, String>(&t.spec.dest.host)
                        .next()
                        .is_some()
                    {
                        out.push(vec![h]);
                    }
                }
                out
            })
            .then(|wm, ctx, m| {
                let (site, bytes) = {
                    let t = wm.get::<TransferFact>(m[0]).expect("matched transfer");
                    (t.spec.dest.host.clone(), t.spec.bytes)
                };
                let mut candidates: Vec<BackendSpec> = wm
                    .iter_by::<BackendProfileFact, String>(&site)
                    .map(|(_, b)| b.profile.clone())
                    .collect();
                // Recovery family: a backend reported down is not a
                // candidate — placement steers around the outage until a
                // BackendUp health report clears the fact.
                candidates.retain(|s| {
                    wm.find_by::<crate::model::BackendDownFact, String>(&s.name)
                        .is_none()
                });
                candidates.sort_by(|a, b| a.name.cmp(&b.name));
                let committed: f64 = wm
                    .iter::<BackendLoadFact>()
                    .map(|(_, l)| l.dollars_committed)
                    .sum();
                let Some(pick) = select_backend(&ctx.config.storage, &candidates, bytes, committed)
                else {
                    return;
                };
                let name = pick.name.clone();
                let est = estimated_dollars(pick, bytes);
                if let Some((lh, _)) = wm.find_by::<BackendLoadFact, String>(&name) {
                    wm.update::<BackendLoadFact>(lh, |l| {
                        l.active += 1;
                        l.bytes_assigned += bytes as f64;
                        l.dollars_committed += est;
                    });
                } else {
                    wm.insert(BackendLoadFact {
                        backend: name.clone(),
                        active: 1,
                        bytes_assigned: bytes as f64,
                        dollars_committed: est,
                    });
                }
                wm.update::<TransferFact>(m[0], |t| t.backend = Some(name));
            }),
    );

    // Release: a finished transfer gives its load charge back (dollars stay
    // committed — the budget cap is a spend total, not a concurrency cap)
    // and, on success, records where the file landed. Salience 72 puts this
    // ahead of the Table I removal rules (70) that retract the fact.
    session.add_rule(
        Rule::new("storage: release the backend charge of a finished transfer")
            .salience(72)
            .when_each::<TransferFact>(|t, _: &PolicyCtx| {
                t.backend.is_some()
                    && !t.backend_released
                    && matches!(t.state, TransferState::Completed | TransferState::Failed)
            })
            .then(|wm, _, m| {
                let (backend, bytes, file, workflow, completed) = {
                    let t = wm.get::<TransferFact>(m[0]).expect("matched transfer");
                    (
                        t.backend.clone().expect("guard: backend set"),
                        t.spec.bytes,
                        t.spec.dest.clone(),
                        t.spec.workflow,
                        t.state == TransferState::Completed,
                    )
                };
                if let Some((lh, _)) = wm.find_by::<BackendLoadFact, String>(&backend) {
                    wm.update::<BackendLoadFact>(lh, |l| {
                        l.active = l.active.saturating_sub(1);
                        l.bytes_assigned = (l.bytes_assigned - bytes as f64).max(0.0);
                    });
                }
                if completed {
                    if let Some((sh, _)) = wm.find_by::<StagedOnFact, crate::model::Url>(&file) {
                        wm.update::<StagedOnFact>(sh, |s| {
                            s.backend = backend.clone();
                            s.bytes = bytes;
                            s.workflow = workflow;
                        });
                    } else {
                        wm.insert(StagedOnFact {
                            file,
                            backend: backend.clone(),
                            bytes,
                            workflow,
                        });
                    }
                }
                wm.update::<TransferFact>(m[0], |t| t.backend_released = true);
            }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::TransferOutcome;
    use crate::config::PolicyConfig;
    use crate::model::{TransferSpec, Url, WorkflowId};
    use crate::service::PolicyService;
    use pwm_storage::ec2_trio;

    fn spec_named(n: u32, bytes: u64) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", "gridftp-vm", format!("/data/f{n}.dat")),
            dest: Url::new("file", "obelix-nfs", format!("/scratch/f{n}.dat")),
            bytes,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: None,
            priority: None,
        }
    }

    fn storage_service(policy: StoragePolicy) -> PolicyService {
        let mut cfg = PolicyConfig::default().with_storage(policy);
        for b in ec2_trio() {
            cfg = cfg.with_backend(b, "obelix-nfs");
        }
        PolicyService::new(cfg)
    }

    #[test]
    fn off_policy_assigns_no_backend() {
        let mut svc = storage_service(StoragePolicy::Off);
        let advice = svc.evaluate_transfers(vec![spec_named(0, 1_000_000)]);
        assert_eq!(advice[0].backend, None);
    }

    #[test]
    fn greedy_cheapest_picks_lowest_forecast_cost() {
        let mut svc = storage_service(StoragePolicy::GreedyCheapest);
        let advice = svc.evaluate_transfers(vec![spec_named(0, 100_000_000)]);
        // nfs-std: no request/egress fees and the lowest residency rate
        // after obj-s3 — but obj-s3 pays $0.09/GB egress, so NFS wins.
        assert_eq!(advice[0].backend.as_deref(), Some("nfs-std"));
    }

    #[test]
    fn latency_floor_excludes_slow_backends() {
        // Floor of 100 MB/s effective bandwidth disqualifies nfs-std
        // (60 MB/s); obj-s3 qualifies on bandwidth but its per-request
        // setup exceeds the 10 ms cap, leaving pfs-lustre.
        let mut svc = storage_service(StoragePolicy::LatencyFloor {
            max_setup_s: 0.01,
            min_bandwidth_bps: 100e6,
        });
        let advice = svc.evaluate_transfers(vec![spec_named(0, 100_000_000)]);
        assert_eq!(advice[0].backend.as_deref(), Some("pfs-lustre"));
    }

    #[test]
    fn budget_cap_degrades_from_fastest_to_cheapest() {
        // Forecast cost of one 1 GB transfer on pfs-lustre (fastest) is
        // 1 GB·h * $0.0012 = $0.0012; a $0.002 budget admits one such
        // pick, then forces the cheapest backend.
        let mut svc = storage_service(StoragePolicy::BudgetCapped {
            budget_dollars: 0.002,
        });
        let advice = svc.evaluate_transfers(vec![
            spec_named(0, 1_000_000_000),
            spec_named(1, 1_000_000_000),
        ]);
        let picks: Vec<_> = advice.iter().map(|a| a.backend.clone().unwrap()).collect();
        assert!(picks.contains(&"pfs-lustre".to_string()), "{picks:?}");
        assert!(picks.contains(&"nfs-std".to_string()), "{picks:?}");
    }

    #[test]
    fn no_profiles_for_site_leaves_backend_unset() {
        let mut svc =
            PolicyService::new(PolicyConfig::default().with_storage(StoragePolicy::GreedyCheapest));
        let advice = svc.evaluate_transfers(vec![spec_named(0, 1_000_000)]);
        assert_eq!(advice[0].backend, None);
    }

    #[test]
    fn completion_releases_load_and_records_staged_on() {
        let mut svc = storage_service(StoragePolicy::GreedyCheapest);
        let advice = svc.evaluate_transfers(vec![spec_named(0, 5_000_000)]);
        assert!(advice[0].backend.is_some());
        svc.report_transfers(vec![TransferOutcome {
            id: advice[0].id,
            success: true,
        }]);
        let state = svc.durable_state();
        let mut staged_on = 0;
        let mut load_active = u32::MAX;
        for f in &state.facts {
            match f {
                crate::durable::DurableFact::StagedOn(s) => {
                    staged_on += 1;
                    assert_eq!(s.backend, "nfs-std");
                    assert_eq!(s.bytes, 5_000_000);
                }
                crate::durable::DurableFact::BackendLoad(l) => {
                    load_active = l.active;
                    assert_eq!(l.bytes_assigned, 0.0);
                    assert!(l.dollars_committed > 0.0, "commitment is monotone");
                }
                _ => {}
            }
        }
        assert_eq!(staged_on, 1, "one StagedOn fact recorded");
        assert_eq!(load_active, 0, "load released on completion");

        // The storage facts survive a snapshot/restore round trip.
        let restored = PolicyService::from_durable_state(state.clone());
        assert_eq!(restored.durable_state().facts, state.facts);
    }

    #[test]
    fn reconfiguring_backends_replaces_profiles() {
        let mut svc = storage_service(StoragePolicy::GreedyCheapest);
        // Drop every backend: selection can no longer match.
        let cfg = PolicyConfig::default().with_storage(StoragePolicy::GreedyCheapest);
        svc.set_config(cfg);
        let advice = svc.evaluate_transfers(vec![spec_named(7, 1_000_000)]);
        assert_eq!(advice[0].backend, None);
    }
}
