//! The recovery policy family: steering around failed infrastructure.
//!
//! Failure avoidance flows through advice like everything else. Execution
//! environments report health observations ([`crate::model::HealthEvent`])
//! via [`crate::service::PolicyService::report_health`]; the service upserts
//! them into three recovery facts — [`HostDownFact`], [`BackendDownFact`],
//! and [`SuspectReplicaFact`] — and the rules here consult those facts when
//! the next advice batch is evaluated:
//!
//! * **quarantine suppression** (salience 93, after the Table I dedup rules
//!   at 100/95/94 but before resource creation at 90): a batch transfer
//!   whose source replica is quarantined after repeated checksum failures is
//!   suppressed with [`SuppressReason::SourceQuarantined`] — the client must
//!   re-plan from another replica or re-run the producer rather than grind
//!   retries against bytes known to be bad;
//! * **down-host suppression** (salience 92): a batch transfer sourced at a
//!   host currently reported down is suppressed with
//!   [`SuppressReason::SourceHostDown`];
//! * the storage family's selection rule (see [`crate::storage_rules`])
//!   additionally excludes backends with a live [`BackendDownFact`] from
//!   its candidate set, so placement steers around outages.
//!
//! Always installed; with no health reports the fact population is empty,
//! every guard returns no matches, and behavior is byte-identical to a
//! service without the family.

use crate::ctx::PolicyCtx;
use crate::model::TransferFact;
use crate::model::{BackendDownFact, HostDownFact, SuppressReason, SuspectReplicaFact};
use crate::rules_base::batch_transfers;
use pwm_rules::{Rule, Session};

/// Install the recovery policy family (two suppression rules and the
/// alpha-memory indexes the family probes).
pub fn install_recovery_rules(session: &mut Session<PolicyCtx>) {
    // All equality joins: down hosts by name, down backends by name, suspect
    // replicas by (host, file).
    session
        .wm
        .register_index::<HostDownFact, String>(|h| h.host.clone());
    session
        .wm
        .register_index::<BackendDownFact, String>(|b| b.backend.clone());
    session
        .wm
        .register_index::<SuspectReplicaFact, (String, String)>(|s| {
            (s.host.clone(), s.file.clone())
        });

    session.add_rule(
        Rule::new("recovery: suppress transfers from a quarantined replica")
            .salience(93)
            .watches::<TransferFact>()
            .watches::<SuspectReplicaFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.suppressed.is_some() {
                        continue;
                    }
                    let key = (t.spec.source.host.clone(), t.spec.source.path.clone());
                    let quarantined = wm
                        .find_by::<SuspectReplicaFact, (String, String)>(&key)
                        .is_some_and(|(_, s)| s.quarantined);
                    if quarantined {
                        out.push(vec![h]);
                    }
                }
                out
            })
            .then(|wm, _, m| {
                wm.update::<TransferFact>(m[0], |t| {
                    t.suppressed = Some(SuppressReason::SourceQuarantined);
                });
            }),
    );

    session.add_rule(
        Rule::new("recovery: suppress transfers sourced at a down host")
            .salience(92)
            .watches::<TransferFact>()
            .watches::<HostDownFact>()
            .when(|wm, _: &PolicyCtx| {
                let mut out = Vec::new();
                for (h, t) in batch_transfers(wm) {
                    if t.suppressed.is_some() {
                        continue;
                    }
                    if wm
                        .find_by::<HostDownFact, String>(&t.spec.source.host)
                        .is_some()
                    {
                        out.push(vec![h]);
                    }
                }
                out
            })
            .then(|wm, _, m| {
                wm.update::<TransferFact>(m[0], |t| {
                    t.suppressed = Some(SuppressReason::SourceHostDown);
                });
            }),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advice::TransferAction;
    use crate::config::PolicyConfig;
    use crate::model::{HealthEvent, TransferSpec, Url, WorkflowId};
    use crate::service::PolicyService;

    fn spec(host: &str, path: &str) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", host, path),
            dest: Url::new("file", "obelix-nfs", path),
            bytes: 1_000_000,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: None,
            priority: None,
        }
    }

    #[test]
    fn down_host_suppresses_sourced_transfers_until_host_up() {
        let mut svc = PolicyService::new(PolicyConfig::default());
        svc.report_health(vec![HealthEvent::HostDown {
            host: "apache-isi".into(),
        }]);
        let advice = svc.evaluate_transfers(vec![spec("apache-isi", "/a.fits")]);
        assert_eq!(
            advice[0].action,
            TransferAction::Skip(SuppressReason::SourceHostDown)
        );
        // Other sources are untouched.
        let advice = svc.evaluate_transfers(vec![spec("gridftp-vm", "/b.fits")]);
        assert_eq!(advice[0].action, TransferAction::Execute);
        // HostUp clears the fact and transfers execute again.
        svc.report_health(vec![HealthEvent::HostUp {
            host: "apache-isi".into(),
        }]);
        let advice = svc.evaluate_transfers(vec![spec("apache-isi", "/c.fits")]);
        assert_eq!(advice[0].action, TransferAction::Execute);
    }

    #[test]
    fn quarantined_replica_suppresses_only_that_file() {
        let mut svc = PolicyService::new(PolicyConfig::default());
        // A strike without quarantine does not suppress.
        svc.report_health(vec![HealthEvent::SuspectReplica {
            host: "apache-isi".into(),
            file: "/bad.fits".into(),
            quarantine: false,
        }]);
        let advice = svc.evaluate_transfers(vec![spec("apache-isi", "/bad.fits")]);
        assert_eq!(advice[0].action, TransferAction::Execute);
        svc.report_transfers(vec![crate::advice::TransferOutcome {
            id: advice[0].id,
            success: false,
        }]);
        // The quarantining strike flips it.
        svc.report_health(vec![HealthEvent::SuspectReplica {
            host: "apache-isi".into(),
            file: "/bad.fits".into(),
            quarantine: true,
        }]);
        let advice = svc.evaluate_transfers(vec![
            spec("apache-isi", "/bad2.fits"),
            spec("apache-isi", "/bad.fits"),
        ]);
        assert_eq!(
            advice[0].action,
            TransferAction::Execute,
            "other replicas fine"
        );
        assert_eq!(
            advice[1].action,
            TransferAction::Skip(SuppressReason::SourceQuarantined)
        );
        // Regeneration clears the suspicion.
        svc.report_health(vec![HealthEvent::ReplicaCleared {
            host: "apache-isi".into(),
            file: "/bad.fits".into(),
        }]);
        let advice = svc.evaluate_transfers(vec![spec("apache-isi", "/bad.fits")]);
        assert_eq!(advice[0].action, TransferAction::Execute);
    }

    #[test]
    fn health_reports_are_idempotent_upserts() {
        let mut svc = PolicyService::new(PolicyConfig::default());
        for _ in 0..3 {
            svc.report_health(vec![HealthEvent::HostDown {
                host: "apache-isi".into(),
            }]);
        }
        svc.report_health(vec![HealthEvent::SuspectReplica {
            host: "apache-isi".into(),
            file: "/f".into(),
            quarantine: false,
        }]);
        svc.report_health(vec![HealthEvent::SuspectReplica {
            host: "apache-isi".into(),
            file: "/f".into(),
            quarantine: true,
        }]);
        let state = svc.durable_state();
        let hosts = state
            .facts
            .iter()
            .filter(|f| matches!(f, crate::durable::DurableFact::HostDown(_)))
            .count();
        assert_eq!(hosts, 1, "repeat reports collapse into one fact");
        let suspect = state
            .facts
            .iter()
            .find_map(|f| match f {
                crate::durable::DurableFact::SuspectReplica(s) => Some(s.clone()),
                _ => None,
            })
            .expect("suspect fact recorded");
        assert_eq!(suspect.strikes, 2);
        assert!(suspect.quarantined);
        // Unknown clears are harmless no-ops.
        svc.report_health(vec![
            HealthEvent::HostUp {
                host: "never-seen".into(),
            },
            HealthEvent::BackendUp {
                backend: "never-seen".into(),
            },
            HealthEvent::ReplicaCleared {
                host: "never-seen".into(),
                file: "/x".into(),
            },
        ]);
    }
}
