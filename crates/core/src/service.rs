//! The Policy Service.
//!
//! [`PolicyService`] is the component the paper's Fig. 1 calls "Policy
//! Service / policy engine": it owns a rule session (policy rules + policy
//! memory), accepts transfer/cleanup request lists, runs the rules, and
//! returns modified lists with advice. State persists across requests "for
//! the length of transfer and cleanup requests", plus the staged-file
//! locations that outlive completed transfers.

use crate::advice::{
    CleanupAction, CleanupAdvice, CleanupOutcome, TransferAction, TransferAdvice, TransferOutcome,
};
use crate::audit::{AuditLog, AuditRecord, PolicyEvent};
use crate::balanced::install_balanced_rules;
use crate::chaos::SharedSimClock;
use crate::config::{OrderingPolicy, PolicyConfig};
use crate::ctx::PolicyCtx;
use crate::durable::{
    read_recovery, Durability, DurabilityConfig, DurableFact, DurableState, WalCommand, WalRecord,
};
use crate::greedy::install_greedy_rules;
use crate::model::SuppressReason;
use crate::model::{
    BackendDownFact, BackendLoadFact, BackendProfileFact, CleanupFact, CleanupId, CleanupSpec,
    CleanupState, ClusterAllocFact, HealthEvent, HostDownFact, HostPairFact, ResourceFact,
    ResourceState, StagedOnFact, SuspectReplicaFact, TransferFact, TransferId, TransferSpec,
    TransferState,
};
use crate::recovery_rules::install_recovery_rules;
use crate::rules_base::{install_base_rules, resource_for, transfer_pair_key};
use crate::storage_rules::install_storage_rules;
use pwm_obs::{Counter, Gauge, Histogram, Obs};
use pwm_rules::Session;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

/// Counters the service keeps for monitoring and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Transfer requests received.
    pub transfer_requests: u64,
    /// Transfers advised to execute.
    pub transfers_executed: u64,
    /// Transfers removed from the list (duplicates, already staged, ...).
    pub transfers_suppressed: u64,
    /// Transfer completions reported.
    pub transfers_completed: u64,
    /// Transfer failures reported.
    pub transfers_failed: u64,
    /// Cleanup requests received.
    pub cleanup_requests: u64,
    /// Cleanups advised to execute.
    pub cleanups_executed: u64,
    /// Cleanups removed from the list.
    pub cleanups_suppressed: u64,
    /// Total rule firings across all evaluations.
    pub rule_firings: u64,
}

/// Per-rule engine counters, as exposed through monitoring (`GET /status`).
///
/// `evaluations` staying flat across requests is the observable proof that
/// the incremental agenda is not re-running matchers whose watched fact
/// types are clean.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleCounters {
    /// Rule name.
    pub name: String,
    /// Rule salience.
    pub salience: i32,
    /// Matcher (re-)evaluations since service start.
    pub evaluations: u64,
    /// Fact tuples produced across evaluations.
    pub matches: u64,
    /// Action firings.
    pub firings: u64,
    /// Cumulative matcher wall-clock time, nanoseconds.
    pub eval_nanos: u64,
}

impl From<pwm_rules::RuleStats> for RuleCounters {
    fn from(s: pwm_rules::RuleStats) -> Self {
        RuleCounters {
            name: s.name.as_ref().to_string(),
            salience: s.salience,
            evaluations: s.evaluations,
            matches: s.matches,
            firings: s.firings,
            eval_nanos: s.eval_nanos,
        }
    }
}

/// A point-in-time view of policy memory (the `GET /status` payload).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySnapshot {
    /// Transfers handed out and not yet reported.
    pub in_progress_transfers: usize,
    /// Files known to be staged at their destination.
    pub staged_files: usize,
    /// Files currently being staged.
    pub staging_files: usize,
    /// Cleanups handed out and not yet reported.
    pub in_progress_cleanups: usize,
    /// Per host pair: (src, dst, currently allocated, peak allocated).
    pub host_pairs: Vec<HostPairSnapshot>,
}

/// One host pair's ledger state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostPairSnapshot {
    /// Source host.
    pub src_host: String,
    /// Destination host.
    pub dst_host: String,
    /// Streams currently allocated.
    pub allocated: u32,
    /// High-water mark of allocated streams (Table IV's quantity).
    pub peak_allocated: u32,
}

/// Observability attachment for one service: shared metrics registry plus a
/// per-session tracer, with the delta baseline for publishing [`ServiceStats`]
/// as monotone counters.
struct ServiceObs {
    obs: Obs,
    /// Base label set identifying this service: `session="..."` plus, for
    /// a shard of a sharded session, `shard="N"`.
    labels: Vec<(String, String)>,
    /// Optional sim clock: when present, evaluations also emit trace
    /// instants stamped with simulated time (deterministic across runs).
    clock: Option<SharedSimClock>,
    /// Stats as of the previous publish, so counters receive deltas.
    last: ServiceStats,
    /// Audit-ring evictions as of the previous publish.
    last_audit_dropped: u64,
}

impl ServiceObs {
    /// The base labels as the borrowed slice shape the registry expects.
    fn label_refs(&self) -> Vec<(&str, &str)> {
        self.labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect()
    }

    /// Advice latency histogram for one request kind (wall-clock, metrics
    /// only — never written into traces, which must stay deterministic).
    fn advice_latency(&self, kind: &'static str) -> Histogram {
        let mut labels = self.label_refs();
        labels.push(("kind", kind));
        self.obs.registry.histogram(
            "pwm_policy_advice_latency_micros",
            "Wall-clock latency of one policy evaluation (rule firing pass), microseconds",
            &labels,
        )
    }

    fn counter(&self, name: &str, help: &str) -> Counter {
        self.obs.registry.counter(name, help, &self.label_refs())
    }

    fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.obs.registry.gauge(name, help, &self.label_refs())
    }

    /// Publish the delta between `stats` and the last published snapshot
    /// onto the registry's counters.
    fn publish_stats(&mut self, stats: ServiceStats) {
        let pairs: [(&str, &str, u64, u64); 9] = [
            (
                "pwm_policy_transfer_requests_total",
                "Transfer requests received",
                stats.transfer_requests,
                self.last.transfer_requests,
            ),
            (
                "pwm_policy_transfers_executed_total",
                "Transfers advised to execute",
                stats.transfers_executed,
                self.last.transfers_executed,
            ),
            (
                "pwm_policy_transfers_suppressed_total",
                "Transfers removed from the request list",
                stats.transfers_suppressed,
                self.last.transfers_suppressed,
            ),
            (
                "pwm_policy_transfers_completed_total",
                "Transfer completions reported",
                stats.transfers_completed,
                self.last.transfers_completed,
            ),
            (
                "pwm_policy_transfers_failed_total",
                "Transfer failures reported",
                stats.transfers_failed,
                self.last.transfers_failed,
            ),
            (
                "pwm_policy_cleanup_requests_total",
                "Cleanup requests received",
                stats.cleanup_requests,
                self.last.cleanup_requests,
            ),
            (
                "pwm_policy_cleanups_executed_total",
                "Cleanups advised to execute",
                stats.cleanups_executed,
                self.last.cleanups_executed,
            ),
            (
                "pwm_policy_cleanups_suppressed_total",
                "Cleanups removed from the request list",
                stats.cleanups_suppressed,
                self.last.cleanups_suppressed,
            ),
            (
                "pwm_policy_rule_firings_total",
                "Rule firings across all evaluations",
                stats.rule_firings,
                self.last.rule_firings,
            ),
        ];
        for (name, help, now, then) in pairs {
            let delta = now.saturating_sub(then);
            if delta > 0 {
                self.counter(name, help).add(delta);
            }
        }
        self.last = stats;
    }
}

/// The policy engine: rule session + policy memory + request orchestration.
pub struct PolicyService {
    session: Session<PolicyCtx>,
    ctx: PolicyCtx,
    next_transfer: u64,
    next_cleanup: u64,
    stats: ServiceStats,
    audit: AuditLog,
    obs: Option<ServiceObs>,
    durability: Option<Durability>,
    /// When the occupancy gauges were last swept (throttling clock; not
    /// part of durable state — it only paces metric publication).
    last_gauge_sweep: Option<Instant>,
    /// Whether the already-staged-duplicate short circuit is taken (see
    /// [`PolicyService::try_fast_staged_duplicate`]). Always on in
    /// production; tests flip it off to prove the short circuit and the
    /// full rules pass agree.
    fast_path: bool,
}

/// Shard ids are packed into the top bits of transfer/cleanup/group ids so
/// each shard of a sharded session mints from a disjoint namespace and
/// outcome reports can be routed back by id alone. Shard 0's base is 0, so
/// a single-shard service is bit-identical to an unsharded one.
pub const SHARD_ID_BITS: u32 = 48;

/// Resident-fact count up to which occupancy gauges are refreshed on every
/// evaluation pass, so unit tests and small sessions always scrape fresh
/// values (above it the sweep is time-throttled — see
/// [`GAUGE_SWEEP_INTERVAL`]).
const GAUGE_SWEEP_RESIDENT_CAP: usize = 512;

/// Once policy memory outgrows [`GAUGE_SWEEP_RESIDENT_CAP`], the O(memory)
/// gauge sweep runs at most once per this interval. Gauges feed scrapes,
/// which arrive on a seconds cadence — refreshing them per evaluation
/// would put an O(resident facts) sweep on every advice request.
const GAUGE_SWEEP_INTERVAL: Duration = Duration::from_millis(100);

impl PolicyService {
    /// Build a service enforcing `config`. All rule sets are installed; the
    /// config's [`crate::config::AllocationPolicy`] selects which allocation
    /// rules actually match.
    pub fn new(config: PolicyConfig) -> Self {
        let mut session = Session::new();
        install_base_rules(&mut session);
        install_greedy_rules(&mut session);
        install_balanced_rules(&mut session);
        install_storage_rules(&mut session);
        install_recovery_rules(&mut session);
        let audit = AuditLog::with_capacity(config.audit_retention());
        let mut svc = PolicyService {
            session,
            ctx: PolicyCtx::new(config),
            next_transfer: 0,
            next_cleanup: 0,
            stats: ServiceStats::default(),
            audit,
            obs: None,
            durability: None,
            last_gauge_sweep: None,
            fast_path: true,
        };
        svc.sync_backend_profiles();
        svc
    }

    /// Mirror [`PolicyConfig::backends`] into policy memory as
    /// `BackendProfileFact`s (retract-and-reinsert, so reconfiguration
    /// replaces the set). Profile facts are config-derived, never
    /// snapshotted: recovery re-derives them from the restored config.
    fn sync_backend_profiles(&mut self) {
        for h in self.session.wm.handles::<BackendProfileFact>() {
            self.session.wm.retract(h);
        }
        for b in self.ctx.config.backends.clone() {
            self.session.wm.insert(BackendProfileFact {
                profile: b.profile,
                site: b.site,
            });
        }
    }

    /// Build one shard of a sharded session: like [`PolicyService::new`],
    /// but transfer/cleanup/group ids are minted from the shard's disjoint
    /// namespace (`shard << `[`SHARD_ID_BITS`]). Shard 0 behaves exactly
    /// like an unsharded service.
    pub fn with_shard(config: PolicyConfig, shard: u16) -> Self {
        let mut svc = PolicyService::new(config);
        let base = u64::from(shard) << SHARD_ID_BITS;
        svc.next_transfer = base;
        svc.next_cleanup = base;
        svc.ctx = PolicyCtx::restore(svc.ctx.config.clone(), base);
        svc
    }

    /// Which shard minted a transfer id (outcome-report routing).
    pub fn shard_of_transfer(id: TransferId) -> u16 {
        (id.0 >> SHARD_ID_BITS) as u16
    }

    /// Which shard minted a cleanup id (outcome-report routing).
    pub fn shard_of_cleanup(id: CleanupId) -> u16 {
        (id.0 >> SHARD_ID_BITS) as u16
    }

    /// True when policy memory holds a staging/staged resource for `file`
    /// (used to route cleanup requests to the shard that owns the file).
    pub fn has_resource(&self, file: &crate::model::Url) -> bool {
        self.session
            .wm
            .find::<ResourceFact>(|r| r.dest == *file)
            .is_some()
    }

    /// Attach observability: service counters, gauges, and advice-latency
    /// histograms go to `obs.registry` labeled `session=<session>`; trace
    /// instants go to `obs.tracer` once a sim clock is attached with
    /// [`PolicyService::set_sim_clock`]. Per-rule engine counters are
    /// published to the same registry.
    pub fn set_obs(&mut self, obs: Obs, session: &str) {
        self.set_obs_labeled(obs, vec![("session".to_string(), session.to_string())]);
    }

    /// Like [`PolicyService::set_obs`], but for one shard of a sharded
    /// session: every metric additionally carries `shard="N"`.
    pub fn set_obs_sharded(&mut self, obs: Obs, session: &str, shard: u16) {
        self.set_obs_labeled(
            obs,
            vec![
                ("session".to_string(), session.to_string()),
                ("shard".to_string(), shard.to_string()),
            ],
        );
    }

    fn set_obs_labeled(&mut self, obs: Obs, labels: Vec<(String, String)>) {
        let refs: Vec<(&str, &str)> = labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        self.session.set_obs(obs.registry.clone(), &refs);
        self.obs = Some(ServiceObs {
            obs,
            labels,
            clock: None,
            last: self.stats,
            last_audit_dropped: self.audit.dropped(),
        });
    }

    /// Turn on durability: a base snapshot of the current state is written
    /// to `cfg.dir` and every state-mutating request is logged there
    /// before it is applied. Enabling on a recovered service compacts
    /// naturally — the resumed log starts from the fresh snapshot.
    pub fn enable_durability(&mut self, cfg: DurabilityConfig) -> io::Result<()> {
        // Drop any previous sink first so the snapshot's applied_seq
        // describes a fresh log epoch.
        self.durability = None;
        let state = self.durable_state();
        self.durability = Some(Durability::create(cfg, &state)?);
        Ok(())
    }

    /// True when an injected crash point has frozen the durability sink.
    pub fn durability_crashed(&self) -> bool {
        self.durability.as_ref().is_some_and(|d| d.crashed())
    }

    /// Rebuild a service from a durability directory: load the last
    /// snapshot and replay the surviving log suffix through the
    /// deterministic engine. The result is `PartialEq`-identical (facts,
    /// ids, ledgers, stats, audit numbering) to the uninterrupted service
    /// at the last durable command. Durability is *not* re-enabled; call
    /// [`PolicyService::enable_durability`] to resume logging.
    pub fn recover_from(dir: &Path) -> io::Result<PolicyService> {
        let recovered = read_recovery(dir)?;
        let mut svc = PolicyService::from_durable_state(recovered.state);
        for record in recovered.records {
            svc.apply_command(record.cmd);
        }
        Ok(svc)
    }

    /// Append a mutating command to the WAL before applying it (redo
    /// logging). A write failure disables durability rather than failing
    /// the advisory service.
    fn log_command(&mut self, cmd: WalCommand) {
        if let Some(d) = &mut self.durability {
            let record = WalRecord {
                seq: d.next_seq(),
                cmd,
            };
            if let Err(e) = d.append(&record) {
                pwm_obs::global_logger()
                    .error(&format!("WAL append failed; durability disabled: {e}"));
                self.durability = None;
            }
        }
    }

    /// Snapshot + compact if the sink says one is due. Runs at the *end*
    /// of each mutating method, after the logged command's effects are in
    /// the state — a snapshot taken at log time would stamp an
    /// `applied_seq` for effects not yet applied.
    fn maybe_snapshot(&mut self) {
        if !self
            .durability
            .as_ref()
            .is_some_and(|d| d.snapshot_pending())
        {
            return;
        }
        let state = self.durable_state();
        if let Some(d) = &mut self.durability {
            if let Err(e) = d.write_snapshot(&state) {
                pwm_obs::global_logger()
                    .error(&format!("snapshot write failed; durability disabled: {e}"));
                self.durability = None;
            }
        }
    }

    /// Replay one logged command (advice output is discarded — the crashed
    /// process already delivered it).
    fn apply_command(&mut self, cmd: WalCommand) {
        match cmd {
            WalCommand::EvaluateTransfers(batch) => {
                self.evaluate_transfers(batch);
            }
            WalCommand::EvaluateTransferGroups(groups) => {
                self.evaluate_transfer_groups(groups);
            }
            WalCommand::ReportTransfers(outcomes) => self.report_transfers(outcomes),
            WalCommand::EvaluateCleanups(batch) => {
                self.evaluate_cleanups(batch);
            }
            WalCommand::ReportCleanups(outcomes) => self.report_cleanups(outcomes),
            WalCommand::SetConfig(config) => self.set_config(config),
            WalCommand::ReportHealth(events) => self.report_health(events),
        }
    }

    /// The complete serializable state of this session (snapshot payload).
    /// Facts are captured in global insertion order, which working-memory
    /// iteration — and therefore advice ordering — observes.
    pub fn durable_state(&self) -> DurableState {
        let wm = &self.session.wm;
        let mut facts: Vec<(pwm_rules::FactHandle, DurableFact)> = Vec::new();
        facts.extend(
            wm.iter::<TransferFact>()
                .map(|(h, f)| (h, DurableFact::Transfer(f.clone()))),
        );
        facts.extend(
            wm.iter::<ResourceFact>()
                .map(|(h, f)| (h, DurableFact::Resource(f.clone()))),
        );
        facts.extend(
            wm.iter::<CleanupFact>()
                .map(|(h, f)| (h, DurableFact::Cleanup(f.clone()))),
        );
        facts.extend(
            wm.iter::<HostPairFact>()
                .map(|(h, f)| (h, DurableFact::HostPair(f.clone()))),
        );
        facts.extend(
            wm.iter::<ClusterAllocFact>()
                .map(|(h, f)| (h, DurableFact::ClusterAlloc(f.clone()))),
        );
        facts.extend(
            wm.iter::<StagedOnFact>()
                .map(|(h, f)| (h, DurableFact::StagedOn(f.clone()))),
        );
        facts.extend(
            wm.iter::<BackendLoadFact>()
                .map(|(h, f)| (h, DurableFact::BackendLoad(f.clone()))),
        );
        facts.extend(
            wm.iter::<HostDownFact>()
                .map(|(h, f)| (h, DurableFact::HostDown(f.clone()))),
        );
        facts.extend(
            wm.iter::<BackendDownFact>()
                .map(|(h, f)| (h, DurableFact::BackendDown(f.clone()))),
        );
        facts.extend(
            wm.iter::<SuspectReplicaFact>()
                .map(|(h, f)| (h, DurableFact::SuspectReplica(f.clone()))),
        );
        facts.sort_by_key(|(h, _)| *h);
        DurableState {
            applied_seq: self.durability.as_ref().map_or(0, |d| d.next_seq() - 1),
            config: self.ctx.config.clone(),
            next_transfer: self.next_transfer,
            next_cleanup: self.next_cleanup,
            next_group: self.ctx.groups_minted(),
            stats: self.stats,
            audit_capacity: self.audit.capacity(),
            audit_next_seq: self.audit.total_recorded(),
            audit_records: self.audit.records(),
            facts: facts.into_iter().map(|(_, f)| f).collect(),
            summary: self.snapshot(),
        }
    }

    /// Rebuild a service from a snapshot. Facts are re-inserted in their
    /// original global order, so the fresh handles preserve iteration
    /// order. The restored memory is quiescent: every rule guard requires
    /// an in-batch or just-reported fact, so the next `fire_all` fires
    /// nothing until new requests arrive.
    pub fn from_durable_state(state: DurableState) -> Self {
        let mut svc = PolicyService::new(state.config.clone());
        svc.ctx = PolicyCtx::restore(state.config, state.next_group);
        svc.next_transfer = state.next_transfer;
        svc.next_cleanup = state.next_cleanup;
        svc.stats = state.stats;
        svc.audit = AuditLog::restore(
            state.audit_capacity,
            state.audit_next_seq,
            state.audit_records,
        );
        for fact in state.facts {
            match fact {
                DurableFact::Transfer(f) => {
                    svc.session.wm.insert(f);
                }
                DurableFact::Resource(f) => {
                    svc.session.wm.insert(f);
                }
                DurableFact::Cleanup(f) => {
                    svc.session.wm.insert(f);
                }
                DurableFact::HostPair(f) => {
                    svc.session.wm.insert(f);
                }
                DurableFact::ClusterAlloc(f) => {
                    svc.session.wm.insert(f);
                }
                DurableFact::StagedOn(f) => {
                    svc.session.wm.insert(f);
                }
                DurableFact::BackendLoad(f) => {
                    svc.session.wm.insert(f);
                }
                DurableFact::HostDown(f) => {
                    svc.session.wm.insert(f);
                }
                DurableFact::BackendDown(f) => {
                    svc.session.wm.insert(f);
                }
                DurableFact::SuspectReplica(f) => {
                    svc.session.wm.insert(f);
                }
            }
        }
        debug_assert_eq!(
            svc.snapshot(),
            state.summary,
            "restored memory must reproduce the snapshot summary"
        );
        svc
    }

    /// Attach a shared simulated clock. Evaluations then emit trace
    /// instants stamped with sim time (kept out of traces otherwise, since
    /// a wall-clock stamp would break same-seed trace determinism).
    pub fn set_sim_clock(&mut self, clock: SharedSimClock) {
        if let Some(o) = &mut self.obs {
            o.clock = Some(clock);
        }
    }

    /// Record one evaluation pass on the attached observability sinks:
    /// latency histogram, stats counter deltas, occupancy gauges, and (with
    /// a sim clock) a trace instant.
    fn note_evaluation(&mut self, kind: &'static str, micros: u64, batch: usize, firings: usize) {
        if self.obs.is_none() {
            return;
        }
        let stats = self.stats;
        let audit_dropped = self.audit.dropped();
        // Occupancy gauges require a sweep over every resident fact (plus a
        // label-set lookup per host pair), which is O(memory) work per
        // evaluation — the dominant cost once policy memory holds tens of
        // thousands of facts. Publish them on every pass while memory is
        // small (so tests and small sessions observe fresh gauges), then
        // decimate. Counters and latency histograms stay per-pass.
        let publish_gauges = self.session.wm.len() <= GAUGE_SWEEP_RESIDENT_CAP
            || self
                .last_gauge_sweep
                .is_none_or(|t| t.elapsed() >= GAUGE_SWEEP_INTERVAL);
        if publish_gauges {
            self.last_gauge_sweep = Some(Instant::now());
        }
        let snapshot_counts = publish_gauges.then(|| {
            let wm = &self.session.wm;
            [
                wm.iter::<TransferFact>()
                    .filter(|(_, t)| t.state == TransferState::InProgress)
                    .count(),
                wm.iter::<ResourceFact>()
                    .filter(|(_, r)| r.state == ResourceState::Staged)
                    .count(),
                wm.iter::<ResourceFact>()
                    .filter(|(_, r)| r.state == ResourceState::Staging)
                    .count(),
                wm.iter::<CleanupFact>()
                    .filter(|(_, c)| c.state == CleanupState::InProgress)
                    .count(),
            ]
        });
        let pair_allocations: Vec<(String, String, u32, u32)> = if publish_gauges {
            self.session
                .wm
                .iter::<HostPairFact>()
                .map(|(_, p)| {
                    (
                        p.src_host.clone(),
                        p.dst_host.clone(),
                        p.allocated,
                        p.peak_allocated,
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let Some(o) = &mut self.obs else { return };
        o.advice_latency(kind).record(micros);
        o.publish_stats(stats);
        let dropped_delta = audit_dropped.saturating_sub(o.last_audit_dropped);
        if dropped_delta > 0 {
            o.counter(
                "pwm_policy_audit_dropped_total",
                "Audit records evicted by the retention ring",
            )
            .add(dropped_delta);
            o.last_audit_dropped = audit_dropped;
        }
        if let Some(counts) = snapshot_counts {
            for (name, help, value) in [
                (
                    "pwm_policy_in_progress_transfers",
                    "Transfers handed out and not yet reported",
                    counts[0],
                ),
                (
                    "pwm_policy_staged_files",
                    "Files known to be staged at their destination",
                    counts[1],
                ),
                (
                    "pwm_policy_staging_files",
                    "Files currently being staged",
                    counts[2],
                ),
                (
                    "pwm_policy_in_progress_cleanups",
                    "Cleanups handed out and not yet reported",
                    counts[3],
                ),
            ] {
                o.gauge(name, help).set(value as f64);
            }
        }
        for (src, dst, allocated, peak) in &pair_allocations {
            let mut labels = o.label_refs();
            labels.push(("src", src.as_str()));
            labels.push(("dst", dst.as_str()));
            o.obs
                .registry
                .gauge(
                    "pwm_policy_allocated_streams",
                    "Streams currently allocated between a host pair",
                    &labels,
                )
                .set(f64::from(*allocated));
            o.obs
                .registry
                .gauge(
                    "pwm_policy_peak_allocated_streams",
                    "High-water mark of streams allocated between a host pair",
                    &labels,
                )
                .set(f64::from(*peak));
        }
        if let Some(clock) = &o.clock {
            o.obs.tracer.instant(
                kind,
                "policy",
                clock.now(),
                &[
                    ("batch", batch.to_string()),
                    ("firings", firings.to_string()),
                ],
            );
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &PolicyConfig {
        &self.ctx.config
    }

    /// Replace the configuration (an administrator reconfiguring the
    /// service between workflows).
    pub fn set_config(&mut self, config: PolicyConfig) {
        if self.durability.is_some() {
            self.log_command(WalCommand::SetConfig(config.clone()));
        }
        if config.audit_retention() != self.audit.capacity() {
            // Resize the retention ring in place, keeping the newest
            // records and the lifetime sequence counter.
            let capacity = config.audit_retention();
            let records = self.audit.tail(capacity);
            self.audit = AuditLog::restore(capacity, self.audit.total_recorded(), records);
        }
        self.ctx.config = config;
        self.sync_backend_profiles();
        // Rule matchers read the config through ctx, which the engine (like
        // Drools globals) does not watch — flush the cached agenda so the
        // new config is observed.
        self.session.invalidate_agenda();
        self.audit.record(PolicyEvent::ConfigChanged);
        self.maybe_snapshot();
    }

    /// Audit records with sequence ≥ `since` (the monitoring log).
    pub fn audit_since(&self, since: u64) -> Vec<AuditRecord> {
        self.audit.since(since)
    }

    /// The most recent `n` audit records.
    pub fn audit_tail(&self, n: usize) -> Vec<AuditRecord> {
        self.audit.tail(n)
    }

    /// Monitoring counters.
    pub fn stats(&self) -> ServiceStats {
        self.stats
    }

    /// Per-rule engine counters (installation order).
    pub fn rule_stats(&self) -> Vec<RuleCounters> {
        self.session
            .rule_stats()
            .into_iter()
            .map(RuleCounters::from)
            .collect()
    }

    /// Evaluate a list of transfer requests against the policy rules and
    /// return the modified list: duplicates are marked skipped, transfers
    /// get stream/group advice, and the list is ordered per the ordering
    /// policy.
    pub fn evaluate_transfers(&mut self, batch: Vec<TransferSpec>) -> Vec<TransferAdvice> {
        if self.durability.is_some() {
            self.log_command(WalCommand::EvaluateTransfers(batch.clone()));
        }
        self.evaluate_groups_inner(vec![batch])
            .pop()
            .unwrap_or_default()
    }

    /// Evaluate several pipelined request groups in **one** call.
    ///
    /// This is the event loop's batched advice path: a connection's
    /// pipelined requests (or several connections' requests bound for the
    /// same shard) are drained into a single service call instead of N
    /// lock-and-log round trips. Each inner list is one client request and
    /// gets its own independently ordered advice list back.
    ///
    /// Pipelining requires responses identical to sending the requests one
    /// at a time, so the groups are evaluated as back-to-back rule passes —
    /// a later group sees earlier groups' transfers as already in progress,
    /// exactly as separate calls would. What the batch shares is the
    /// per-call overhead: one WAL record, one lock hold, one metrics/audit
    /// flush for the whole window.
    pub fn evaluate_transfer_groups(
        &mut self,
        groups: Vec<Vec<TransferSpec>>,
    ) -> Vec<Vec<TransferAdvice>> {
        if self.durability.is_some() {
            self.log_command(WalCommand::EvaluateTransferGroups(groups.clone()));
        }
        self.evaluate_groups_inner(groups)
    }

    /// Shared core of the single-batch and grouped evaluation paths: each
    /// group is inserted, evaluated, and committed as its own rules pass
    /// (so pipelined groups observe exactly the sequential semantics),
    /// while the call-level bookkeeping — WAL record, latency histogram,
    /// refraction GC, snapshot check — happens once for the whole window.
    fn evaluate_groups_inner(
        &mut self,
        groups: Vec<Vec<TransferSpec>>,
    ) -> Vec<Vec<TransferAdvice>> {
        let total: usize = groups.iter().map(Vec::len).sum();
        self.stats.transfer_requests += total as u64;

        struct Row {
            handle: pwm_rules::FactHandle,
            advice: TransferAdvice,
            priority: i32,
        }
        let by_priority = self.ctx.config.ordering == OrderingPolicy::ByPriority;
        let eval_start = Instant::now();
        let mut total_firings = 0usize;
        let mut out_groups = Vec::with_capacity(groups.len());
        for batch in groups {
            // Steady-state short circuit: a single already-staged duplicate
            // — the dominant request once a workload's files are staged —
            // has a rules outcome that is fully determined by indexed
            // probes, so it skips the insert/fire/retract cycle entirely.
            if self.fast_path && batch.len() == 1 {
                if let Some(advice) = self.try_fast_staged_duplicate(&batch[0]) {
                    out_groups.push(vec![advice]);
                    continue;
                }
            }
            let mut handles = Vec::with_capacity(batch.len());
            for spec in batch {
                let id = TransferId(self.next_transfer);
                self.next_transfer += 1;
                let h = self.session.wm.insert(TransferFact {
                    id,
                    spec,
                    state: TransferState::Pending,
                    streams: None,
                    charged_streams: 0,
                    group: None,
                    in_current_batch: true,
                    suppressed: None,
                    cluster_released: false,
                    backend: None,
                    backend_released: false,
                });
                handles.push(h);
            }

            let report = self.session.fire_all(&mut self.ctx);
            total_firings += report.firings;
            debug_assert!(!report.budget_exhausted, "policy rules did not converge");

            // Snapshot the group's facts for advice building.
            let mut rows: Vec<Row> = Vec::with_capacity(handles.len());
            for h in &handles {
                let t = self
                    .session
                    .wm
                    .get::<TransferFact>(*h)
                    .expect("batch fact vanished during evaluation");
                let action = match t.suppressed {
                    Some(reason) => TransferAction::Skip(reason),
                    None => TransferAction::Execute,
                };
                rows.push(Row {
                    handle: *h,
                    advice: TransferAdvice {
                        id: t.id,
                        source: t.spec.source.clone(),
                        dest: t.spec.dest.clone(),
                        action,
                        streams: t.streams.unwrap_or(1).max(1),
                        group: t.group.unwrap_or_default(),
                        order: 0,
                        backend: t.backend.clone(),
                    },
                    priority: t.spec.priority.unwrap_or(0),
                });
            }

            // Ordering policy: executing transfers first (sorted), skips
            // after — applied within each group independently.
            rows.sort_by(|a, b| {
                let exec_a = a.advice.should_execute();
                let exec_b = b.advice.should_execute();
                exec_b
                    .cmp(&exec_a)
                    .then_with(|| {
                        if by_priority {
                            b.priority.cmp(&a.priority)
                        } else {
                            std::cmp::Ordering::Equal
                        }
                    })
                    .then_with(|| {
                        (&a.advice.source, &a.advice.dest).cmp(&(&b.advice.source, &b.advice.dest))
                    })
                    .then_with(|| a.advice.id.cmp(&b.advice.id))
            });

            // Commit states: executing facts leave the batch as InProgress;
            // suppressed facts are removed (their bookkeeping side effects —
            // resource refcounts — already happened).
            let mut out = Vec::with_capacity(rows.len());
            for (i, mut row) in rows.into_iter().enumerate() {
                row.advice.order = i as u32;
                let skipped = match row.advice.action {
                    TransferAction::Execute => None,
                    TransferAction::Skip(reason) => Some(reason),
                };
                self.audit.record(PolicyEvent::TransferEvaluated {
                    id: row.advice.id,
                    streams: row.advice.streams,
                    skipped,
                });
                if row.advice.should_execute() {
                    self.stats.transfers_executed += 1;
                    self.session.wm.update::<TransferFact>(row.handle, |t| {
                        t.state = TransferState::InProgress;
                        t.in_current_batch = false;
                    });
                } else {
                    self.stats.transfers_suppressed += 1;
                    self.session.wm.retract(row.handle);
                }
                out.push(row.advice);
            }
            out_groups.push(out);
        }
        let eval_micros = eval_start.elapsed().as_micros() as u64;
        self.stats.rule_firings += total_firings as u64;
        self.session.maybe_gc_refraction();
        self.note_evaluation("evaluate_transfers", eval_micros, total, total_firings);
        self.maybe_snapshot();
        out_groups
    }

    /// The steady-state short circuit: answer a single-transfer request
    /// whose file is already staged **for this workflow** without a rules
    /// pass.
    ///
    /// Once a workload's files are staged, the overwhelming share of
    /// requests are duplicates that Table I's "already staged" rule
    /// suppresses while mutating nothing — the insert/fire/retract cycle
    /// exists only to discover that. When every condition below holds, the
    /// rules outcome is fully determined and byte-identical advice can be
    /// built from three indexed probes; any doubt falls through to the
    /// authoritative rules pass:
    ///
    /// - dedup is enabled (otherwise no suppression happens at all);
    /// - no resident in-progress transfer has the same (source, dest) —
    ///   the higher-salience "already in progress" rule would win and mark
    ///   `AlreadyInProgress` instead;
    /// - the destination's resource is `Staged` (a `Staging` resource
    ///   again means the in-progress rule territory, or a half-made state
    ///   the rules must arbitrate);
    /// - the requesting workflow is already a user of the resource — else
    ///   the "associate" rule would mutate the resource's user set.
    ///
    /// The replicated effects match the full pass exactly: a fresh id is
    /// minted, streams are the requested-or-default value floored to one
    /// (Table I's default + at-least-one rules fire even for suppressed
    /// transfers), no group is assigned, and the same audit record and
    /// suppression counter are written. Rule firing counters stay at zero
    /// — honestly, since no rule ran.
    fn try_fast_staged_duplicate(&mut self, spec: &TransferSpec) -> Option<TransferAdvice> {
        if !self.ctx.config.dedup {
            return None;
        }
        let wm = &self.session.wm;
        let key = transfer_pair_key(&spec.source, &spec.dest);
        let busy = wm.iter_by::<TransferFact, u64>(&key).any(|(_, u)| {
            u.state == TransferState::InProgress
                && u.spec.source == spec.source
                && u.spec.dest == spec.dest
        });
        if busy {
            return None;
        }
        let (_, r) = resource_for(wm, &spec.dest)?;
        if r.state != ResourceState::Staged || !r.users.contains(&spec.workflow) {
            return None;
        }
        let id = TransferId(self.next_transfer);
        self.next_transfer += 1;
        let streams = spec
            .requested_streams
            .unwrap_or(self.ctx.config.default_streams)
            .max(1);
        self.stats.transfers_suppressed += 1;
        self.audit.record(PolicyEvent::TransferEvaluated {
            id,
            streams,
            skipped: Some(SuppressReason::AlreadyStaged),
        });
        Some(TransferAdvice {
            id,
            source: spec.source.clone(),
            dest: spec.dest.clone(),
            action: TransferAction::Skip(SuppressReason::AlreadyStaged),
            streams,
            group: Default::default(),
            order: 0,
            backend: None,
        })
    }

    /// Report transfer outcomes. Completed transfers release their streams
    /// and mark their resource staged; failed transfers release streams and
    /// drop the half-staged resource so retries are not treated as
    /// duplicates.
    pub fn report_transfers(&mut self, outcomes: Vec<TransferOutcome>) {
        if self.durability.is_some() {
            self.log_command(WalCommand::ReportTransfers(outcomes.clone()));
        }
        let batch_len = outcomes.len();
        for outcome in outcomes {
            if let Some((h, _)) = self.session.wm.find::<TransferFact>(|t| t.id == outcome.id) {
                self.session.wm.update::<TransferFact>(h, |t| {
                    t.state = if outcome.success {
                        TransferState::Completed
                    } else {
                        TransferState::Failed
                    };
                });
                if outcome.success {
                    self.stats.transfers_completed += 1;
                } else {
                    self.stats.transfers_failed += 1;
                }
                self.audit.record(PolicyEvent::TransferReported {
                    id: outcome.id,
                    success: outcome.success,
                });
            }
        }
        let eval_start = Instant::now();
        let report = self.session.fire_all(&mut self.ctx);
        let eval_micros = eval_start.elapsed().as_micros() as u64;
        self.stats.rule_firings += report.firings as u64;
        self.session.maybe_gc_refraction();
        self.note_evaluation("report_transfers", eval_micros, batch_len, report.firings);
        self.maybe_snapshot();
    }

    /// Evaluate a list of cleanup requests; duplicates and in-use files are
    /// marked skipped.
    pub fn evaluate_cleanups(&mut self, batch: Vec<CleanupSpec>) -> Vec<CleanupAdvice> {
        if self.durability.is_some() {
            self.log_command(WalCommand::EvaluateCleanups(batch.clone()));
        }
        self.stats.cleanup_requests += batch.len() as u64;
        let mut handles = Vec::with_capacity(batch.len());
        for spec in batch {
            let id = CleanupId(self.next_cleanup);
            self.next_cleanup += 1;
            handles.push(self.session.wm.insert(CleanupFact {
                id,
                spec,
                state: CleanupState::Pending,
                in_current_batch: true,
                suppressed: None,
            }));
        }
        let batch_len = handles.len();
        let eval_start = Instant::now();
        let report = self.session.fire_all(&mut self.ctx);
        let eval_micros = eval_start.elapsed().as_micros() as u64;
        self.stats.rule_firings += report.firings as u64;

        let mut out = Vec::with_capacity(handles.len());
        for h in handles {
            let c = self
                .session
                .wm
                .get::<CleanupFact>(h)
                .expect("batch cleanup vanished during evaluation");
            let advice = CleanupAdvice {
                id: c.id,
                file: c.spec.file.clone(),
                action: match c.suppressed {
                    Some(reason) => CleanupAction::Skip(reason),
                    None => CleanupAction::Execute,
                },
            };
            let skipped = match advice.action {
                CleanupAction::Execute => None,
                CleanupAction::Skip(reason) => Some(reason),
            };
            self.audit.record(PolicyEvent::CleanupEvaluated {
                id: advice.id,
                skipped,
            });
            if advice.should_execute() {
                self.stats.cleanups_executed += 1;
                self.session.wm.update::<CleanupFact>(h, |c| {
                    c.state = CleanupState::InProgress;
                    c.in_current_batch = false;
                });
            } else {
                self.stats.cleanups_suppressed += 1;
                self.session.wm.retract(h);
            }
            out.push(advice);
        }
        self.session.maybe_gc_refraction();
        self.note_evaluation("evaluate_cleanups", eval_micros, batch_len, report.firings);
        self.maybe_snapshot();
        out
    }

    /// Report cleanup outcomes. Successful cleanups remove the cleanup and
    /// its resource from policy memory; failed ones are forgotten so the
    /// client may retry.
    pub fn report_cleanups(&mut self, outcomes: Vec<CleanupOutcome>) {
        if self.durability.is_some() {
            self.log_command(WalCommand::ReportCleanups(outcomes.clone()));
        }
        let batch_len = outcomes.len();
        for outcome in outcomes {
            if let Some((h, _)) = self.session.wm.find::<CleanupFact>(|c| c.id == outcome.id) {
                if outcome.success {
                    self.session.wm.update::<CleanupFact>(h, |c| {
                        c.state = CleanupState::Completed;
                    });
                } else {
                    self.session.wm.retract(h);
                }
                self.audit.record(PolicyEvent::CleanupReported {
                    id: outcome.id,
                    success: outcome.success,
                });
            }
        }
        let eval_start = Instant::now();
        let report = self.session.fire_all(&mut self.ctx);
        let eval_micros = eval_start.elapsed().as_micros() as u64;
        self.stats.rule_firings += report.firings as u64;
        self.session.maybe_gc_refraction();
        self.note_evaluation("report_cleanups", eval_micros, batch_len, report.firings);
        self.maybe_snapshot();
    }

    /// Record infrastructure health observations in policy memory (recovery
    /// family). Reports are upserts: `Down`/`Suspect` events insert or
    /// update the corresponding fact, `Up`/`Cleared` events retract it.
    /// Idempotent per event, so re-delivered reports are harmless; the
    /// command rides the WAL like every other mutation.
    pub fn report_health(&mut self, events: Vec<HealthEvent>) {
        if events.is_empty() {
            return;
        }
        if self.durability.is_some() {
            self.log_command(WalCommand::ReportHealth(events.clone()));
        }
        for event in events {
            let wm = &mut self.session.wm;
            match event {
                HealthEvent::HostDown { host } => {
                    if wm.find_by::<HostDownFact, String>(&host).is_none() {
                        wm.insert(HostDownFact { host });
                    }
                }
                HealthEvent::HostUp { host } => {
                    if let Some(h) = wm.find_by::<HostDownFact, String>(&host).map(|(h, _)| h) {
                        wm.retract(h);
                    }
                }
                HealthEvent::BackendDown { backend } => {
                    if wm.find_by::<BackendDownFact, String>(&backend).is_none() {
                        wm.insert(BackendDownFact { backend });
                    }
                }
                HealthEvent::BackendUp { backend } => {
                    if let Some(h) = wm
                        .find_by::<BackendDownFact, String>(&backend)
                        .map(|(h, _)| h)
                    {
                        wm.retract(h);
                    }
                }
                HealthEvent::SuspectReplica {
                    host,
                    file,
                    quarantine,
                } => {
                    let key = (host.clone(), file.clone());
                    if let Some(h) = wm
                        .find_by::<SuspectReplicaFact, (String, String)>(&key)
                        .map(|(h, _)| h)
                    {
                        wm.update::<SuspectReplicaFact>(h, |s| {
                            s.strikes += 1;
                            s.quarantined |= quarantine;
                        });
                    } else {
                        wm.insert(SuspectReplicaFact {
                            host,
                            file,
                            strikes: 1,
                            quarantined: quarantine,
                        });
                    }
                }
                HealthEvent::ReplicaCleared { host, file } => {
                    let key = (host, file);
                    if let Some(h) = wm
                        .find_by::<SuspectReplicaFact, (String, String)>(&key)
                        .map(|(h, _)| h)
                    {
                        wm.retract(h);
                    }
                }
            }
        }
        self.maybe_snapshot();
    }

    /// Streams currently allocated between a host pair.
    pub fn allocated(&self, src_host: &str, dst_host: &str) -> u32 {
        self.session
            .wm
            .find::<HostPairFact>(|p| p.src_host == src_host && p.dst_host == dst_host)
            .map(|(_, p)| p.allocated)
            .unwrap_or(0)
    }

    /// Peak streams ever allocated between a host pair (Table IV).
    pub fn peak_allocated(&self, src_host: &str, dst_host: &str) -> u32 {
        self.session
            .wm
            .find::<HostPairFact>(|p| p.src_host == src_host && p.dst_host == dst_host)
            .map(|(_, p)| p.peak_allocated)
            .unwrap_or(0)
    }

    /// Chrome-trace JSON of this service's tracer, or `None` when no
    /// observability is attached.
    pub fn trace_chrome_json(&self) -> Option<String> {
        self.obs.as_ref().map(|o| o.obs.tracer.chrome_trace_json())
    }

    /// JSONL dump of this service's tracer (one event object per line), or
    /// `None` when no observability is attached.
    pub fn trace_jsonl(&self) -> Option<String> {
        self.obs.as_ref().map(|o| o.obs.tracer.jsonl())
    }

    /// Snapshot of policy memory for monitoring.
    pub fn snapshot(&self) -> MemorySnapshot {
        let wm = &self.session.wm;
        MemorySnapshot {
            in_progress_transfers: wm
                .iter::<TransferFact>()
                .filter(|(_, t)| t.state == TransferState::InProgress)
                .count(),
            staged_files: wm
                .iter::<ResourceFact>()
                .filter(|(_, r)| r.state == ResourceState::Staged)
                .count(),
            staging_files: wm
                .iter::<ResourceFact>()
                .filter(|(_, r)| r.state == ResourceState::Staging)
                .count(),
            in_progress_cleanups: wm
                .iter::<CleanupFact>()
                .filter(|(_, c)| c.state == CleanupState::InProgress)
                .count(),
            host_pairs: wm
                .iter::<HostPairFact>()
                .map(|(_, p)| HostPairSnapshot {
                    src_host: p.src_host.clone(),
                    dst_host: p.dst_host.clone(),
                    allocated: p.allocated,
                    peak_allocated: p.peak_allocated,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AllocationPolicy;
    use crate::model::{Url, WorkflowId};

    fn spec_n(n: u32, wf: u64) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", "tacc", format!("/data/f{n:03}.dat")),
            dest: Url::new("file", "isi", format!("/scratch/f{n:03}.dat")),
            bytes: 1_000_000,
            requested_streams: None,
            workflow: WorkflowId(wf),
            cluster: None,
            priority: None,
        }
    }

    fn greedy_service(default: u32, threshold: u32) -> PolicyService {
        PolicyService::new(
            PolicyConfig::default()
                .with_default_streams(default)
                .with_threshold(threshold)
                .with_allocation(AllocationPolicy::Greedy),
        )
    }

    #[test]
    fn single_batch_gets_default_streams_and_group() {
        let mut svc = greedy_service(4, 50);
        let advice = svc.evaluate_transfers(vec![spec_n(1, 1), spec_n(2, 1)]);
        assert_eq!(advice.len(), 2);
        for a in &advice {
            assert!(a.should_execute());
            assert_eq!(a.streams, 4);
        }
        assert_eq!(
            advice[0].group, advice[1].group,
            "same host pair, one group"
        );
        assert_eq!(svc.allocated("tacc", "isi"), 8);
    }

    #[test]
    fn advice_is_sorted_by_source_and_dest_url() {
        let mut svc = greedy_service(4, 50);
        let advice = svc.evaluate_transfers(vec![spec_n(3, 1), spec_n(1, 1), spec_n(2, 1)]);
        let paths: Vec<&str> = advice.iter().map(|a| a.source.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["/data/f001.dat", "/data/f002.dat", "/data/f003.dat"]
        );
        assert_eq!(
            advice.iter().map(|a| a.order).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn duplicate_in_batch_is_skipped() {
        let mut svc = greedy_service(4, 50);
        let advice = svc.evaluate_transfers(vec![spec_n(1, 1), spec_n(1, 1)]);
        let executing = advice.iter().filter(|a| a.should_execute()).count();
        assert_eq!(executing, 1);
        assert_eq!(svc.stats().transfers_suppressed, 1);
        // Only one transfer charged.
        assert_eq!(svc.allocated("tacc", "isi"), 4);
    }

    #[test]
    fn in_progress_duplicate_across_batches_is_skipped() {
        let mut svc = greedy_service(4, 50);
        let first = svc.evaluate_transfers(vec![spec_n(1, 1)]);
        assert!(first[0].should_execute());
        let second = svc.evaluate_transfers(vec![spec_n(1, 2)]);
        assert!(!second[0].should_execute());
        // But the second workflow is now registered as a user of the file.
        let snap = svc.snapshot();
        assert_eq!(snap.staging_files, 1);
    }

    #[test]
    fn staged_file_is_not_restaged() {
        let mut svc = greedy_service(4, 50);
        let advice = svc.evaluate_transfers(vec![spec_n(1, 1)]);
        svc.report_transfers(vec![TransferOutcome {
            id: advice[0].id,
            success: true,
        }]);
        assert_eq!(svc.snapshot().staged_files, 1);
        let again = svc.evaluate_transfers(vec![spec_n(1, 2)]);
        assert!(!again[0].should_execute());
        assert_eq!(
            again[0].action,
            TransferAction::Skip(crate::model::SuppressReason::AlreadyStaged)
        );
    }

    #[test]
    fn failed_transfer_can_be_retried() {
        let mut svc = greedy_service(4, 50);
        let advice = svc.evaluate_transfers(vec![spec_n(1, 1)]);
        svc.report_transfers(vec![TransferOutcome {
            id: advice[0].id,
            success: false,
        }]);
        assert_eq!(svc.allocated("tacc", "isi"), 0, "streams released");
        let retry = svc.evaluate_transfers(vec![spec_n(1, 1)]);
        assert!(retry[0].should_execute(), "failure must not block retries");
    }

    #[test]
    fn completion_releases_streams() {
        let mut svc = greedy_service(8, 50);
        let advice = svc.evaluate_transfers((0..7).map(|i| spec_n(i, 1)).collect());
        assert_eq!(svc.allocated("tacc", "isi"), 50); // 6×8 + 2
        let outcomes: Vec<TransferOutcome> = advice
            .iter()
            .map(|a| TransferOutcome {
                id: a.id,
                success: true,
            })
            .collect();
        svc.report_transfers(outcomes);
        assert_eq!(svc.allocated("tacc", "isi"), 0);
        assert_eq!(svc.peak_allocated("tacc", "isi"), 50);
        assert_eq!(svc.snapshot().staged_files, 7);
    }

    #[test]
    fn table_iv_through_the_full_service() {
        // 20 concurrent staging jobs, one transfer each, no completions.
        for (threshold, default, expected) in [
            (50, 4, 57),
            (50, 8, 63),
            (50, 12, 65),
            (100, 8, 107),
            (200, 10, 200),
            (200, 12, 203),
        ] {
            let mut svc = greedy_service(default, threshold);
            for j in 0..20 {
                svc.evaluate_transfers(vec![spec_n(j, 1)]);
            }
            assert_eq!(
                svc.peak_allocated("tacc", "isi"),
                expected,
                "threshold {threshold}, default {default}"
            );
        }
    }

    #[test]
    fn cleanup_of_unused_file_executes() {
        let mut svc = greedy_service(4, 50);
        let advice = svc.evaluate_transfers(vec![spec_n(1, 1)]);
        svc.report_transfers(vec![TransferOutcome {
            id: advice[0].id,
            success: true,
        }]);
        let cleanups = svc.evaluate_cleanups(vec![CleanupSpec {
            file: Url::new("file", "isi", "/scratch/f001.dat"),
            workflow: WorkflowId(1),
        }]);
        assert!(cleanups[0].should_execute());
        svc.report_cleanups(vec![CleanupOutcome {
            id: cleanups[0].id,
            success: true,
        }]);
        assert_eq!(svc.snapshot().staged_files, 0, "resource removed");
    }

    #[test]
    fn cleanup_of_shared_file_is_suppressed_until_last_user() {
        let mut svc = greedy_service(4, 50);
        // wf1 stages the file; wf2 requests the same file (skipped but
        // registered as a user).
        let a = svc.evaluate_transfers(vec![spec_n(1, 1)]);
        svc.report_transfers(vec![TransferOutcome {
            id: a[0].id,
            success: true,
        }]);
        svc.evaluate_transfers(vec![spec_n(1, 2)]);

        let file = Url::new("file", "isi", "/scratch/f001.dat");
        // wf1 asks to clean up: wf2 still uses it → suppressed.
        let c1 = svc.evaluate_cleanups(vec![CleanupSpec {
            file: file.clone(),
            workflow: WorkflowId(1),
        }]);
        assert!(!c1[0].should_execute());
        assert_eq!(svc.snapshot().staged_files, 1, "file survives");

        // wf2 asks later: no users remain → executes.
        let c2 = svc.evaluate_cleanups(vec![CleanupSpec {
            file: file.clone(),
            workflow: WorkflowId(2),
        }]);
        assert!(c2[0].should_execute());
    }

    #[test]
    fn duplicate_cleanup_is_suppressed() {
        let mut svc = greedy_service(4, 50);
        let a = svc.evaluate_transfers(vec![spec_n(1, 1)]);
        svc.report_transfers(vec![TransferOutcome {
            id: a[0].id,
            success: true,
        }]);
        let file = Url::new("file", "isi", "/scratch/f001.dat");
        let first = svc.evaluate_cleanups(vec![CleanupSpec {
            file: file.clone(),
            workflow: WorkflowId(1),
        }]);
        assert!(first[0].should_execute());
        // Same cleanup again while the first is still in progress.
        let second = svc.evaluate_cleanups(vec![CleanupSpec {
            file: file.clone(),
            workflow: WorkflowId(1),
        }]);
        assert!(!second[0].should_execute());
        assert_eq!(svc.stats().cleanups_suppressed, 1);
    }

    #[test]
    fn priority_ordering_sorts_descending() {
        let mut svc =
            PolicyService::new(PolicyConfig::default().with_ordering(OrderingPolicy::ByPriority));
        let mut lo = spec_n(1, 1);
        lo.priority = Some(1);
        let mut hi = spec_n(2, 1);
        hi.priority = Some(10);
        let advice = svc.evaluate_transfers(vec![lo, hi]);
        assert_eq!(advice[0].source.path, "/data/f002.dat");
        assert_eq!(advice[1].source.path, "/data/f001.dat");
    }

    #[test]
    fn snapshot_reflects_ledgers() {
        let mut svc = greedy_service(4, 50);
        svc.evaluate_transfers(vec![spec_n(1, 1)]);
        let snap = svc.snapshot();
        assert_eq!(snap.in_progress_transfers, 1);
        assert_eq!(snap.host_pairs.len(), 1);
        assert_eq!(snap.host_pairs[0].allocated, 4);
        assert_eq!(snap.host_pairs[0].src_host, "tacc");
    }

    #[test]
    fn unknown_outcome_ids_are_ignored() {
        let mut svc = greedy_service(4, 50);
        svc.report_transfers(vec![TransferOutcome {
            id: TransferId(999),
            success: true,
        }]);
        svc.report_cleanups(vec![CleanupOutcome {
            id: CleanupId(999),
            success: true,
        }]);
        // No panic, nothing counted as completed.
        assert_eq!(svc.stats().transfers_completed, 0);
    }

    #[test]
    fn duplicate_completion_report_is_harmless() {
        let mut svc = greedy_service(4, 50);
        let a = svc.evaluate_transfers(vec![spec_n(1, 1)]);
        let outcome = TransferOutcome {
            id: a[0].id,
            success: true,
        };
        svc.report_transfers(vec![outcome]);
        svc.report_transfers(vec![outcome]);
        assert_eq!(svc.allocated("tacc", "isi"), 0);
        assert_eq!(svc.stats().transfers_completed, 1);
    }

    #[test]
    fn durable_state_roundtrip_is_identity() {
        let mut svc = greedy_service(4, 50);
        let a = svc.evaluate_transfers(vec![spec_n(1, 1), spec_n(2, 1), spec_n(1, 2)]);
        let staged = a.iter().find(|x| x.should_execute()).unwrap().id;
        svc.report_transfers(vec![TransferOutcome {
            id: staged,
            success: true,
        }]);
        svc.evaluate_cleanups(vec![CleanupSpec {
            file: Url::new("file", "isi", "/scratch/f002.dat"),
            workflow: WorkflowId(1),
        }]);

        let state = svc.durable_state();
        let mut rebuilt = PolicyService::from_durable_state(state.clone());
        assert_eq!(rebuilt.durable_state(), state);
        // And the rebuilt service behaves identically on new requests.
        assert_eq!(
            svc.evaluate_transfers(vec![spec_n(9, 1), spec_n(1, 3)]),
            rebuilt.evaluate_transfers(vec![spec_n(9, 1), spec_n(1, 3)]),
        );
        assert_eq!(svc.snapshot(), rebuilt.snapshot());
        assert_eq!(svc.stats(), rebuilt.stats());
        assert_eq!(svc.audit_tail(50), rebuilt.audit_tail(50));
    }

    #[test]
    fn durable_session_recovers_from_disk() {
        let dir = crate::durable::scratch_dir("svc-recover");
        let mut svc = greedy_service(4, 50);
        svc.enable_durability(crate::durable::DurabilityConfig::new(&dir).with_snapshot_every(2))
            .unwrap();
        let a = svc.evaluate_transfers(vec![spec_n(1, 1), spec_n(2, 1)]);
        svc.report_transfers(vec![TransferOutcome {
            id: a[0].id,
            success: true,
        }]);
        svc.evaluate_transfers(vec![spec_n(3, 1)]);

        let mut recovered = PolicyService::recover_from(&dir).unwrap();
        assert_eq!(recovered.snapshot(), svc.snapshot());
        assert_eq!(recovered.stats(), svc.stats());
        assert_eq!(recovered.durable_state(), {
            let mut s = svc.durable_state();
            s.applied_seq = 0; // the live service stamps its log position
            s
        });
        // Dedup memory survived: the staged file is not re-advised.
        let again = recovered.evaluate_transfers(vec![spec_n(1, 2)]);
        assert!(!again[0].should_execute());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn audit_retention_config_bounds_the_ring() {
        let mut svc = PolicyService::new(PolicyConfig::default().with_audit_retention(4));
        for i in 0..10 {
            svc.evaluate_transfers(vec![spec_n(i, 1)]);
        }
        assert_eq!(svc.audit_tail(100).len(), 4);
        // Reconfiguring the retention resizes the ring in place.
        svc.set_config(PolicyConfig::default().with_audit_retention(2));
        assert!(svc.audit_tail(100).len() <= 2);
    }

    #[test]
    fn balanced_service_respects_cluster_shares() {
        let mut svc = PolicyService::new(
            PolicyConfig::default()
                .with_threshold(40)
                .with_cluster_factor(2)
                .with_default_streams(8)
                .with_allocation(AllocationPolicy::Balanced),
        );
        let mut batch = Vec::new();
        for i in 0..3 {
            let mut s = spec_n(i, 1);
            s.cluster = Some(crate::model::ClusterId(0));
            batch.push(s);
        }
        let advice = svc.evaluate_transfers(batch);
        let mut streams: Vec<u32> = advice.iter().map(|a| a.streams).collect();
        streams.sort_unstable();
        assert_eq!(streams, vec![4, 8, 8], "20-share: 8+8+4");
    }

    /// Drive the same request history through a service with the
    /// already-staged short circuit on and one with it forced off; every
    /// advice row, the audit trail, and the memory snapshot must agree —
    /// the fast path is an optimization, never a behavior change.
    #[test]
    fn fast_staged_duplicate_path_matches_full_rules_pass() {
        let mut fast = greedy_service(4, 50);
        let mut slow = greedy_service(4, 50);
        slow.fast_path = false;

        let mut histories: Vec<Vec<Vec<TransferSpec>>> = Vec::new();
        // Stage two files, complete them, then hammer duplicates: the
        // same workflow (pure fast path), another workflow (associate
        // rule must run -> slow), requested_streams edge cases, and an
        // in-progress duplicate (in-progress rule must win -> slow).
        histories.push(vec![vec![spec_n(1, 1)], vec![spec_n(2, 1)]]);
        let mut zero = spec_n(1, 1);
        zero.requested_streams = Some(0);
        let mut six = spec_n(2, 1);
        six.requested_streams = Some(6);
        histories.push(vec![
            vec![spec_n(1, 1)],
            vec![spec_n(1, 2)],
            vec![zero],
            vec![six],
            vec![spec_n(3, 1)], // still staging: not eligible
            vec![spec_n(3, 2)], // duplicate of an in-progress transfer
        ]);

        for (round, groups) in histories.into_iter().enumerate() {
            let a = fast.evaluate_transfer_groups(groups.clone());
            let b = slow.evaluate_transfer_groups(groups);
            assert_eq!(a, b, "advice must match in round {round}");
            if round == 0 {
                // Complete the staged files on both services identically.
                for adv in a.iter().flatten().filter(|a| a.should_execute()) {
                    let outcome = vec![TransferOutcome {
                        id: adv.id,
                        success: true,
                    }];
                    fast.report_transfers(outcome.clone());
                    slow.report_transfers(outcome);
                }
            }
        }
        assert_eq!(fast.snapshot(), slow.snapshot());
        assert_eq!(fast.audit_tail(100), slow.audit_tail(100));
        assert_eq!(
            fast.stats().transfers_suppressed,
            slow.stats().transfers_suppressed
        );
        assert_eq!(
            fast.stats().transfer_requests,
            slow.stats().transfer_requests
        );
    }
}
