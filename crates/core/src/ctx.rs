//! The globals shared between the Policy Service and its rules.
//!
//! Drools rules see "globals" alongside working memory; our rules receive a
//! mutable [`PolicyCtx`] carrying the session configuration and the group-id
//! allocator.

use crate::config::PolicyConfig;
use crate::model::GroupId;

/// Rule-visible globals of one policy session.
#[derive(Debug, Clone)]
pub struct PolicyCtx {
    /// The session configuration (thresholds, defaults, policy selection).
    pub config: PolicyConfig,
    next_group: u64,
}

impl PolicyCtx {
    /// Wrap a configuration.
    pub fn new(config: PolicyConfig) -> Self {
        PolicyCtx {
            config,
            next_group: 0,
        }
    }

    /// Rebuild a context from recovered state (durability): the group-id
    /// allocator resumes exactly where the crashed session left it.
    pub fn restore(config: PolicyConfig, next_group: u64) -> Self {
        PolicyCtx { config, next_group }
    }

    /// Mint a fresh group id (one per newly seen host pair).
    pub fn fresh_group(&mut self) -> GroupId {
        let g = GroupId(self.next_group);
        self.next_group += 1;
        g
    }

    /// How many groups have been minted.
    pub fn groups_minted(&self) -> u64 {
        self.next_group
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_groups_are_sequential() {
        let mut ctx = PolicyCtx::new(PolicyConfig::default());
        assert_eq!(ctx.fresh_group(), GroupId(0));
        assert_eq!(ctx.fresh_group(), GroupId(1));
        assert_eq!(ctx.groups_minted(), 2);
    }
}
