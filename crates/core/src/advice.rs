//! Advice returned by the Policy Service to the Pegasus Transfer Tool.

use crate::model::{CleanupId, GroupId, SuppressReason, TransferId, Url};
use serde::{Deserialize, Serialize};

/// What the client should do with one submitted transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferAction {
    /// Execute the transfer with the advised parameters.
    Execute,
    /// Skip it — the reason says why (duplicate, already staged, ...).
    Skip(SuppressReason),
}

/// Advice for one transfer request. Returned in execution order: "the
/// Pegasus Transfer Tool processes all the transfers in each group
/// sequentially, using the sorted order and transfer parameters specified by
/// the Policy Engine".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferAdvice {
    /// Service-assigned id; quote it when reporting completion.
    pub id: TransferId,
    /// Source URL (echoed for client convenience).
    pub source: Url,
    /// Destination URL.
    pub dest: Url,
    /// Execute or skip.
    pub action: TransferAction,
    /// Parallel streams to use (≥ 1 when executing).
    pub streams: u32,
    /// Group: transfers sharing a group should run in one client session.
    pub group: GroupId,
    /// Position in the advised execution order (0-based, across the batch).
    pub order: u32,
    /// Storage backend to stage through, when the storage policy family
    /// picked one (None = stage directly to the destination as before).
    #[serde(default)]
    pub backend: Option<String>,
}

impl TransferAdvice {
    /// True when the client should actually run this transfer.
    pub fn should_execute(&self) -> bool {
        matches!(self.action, TransferAction::Execute)
    }
}

/// What the client should do with one submitted cleanup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CleanupAction {
    /// Delete the file.
    Execute,
    /// Skip — duplicate request or the file is still in use elsewhere.
    Skip(SuppressReason),
}

/// Advice for one cleanup request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanupAdvice {
    /// Service-assigned id; quote it when reporting completion.
    pub id: CleanupId,
    /// File the request referred to.
    pub file: Url,
    /// Execute or skip.
    pub action: CleanupAction,
}

impl CleanupAdvice {
    /// True when the client should actually delete the file.
    pub fn should_execute(&self) -> bool {
        matches!(self.action, CleanupAction::Execute)
    }
}

/// Outcome of an executed transfer, reported back by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// Which transfer.
    pub id: TransferId,
    /// Whether the bytes arrived.
    pub success: bool,
}

/// Outcome of an executed cleanup, reported back by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanupOutcome {
    /// Which cleanup.
    pub id: CleanupId,
    /// Whether the file was removed.
    pub success: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn should_execute_tracks_action() {
        let mut a = TransferAdvice {
            id: TransferId(1),
            source: Url::new("gsiftp", "s", "/x"),
            dest: Url::new("file", "d", "/x"),
            action: TransferAction::Execute,
            streams: 4,
            group: GroupId(0),
            order: 0,
            backend: None,
        };
        assert!(a.should_execute());
        a.action = TransferAction::Skip(SuppressReason::AlreadyStaged);
        assert!(!a.should_execute());
    }

    #[test]
    fn cleanup_should_execute_tracks_action() {
        let mut c = CleanupAdvice {
            id: CleanupId(1),
            file: Url::new("file", "d", "/x"),
            action: CleanupAction::Execute,
        };
        assert!(c.should_execute());
        c.action = CleanupAction::Skip(SuppressReason::ResourceInUse);
        assert!(!c.should_execute());
    }

    #[test]
    fn advice_serde_roundtrip() {
        let a = TransferAdvice {
            id: TransferId(9),
            source: Url::new("gsiftp", "s", "/x"),
            dest: Url::new("file", "d", "/x"),
            action: TransferAction::Skip(SuppressReason::DuplicateInBatch),
            streams: 1,
            group: GroupId(3),
            order: 7,
            backend: Some("obj-s3".into()),
        };
        let json = serde_json::to_string(&a).unwrap();
        let back: TransferAdvice = serde_json::from_str(&json).unwrap();
        assert_eq!(a, back);
    }
}
