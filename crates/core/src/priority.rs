//! Structure-based job priorities (Section III.c).
//!
//! "We can assign priorities to the workflow components based on various
//! graph traversal algorithms: breadth-first search, depth-first search, and
//! two graph node analysis algorithms called direct-dependent-based and
//! dependent-based." The paper leaves the *rules* for these to future work;
//! we implement both the algorithms and their use by the ordering policy
//! (transfers sorted by descending priority), which the bench harness
//! ablates.

use std::collections::VecDeque;

/// A lightweight DAG of workflow jobs, decoupled from the full workflow
/// crate so the Policy Service can rank jobs from a plain edge list.
#[derive(Debug, Clone)]
pub struct WorkflowGraph {
    children: Vec<Vec<usize>>,
    parents: Vec<Vec<usize>>,
}

/// Error returned when a graph is not a DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleError;

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "workflow graph contains a cycle")
    }
}
impl std::error::Error for CycleError {}

impl WorkflowGraph {
    /// A graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        WorkflowGraph {
            children: vec![Vec::new(); n],
            parents: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.children.len()
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.children.is_empty()
    }

    /// Add a dependency edge `parent → child` (child consumes parent's
    /// output). Duplicate edges are ignored.
    pub fn add_edge(&mut self, parent: usize, child: usize) {
        assert!(
            parent < self.len() && child < self.len(),
            "node out of range"
        );
        if !self.children[parent].contains(&child) {
            self.children[parent].push(child);
            self.parents[child].push(parent);
        }
    }

    /// Children (direct dependents) of a node.
    pub fn children(&self, node: usize) -> &[usize] {
        &self.children[node]
    }

    /// Parents of a node.
    pub fn parents(&self, node: usize) -> &[usize] {
        &self.parents[node]
    }

    /// Nodes with no parents, in index order.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.parents[i].is_empty())
            .collect()
    }

    /// Kahn topological order; `Err(CycleError)` if the graph has a cycle.
    pub fn topo_order(&self) -> Result<Vec<usize>, CycleError> {
        let mut indegree: Vec<usize> = (0..self.len()).map(|i| self.parents[i].len()).collect();
        let mut queue: VecDeque<usize> = self.roots().into();
        let mut order = Vec::with_capacity(self.len());
        while let Some(node) = queue.pop_front() {
            order.push(node);
            for &c in &self.children[node] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    queue.push_back(c);
                }
            }
        }
        if order.len() == self.len() {
            Ok(order)
        } else {
            Err(CycleError)
        }
    }

    /// Number of unique descendants (transitive dependents) per node.
    pub fn descendant_counts(&self) -> Vec<usize> {
        let n = self.len();
        let mut counts = vec![0usize; n];
        for (start, count) in counts.iter_mut().enumerate() {
            let mut seen = vec![false; n];
            let mut stack: Vec<usize> = self.children[start].to_vec();
            while let Some(node) = stack.pop() {
                if seen[node] {
                    continue;
                }
                seen[node] = true;
                *count += 1;
                stack.extend_from_slice(&self.children[node]);
            }
        }
        counts
    }
}

/// Which structure-based priority scheme to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PriorityAlgorithm {
    /// Priorities by BFS traversal order from the roots (earlier = higher).
    BreadthFirst,
    /// Priorities by DFS traversal order from the roots (earlier = higher).
    DepthFirst,
    /// "The node with the largest number of children has the highest
    /// priority" (fan-out).
    DirectDependent,
    /// "The highest priority to the node with the most total descendants."
    Dependent,
}

/// Assign a priority to every node; larger numbers mean "stage data to this
/// job sooner".
///
/// # Panics
/// Panics if the graph is cyclic (traversals would not terminate sensibly);
/// validate with [`WorkflowGraph::topo_order`] first when unsure.
pub fn assign_priorities(graph: &WorkflowGraph, algo: PriorityAlgorithm) -> Vec<i32> {
    let n = graph.len();
    match algo {
        PriorityAlgorithm::BreadthFirst => {
            let order = bfs_order(graph);
            rank_by_visit_order(n, &order)
        }
        PriorityAlgorithm::DepthFirst => {
            let order = dfs_order(graph);
            rank_by_visit_order(n, &order)
        }
        PriorityAlgorithm::DirectDependent => {
            (0..n).map(|i| graph.children(i).len() as i32).collect()
        }
        PriorityAlgorithm::Dependent => graph
            .descendant_counts()
            .into_iter()
            .map(|c| c as i32)
            .collect(),
    }
}

fn bfs_order(graph: &WorkflowGraph) -> Vec<usize> {
    graph.topo_order().expect("priorities require a DAG");
    let mut seen = vec![false; graph.len()];
    let mut queue: VecDeque<usize> = graph.roots().into();
    let mut order = Vec::with_capacity(graph.len());
    for &r in queue.iter() {
        seen[r] = true;
    }
    while let Some(node) = queue.pop_front() {
        order.push(node);
        for &c in graph.children(node) {
            if !seen[c] {
                seen[c] = true;
                queue.push_back(c);
            }
        }
    }
    order
}

fn dfs_order(graph: &WorkflowGraph) -> Vec<usize> {
    graph.topo_order().expect("priorities require a DAG");
    let mut seen = vec![false; graph.len()];
    let mut order = Vec::with_capacity(graph.len());
    fn visit(graph: &WorkflowGraph, node: usize, seen: &mut [bool], order: &mut Vec<usize>) {
        if seen[node] {
            return;
        }
        seen[node] = true;
        order.push(node);
        for &c in graph.children(node) {
            visit(graph, c, seen, order);
        }
    }
    for r in graph.roots() {
        visit(graph, r, &mut seen, &mut order);
    }
    order
}

/// Visit position → priority: first visited gets priority n, last gets 1.
fn rank_by_visit_order(n: usize, order: &[usize]) -> Vec<i32> {
    let mut prio = vec![0i32; n];
    for (pos, &node) in order.iter().enumerate() {
        prio[node] = (n - pos) as i32;
    }
    prio
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small diamond:
    /// ```text
    ///    0
    ///   / \
    ///  1   2
    ///   \ /
    ///    3
    /// ```
    fn diamond() -> WorkflowGraph {
        let mut g = WorkflowGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 3);
        g.add_edge(2, 3);
        g
    }

    /// Montage-like two-level fan: root 0 feeding leaves 1..=3, plus an
    /// isolated sink 4 fed by all leaves.
    fn fan() -> WorkflowGraph {
        let mut g = WorkflowGraph::new(5);
        for leaf in 1..=3 {
            g.add_edge(0, leaf);
            g.add_edge(leaf, 4);
        }
        g
    }

    #[test]
    fn roots_and_topo_order() {
        let g = diamond();
        assert_eq!(g.roots(), vec![0]);
        let order = g.topo_order().unwrap();
        assert_eq!(order[0], 0);
        assert_eq!(order[3], 3);
    }

    #[test]
    fn cycle_detected() {
        let mut g = WorkflowGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.topo_order(), Err(CycleError));
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = WorkflowGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.children(0), &[1]);
        assert_eq!(g.parents(1), &[0]);
    }

    #[test]
    fn bfs_prioritizes_roots_then_levels() {
        let g = diamond();
        let p = assign_priorities(&g, PriorityAlgorithm::BreadthFirst);
        // Root first, sink last.
        assert!(p[0] > p[1] && p[0] > p[2]);
        assert!(p[1] > p[3] && p[2] > p[3]);
    }

    #[test]
    fn dfs_goes_deep_before_wide() {
        let g = diamond();
        let p = assign_priorities(&g, PriorityAlgorithm::DepthFirst);
        // DFS from 0 visits 1 then 3 then 2: node 3 outranks node 2.
        assert!(p[0] > p[1]);
        assert!(p[1] > p[3]);
        assert!(p[3] > p[2]);
    }

    #[test]
    fn direct_dependent_ranks_by_fanout() {
        let g = fan();
        let p = assign_priorities(&g, PriorityAlgorithm::DirectDependent);
        assert_eq!(p, vec![3, 1, 1, 1, 0]);
    }

    #[test]
    fn dependent_ranks_by_total_descendants() {
        let g = fan();
        let p = assign_priorities(&g, PriorityAlgorithm::Dependent);
        // Root reaches 4 nodes; each leaf reaches only the sink.
        assert_eq!(p, vec![4, 1, 1, 1, 0]);
    }

    #[test]
    fn dependent_counts_unique_paths_once() {
        let g = diamond();
        let p = assign_priorities(&g, PriorityAlgorithm::Dependent);
        // Node 3 reachable from 0 via two paths but counted once: 0 → {1,2,3}.
        assert_eq!(p[0], 3);
    }

    #[test]
    fn priorities_root_dominates_in_all_algorithms() {
        // "It is more important to stage data to a root job before staging
        // data to other jobs that depend on that root job."
        for algo in [
            PriorityAlgorithm::BreadthFirst,
            PriorityAlgorithm::DepthFirst,
            PriorityAlgorithm::Dependent,
        ] {
            let g = diamond();
            let p = assign_priorities(&g, algo);
            assert!(
                p[0] > p[3],
                "{algo:?}: root must outrank its transitive dependent"
            );
        }
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = WorkflowGraph::new(0);
        assert!(g.is_empty());
        assert!(assign_priorities(&g, PriorityAlgorithm::BreadthFirst).is_empty());
        assert_eq!(g.topo_order().unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn disconnected_components_all_ranked() {
        let mut g = WorkflowGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(2, 3);
        for algo in [
            PriorityAlgorithm::BreadthFirst,
            PriorityAlgorithm::DepthFirst,
        ] {
            let p = assign_priorities(&g, algo);
            assert!(p.iter().all(|&x| x > 0), "{algo:?}: every node ranked");
        }
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn out_of_range_edge_panics() {
        let mut g = WorkflowGraph::new(1);
        g.add_edge(0, 5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Random layered DAG: edges only go from lower to higher indices, so it
    /// is acyclic by construction.
    fn arb_dag() -> impl Strategy<Value = WorkflowGraph> {
        (2usize..24).prop_flat_map(|n| {
            proptest::collection::vec((0usize..n, 0usize..n), 0..60).prop_map(move |pairs| {
                let mut g = WorkflowGraph::new(n);
                for (a, b) in pairs {
                    if a < b {
                        g.add_edge(a, b);
                    }
                }
                g
            })
        })
    }

    proptest! {
        #[test]
        fn forward_dags_are_acyclic(g in arb_dag()) {
            prop_assert!(g.topo_order().is_ok());
        }

        #[test]
        fn visit_order_priorities_are_a_permutation(g in arb_dag()) {
            for algo in [PriorityAlgorithm::BreadthFirst, PriorityAlgorithm::DepthFirst] {
                let p = assign_priorities(&g, algo);
                let mut sorted = p.clone();
                sorted.sort_unstable();
                let expected: Vec<i32> = (1..=g.len() as i32).collect();
                prop_assert_eq!(sorted, expected);
            }
        }

        #[test]
        fn traversal_visits_children_after_a_discovering_parent(g in arb_dag()) {
            // Traversal-order priorities: every non-root is discovered via
            // some parent, so at least one parent must outrank it.
            for algo in [PriorityAlgorithm::BreadthFirst, PriorityAlgorithm::DepthFirst] {
                let p = assign_priorities(&g, algo);
                for node in 0..g.len() {
                    if !g.parents(node).is_empty() {
                        prop_assert!(
                            g.parents(node).iter().any(|&par| p[par] > p[node]),
                            "{:?}: node {} outranks all its parents", algo, node
                        );
                    }
                }
            }
        }

        #[test]
        fn dependent_is_upper_bound_of_direct(g in arb_dag()) {
            let direct = assign_priorities(&g, PriorityAlgorithm::DirectDependent);
            let total = assign_priorities(&g, PriorityAlgorithm::Dependent);
            for i in 0..g.len() {
                prop_assert!(total[i] >= direct[i]);
            }
        }
    }
}
