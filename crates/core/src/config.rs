//! Policy Service configuration.
//!
//! "Prior to each test, the policy service was configured to use a specified
//! default number of streams per transfer and a maximum number of allowable
//! streams between two hosts" — these are the two central knobs, plus the
//! selection of the allocation policy and the transfer-ordering policy.

use crate::model::Url;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which stream-allocation policy the rule session enforces (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AllocationPolicy {
    /// No allocation control: every transfer gets its requested/default
    /// streams (the paper's "default Pegasus, no policy" comparator still
    /// goes through dedup/grouping if it talks to the service at all).
    #[default]
    Unlimited,
    /// Greedy allocation against the host-pair threshold (Table II).
    Greedy,
    /// Balanced allocation: the threshold is divided evenly among the
    /// workflow's clusters (Table III).
    Balanced,
}

/// Which storage-backend selection policy the storage rule family applies
/// to transfers whose destination site has registered backend profiles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum StoragePolicy {
    /// The family is disabled: no backend advice, byte-identical behavior
    /// to a service built before the storage layer existed.
    #[default]
    Off,
    /// Pick the backend with the lowest estimated dollar cost for the
    /// transfer (requests + residency estimate + egress), ties broken by
    /// name.
    GreedyCheapest,
    /// Cheapest backend whose envelope meets a performance floor; when
    /// none qualifies, the fastest (highest effective bandwidth) wins.
    LatencyFloor {
        /// Maximum acceptable fixed setup (request overhead), seconds.
        max_setup_s: f64,
        /// Minimum acceptable effective bandwidth, bytes/second.
        min_bandwidth_bps: f64,
    },
    /// Greedy-cheapest on performance-first order: fastest backend whose
    /// projected cumulative committed spend stays within the budget;
    /// falls back to the cheapest backend once the budget is exhausted.
    BudgetCapped {
        /// Total dollars the selection rules may commit across the run.
        budget_dollars: f64,
    },
}

/// One storage backend made visible to policy memory: the envelope plus the
/// destination-site host it serves (mirrored into a `BackendProfileFact`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendProfileCfg {
    /// Performance + cost envelope (shared with the simulator layer).
    pub profile: pwm_storage::BackendSpec,
    /// Host name of the destination site this backend serves.
    pub site: String,
}

/// How the returned transfer list is ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OrderingPolicy {
    /// "Sort the list of transfers by the source and destination URLs"
    /// (Table I).
    #[default]
    ByUrl,
    /// Structure-based job priorities (Section III.c): higher priority
    /// first, URL order as tie-break.
    ByPriority,
}

/// Full configuration of one policy session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Default parallel streams assigned to a transfer that does not request
    /// a specific number.
    pub default_streams: u32,
    /// Maximum total streams between a source and destination host pair,
    /// unless overridden per pair.
    pub default_threshold: u32,
    /// Per-(source host, destination host) threshold overrides, as a site /
    /// VO administrator would configure. Serialized as an entry list because
    /// JSON object keys must be strings.
    #[serde(with = "pair_thresholds_serde")]
    pub pair_thresholds: BTreeMap<(String, String), u32>,
    /// The allocation policy in force.
    pub allocation: AllocationPolicy,
    /// The ordering policy in force.
    pub ordering: OrderingPolicy,
    /// The workflow clustering factor (balanced allocation input: "the
    /// cluster factor for the workflow is provided as an input to the Policy
    /// Service").
    pub cluster_factor: u32,
    /// Whether duplicate-transfer removal is enabled (Table I). Disabled
    /// only by ablation experiments.
    pub dedup: bool,
    /// Retention of the in-memory audit ring, in records; `None` keeps the
    /// built-in default so configurations from before this field existed
    /// still decode.
    #[serde(default)]
    pub audit_retention: Option<usize>,
    /// Storage backends visible to the storage rule family (empty = none
    /// registered; pre-storage configurations still decode).
    #[serde(default)]
    pub backends: Vec<BackendProfileCfg>,
    /// Storage-backend selection policy in force.
    #[serde(default)]
    pub storage: StoragePolicy,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        // The paper's common experimental configuration: default 4 streams
        // per transfer and a 50-stream greedy threshold.
        PolicyConfig {
            default_streams: 4,
            default_threshold: 50,
            pair_thresholds: BTreeMap::new(),
            allocation: AllocationPolicy::Greedy,
            ordering: OrderingPolicy::ByUrl,
            cluster_factor: 1,
            dedup: true,
            audit_retention: None,
            backends: Vec::new(),
            storage: StoragePolicy::Off,
        }
    }
}

/// Default audit-ring retention when [`PolicyConfig::audit_retention`] is
/// unset.
pub const DEFAULT_AUDIT_RETENTION: usize = 4096;

impl PolicyConfig {
    /// Threshold in force for a specific host pair.
    pub fn threshold_for(&self, src_host: &str, dst_host: &str) -> u32 {
        self.pair_thresholds
            .get(&(src_host.to_string(), dst_host.to_string()))
            .copied()
            .unwrap_or(self.default_threshold)
    }

    /// Threshold for the host pair of a (source, dest) URL pair.
    pub fn threshold_for_urls(&self, source: &Url, dest: &Url) -> u32 {
        self.threshold_for(&source.host, &dest.host)
    }

    /// Per-cluster share under the balanced policy: the pair threshold
    /// divided evenly among clusters (integer division, floor ≥ 1).
    pub fn cluster_share(&self, src_host: &str, dst_host: &str) -> u32 {
        let total = self.threshold_for(src_host, dst_host);
        (total / self.cluster_factor.max(1)).max(1)
    }

    /// Builder-style: set the default streams.
    pub fn with_default_streams(mut self, n: u32) -> Self {
        self.default_streams = n.max(1);
        self
    }

    /// Builder-style: set the default threshold.
    pub fn with_threshold(mut self, n: u32) -> Self {
        self.default_threshold = n.max(1);
        self
    }

    /// Builder-style: set the allocation policy.
    pub fn with_allocation(mut self, p: AllocationPolicy) -> Self {
        self.allocation = p;
        self
    }

    /// Builder-style: set the ordering policy.
    pub fn with_ordering(mut self, p: OrderingPolicy) -> Self {
        self.ordering = p;
        self
    }

    /// Builder-style: set the clustering factor.
    pub fn with_cluster_factor(mut self, f: u32) -> Self {
        self.cluster_factor = f.max(1);
        self
    }

    /// Audit-ring retention in force (configured or default).
    pub fn audit_retention(&self) -> usize {
        self.audit_retention
            .unwrap_or(DEFAULT_AUDIT_RETENTION)
            .max(1)
    }

    /// Builder-style: bound the audit ring to `n` records.
    pub fn with_audit_retention(mut self, n: usize) -> Self {
        self.audit_retention = Some(n.max(1));
        self
    }

    /// Builder-style: register a storage backend at `site`.
    pub fn with_backend(
        mut self,
        profile: pwm_storage::BackendSpec,
        site: impl Into<String>,
    ) -> Self {
        self.backends.push(BackendProfileCfg {
            profile,
            site: site.into(),
        });
        self
    }

    /// Builder-style: set the storage-backend selection policy.
    pub fn with_storage(mut self, p: StoragePolicy) -> Self {
        self.storage = p;
        self
    }

    /// Builder-style: add a per-pair threshold override.
    pub fn with_pair_threshold(
        mut self,
        src_host: impl Into<String>,
        dst_host: impl Into<String>,
        threshold: u32,
    ) -> Self {
        self.pair_thresholds
            .insert((src_host.into(), dst_host.into()), threshold.max(1));
        self
    }
}

mod pair_thresholds_serde {
    use serde::{Deserialize, Serialize, Value};
    use std::collections::BTreeMap;

    /// Wire form: a list of `{src_host, dst_host, threshold}` entries (tuple
    /// map keys have no JSON encoding).
    #[derive(Serialize, Deserialize)]
    struct Entry {
        src_host: String,
        dst_host: String,
        threshold: u32,
    }

    pub fn serialize(map: &BTreeMap<(String, String), u32>) -> Value {
        let entries: Vec<Entry> = map
            .iter()
            .map(|((s, d), t)| Entry {
                src_host: s.clone(),
                dst_host: d.clone(),
                threshold: *t,
            })
            .collect();
        entries.to_value()
    }

    pub fn deserialize(v: &Value) -> Result<BTreeMap<(String, String), u32>, serde::Error> {
        let entries = Vec::<Entry>::from_value(v)?;
        Ok(entries
            .into_iter()
            .map(|e| ((e.src_host, e.dst_host), e.threshold))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_baseline() {
        let c = PolicyConfig::default();
        assert_eq!(c.default_streams, 4);
        assert_eq!(c.default_threshold, 50);
        assert_eq!(c.allocation, AllocationPolicy::Greedy);
        assert_eq!(c.ordering, OrderingPolicy::ByUrl);
        assert!(c.dedup);
    }

    #[test]
    fn pair_override_beats_default() {
        let c = PolicyConfig::default()
            .with_threshold(100)
            .with_pair_threshold("tacc", "isi", 50);
        assert_eq!(c.threshold_for("tacc", "isi"), 50);
        assert_eq!(c.threshold_for("isi", "tacc"), 100);
        assert_eq!(c.threshold_for("a", "b"), 100);
    }

    #[test]
    fn threshold_for_urls_uses_hosts() {
        let c = PolicyConfig::default().with_pair_threshold("s", "d", 7);
        let src = Url::parse("gsiftp://s/x").unwrap();
        let dst = Url::parse("file://d/y").unwrap();
        assert_eq!(c.threshold_for_urls(&src, &dst), 7);
    }

    #[test]
    fn cluster_share_divides_evenly_with_floor() {
        let c = PolicyConfig::default()
            .with_threshold(50)
            .with_cluster_factor(4);
        assert_eq!(c.cluster_share("a", "b"), 12);
        let c = c.with_cluster_factor(100);
        assert_eq!(c.cluster_share("a", "b"), 1, "share floors at 1 stream");
    }

    #[test]
    fn builders_clamp_degenerate_values() {
        let c = PolicyConfig::default()
            .with_default_streams(0)
            .with_threshold(0)
            .with_cluster_factor(0);
        assert_eq!(c.default_streams, 1);
        assert_eq!(c.default_threshold, 1);
        assert_eq!(c.cluster_factor, 1);
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = PolicyConfig::default()
            .with_pair_threshold("x", "y", 9)
            .with_allocation(AllocationPolicy::Balanced)
            .with_audit_retention(128);
        let json = serde_json::to_string(&c).unwrap();
        let back: PolicyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn audit_retention_defaults_and_clamps() {
        let c = PolicyConfig::default();
        assert_eq!(c.audit_retention(), DEFAULT_AUDIT_RETENTION);
        assert_eq!(c.with_audit_retention(0).audit_retention(), 1);
    }

    #[test]
    fn storage_config_roundtrips_and_defaults_off() {
        assert_eq!(PolicyConfig::default().storage, StoragePolicy::Off);
        let c = PolicyConfig::default()
            .with_backend(pwm_storage::ec2_trio().remove(0), "obelix-nfs")
            .with_storage(StoragePolicy::BudgetCapped {
                budget_dollars: 2.5,
            });
        let json = serde_json::to_string(&c).unwrap();
        let back: PolicyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn config_without_storage_fields_still_decodes() {
        // A pre-storage config on the wire must keep decoding (both fields
        // carry #[serde(default)]).
        let json = serde_json::to_string(&PolicyConfig::default()).unwrap();
        let stripped = json
            .replace(",\"backends\":[]", "")
            .replace(",\"storage\":\"Off\"", "");
        assert!(!stripped.contains("backends"), "strip failed: {stripped}");
        let back: PolicyConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, PolicyConfig::default());
    }

    #[test]
    fn config_without_audit_field_still_decodes() {
        // A pre-retention config on the wire must keep decoding (the field
        // carries #[serde(default)]).
        let json = serde_json::to_string(&PolicyConfig::default()).unwrap();
        let stripped = json.replace(",\"audit_retention\":null", "");
        assert!(!stripped.contains("audit_retention"));
        let back: PolicyConfig = serde_json::from_str(&stripped).unwrap();
        assert_eq!(back, PolicyConfig::default());
    }
}
