//! Replicated policy logic — the paper's reliability future work.
//!
//! "Finally, we will study the scalability of the centralized policy
//! service when planning multiple complex workflows and explore strategies
//! for distribution and replication of policy logic to improve reliability."
//!
//! [`FailoverTransport`] chains several [`PolicyTransport`] replicas: each
//! request is sent to the active replica, and on transport failure the next
//! replica takes over (sticky failover — the new primary stays active).
//!
//! Semantics: the Policy Service is *advisory*, so replica state need not be
//! identical — after a failover the new primary may lack the old one's
//! dedup/allocation memory, which degrades optimization (files may be
//! restaged, thresholds start empty) but never correctness. That is exactly
//! the failure philosophy of the original system, where a dead policy
//! service must not stop science (see the executor's fail-safe fallback).
//!
//! With [`FailoverTransport::with_warm_recovery`] the transport upgrades to
//! *warm* failover by log shipping: just before a replica serves its first
//! request, a caller-supplied hook replays the failed primary's durability
//! log into it (typically `controller.recover_session(session, dir)` over
//! the primary's WAL directory). Each replica is warmed at most once —
//! re-replaying a stale log over a replica that has since served requests
//! of its own would clobber newer state. A warmed successor inherits the
//! primary's allocation ledgers and dedup memory, so it never grants past
//! the per-host-pair threshold on top of surviving allocations and never
//! re-advises a transfer the ledger already marked staged.

use crate::advice::{CleanupAdvice, CleanupOutcome, TransferAdvice, TransferOutcome};
use crate::chaos::SharedSimClock;
use crate::model::{CleanupSpec, TransferSpec};
use crate::transport::{PolicyTransport, TransportError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A transport that fails over across policy-service replicas.
pub struct FailoverTransport {
    replicas: Vec<Box<dyn PolicyTransport>>,
    active: usize,
    failovers: Arc<AtomicU64>,
    obs: Option<(pwm_obs::Obs, Option<SharedSimClock>)>,
    /// Which replicas have already been warmed (or started warm, like the
    /// initial primary).
    warmed: Vec<bool>,
    /// Warm-recovery hook: called with a replica index once, just before
    /// that replica's first request.
    warm_hook: Option<Box<dyn FnMut(usize) + Send>>,
}

/// A cloneable handle onto a [`FailoverTransport`]'s failover counter.
///
/// The transport itself is typically moved into an executor; the probe lets
/// chaos harnesses read how many failovers happened after the run.
#[derive(Debug, Clone)]
pub struct FailoverProbe {
    failovers: Arc<AtomicU64>,
}

impl FailoverProbe {
    /// How many failovers have occurred so far.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }
}

impl FailoverTransport {
    /// Build from an ordered replica list (first = preferred primary).
    ///
    /// # Panics
    /// Panics if `replicas` is empty.
    pub fn new(replicas: Vec<Box<dyn PolicyTransport>>) -> Self {
        assert!(!replicas.is_empty(), "failover needs at least one replica");
        let mut warmed = vec![false; replicas.len()];
        warmed[0] = true; // the initial primary is authoritative by definition
        FailoverTransport {
            replicas,
            active: 0,
            failovers: Arc::new(AtomicU64::new(0)),
            obs: None,
            warmed,
            warm_hook: None,
        }
    }

    /// Upgrade to warm failover by log shipping: `hook(ix)` runs once per
    /// replica, just before its first request, and is expected to replay
    /// the primary's durability log into replica `ix` (e.g. via
    /// [`crate::PolicyController::recover_session`] over the primary's WAL
    /// directory). See the module docs for the warm-failover invariants.
    pub fn with_warm_recovery(mut self, hook: impl FnMut(usize) + Send + 'static) -> Self {
        self.warm_hook = Some(Box::new(hook));
        self
    }

    /// Attach observability: each failover increments
    /// `pwm_failover_total` and, when a sim clock is supplied, emits a
    /// sim-time trace instant naming the replica taking over.
    pub fn with_obs(mut self, obs: pwm_obs::Obs, clock: Option<SharedSimClock>) -> Self {
        self.obs = Some((obs, clock));
        self
    }

    /// Index of the replica currently serving requests.
    pub fn active_replica(&self) -> usize {
        self.active
    }

    /// How many failovers have occurred.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// A probe that keeps counting after the transport is moved elsewhere.
    pub fn probe(&self) -> FailoverProbe {
        FailoverProbe {
            failovers: Arc::clone(&self.failovers),
        }
    }

    /// Try the active replica, then fail over through the rest. `op` is
    /// retried at most once per replica.
    fn with_failover<R>(
        &mut self,
        mut op: impl FnMut(&mut dyn PolicyTransport) -> Result<R, TransportError>,
    ) -> Result<R, TransportError> {
        let n = self.replicas.len();
        let mut last_err = None;
        for attempt in 0..n {
            let ix = (self.active + attempt) % n;
            if !self.warmed[ix] {
                // Warm exactly once, even if this attempt then fails — a
                // later re-replay could overwrite state the replica built
                // up serving its own requests.
                self.warmed[ix] = true;
                if let Some(hook) = &mut self.warm_hook {
                    hook(ix);
                }
            }
            match op(self.replicas[ix].as_mut()) {
                Ok(r) => {
                    if ix != self.active {
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                        self.active = ix;
                        if let Some((obs, clock)) = &self.obs {
                            obs.registry
                                .counter(
                                    "pwm_failover_total",
                                    "Failovers to another policy-service replica",
                                    &[],
                                )
                                .inc();
                            if let Some(clock) = clock {
                                obs.tracer.instant(
                                    "failover",
                                    "chaos",
                                    clock.now(),
                                    &[("replica", ix.to_string())],
                                );
                            }
                        }
                    }
                    return Ok(r);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one replica was tried"))
    }
}

impl PolicyTransport for FailoverTransport {
    fn evaluate_transfers(
        &mut self,
        batch: Vec<TransferSpec>,
    ) -> Result<Vec<TransferAdvice>, TransportError> {
        self.with_failover(|t| t.evaluate_transfers(batch.clone()))
    }

    fn report_transfers(&mut self, outcomes: Vec<TransferOutcome>) -> Result<(), TransportError> {
        self.with_failover(|t| t.report_transfers(outcomes.clone()))
    }

    fn evaluate_cleanups(
        &mut self,
        batch: Vec<CleanupSpec>,
    ) -> Result<Vec<CleanupAdvice>, TransportError> {
        self.with_failover(|t| t.evaluate_cleanups(batch.clone()))
    }

    fn report_cleanups(&mut self, outcomes: Vec<CleanupOutcome>) -> Result<(), TransportError> {
        self.with_failover(|t| t.report_cleanups(outcomes.clone()))
    }

    fn report_health(
        &mut self,
        events: Vec<crate::model::HealthEvent>,
    ) -> Result<(), TransportError> {
        self.with_failover(|t| t.report_health(events.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyConfig;
    use crate::controller::{PolicyController, DEFAULT_SESSION};
    use crate::model::{Url, WorkflowId};
    use crate::transport::InProcessTransport;

    /// A replica that always fails.
    struct Dead;
    impl PolicyTransport for Dead {
        fn evaluate_transfers(
            &mut self,
            _b: Vec<TransferSpec>,
        ) -> Result<Vec<TransferAdvice>, TransportError> {
            Err(TransportError::Io("dead".into()))
        }
        fn report_transfers(&mut self, _o: Vec<TransferOutcome>) -> Result<(), TransportError> {
            Err(TransportError::Io("dead".into()))
        }
        fn evaluate_cleanups(
            &mut self,
            _b: Vec<CleanupSpec>,
        ) -> Result<Vec<CleanupAdvice>, TransportError> {
            Err(TransportError::Io("dead".into()))
        }
        fn report_cleanups(&mut self, _o: Vec<CleanupOutcome>) -> Result<(), TransportError> {
            Err(TransportError::Io("dead".into()))
        }
    }

    fn spec(n: u32) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", "s", format!("/f{n}")),
            dest: Url::new("file", "d", format!("/f{n}")),
            bytes: 1,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: None,
            priority: None,
        }
    }

    fn live() -> (Box<dyn PolicyTransport>, PolicyController) {
        let c = PolicyController::new(PolicyConfig::default());
        (
            Box::new(InProcessTransport::new(c.clone(), DEFAULT_SESSION)),
            c,
        )
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn empty_replica_list_rejected() {
        FailoverTransport::new(vec![]);
    }

    #[test]
    fn primary_serves_when_healthy() {
        let (primary, c) = live();
        let (backup, c2) = live();
        let mut t = FailoverTransport::new(vec![primary, backup]);
        t.evaluate_transfers(vec![spec(1)]).unwrap();
        assert_eq!(t.active_replica(), 0);
        assert_eq!(t.failovers(), 0);
        assert_eq!(c.stats(DEFAULT_SESSION).unwrap().transfer_requests, 1);
        assert_eq!(c2.stats(DEFAULT_SESSION).unwrap().transfer_requests, 0);
    }

    #[test]
    fn fails_over_to_backup_and_sticks() {
        let (backup, c2) = live();
        let mut t = FailoverTransport::new(vec![Box::new(Dead), backup]);
        let advice = t.evaluate_transfers(vec![spec(1)]).unwrap();
        assert_eq!(advice.len(), 1);
        assert_eq!(t.active_replica(), 1);
        assert_eq!(t.failovers(), 1);
        // Next request goes straight to the backup (sticky).
        t.evaluate_transfers(vec![spec(2)]).unwrap();
        assert_eq!(t.failovers(), 1, "no second failover");
        assert_eq!(c2.stats(DEFAULT_SESSION).unwrap().transfer_requests, 2);
    }

    #[test]
    fn probe_observes_failovers_after_the_transport_moves() {
        let (backup, _c) = live();
        let t = FailoverTransport::new(vec![Box::new(Dead), backup]);
        let probe = t.probe();
        // Move the transport behind a trait object, as the executor does.
        let mut boxed: Box<dyn PolicyTransport> = Box::new(t);
        boxed.evaluate_transfers(vec![spec(1)]).unwrap();
        assert_eq!(probe.failovers(), 1);
    }

    #[test]
    fn obs_counts_failovers_with_sim_time_instant() {
        let clock = SharedSimClock::new();
        clock.set(pwm_sim::SimTime::from_secs(42));
        let obs = pwm_obs::Obs::new();
        let (backup, _c) = live();
        let mut t =
            FailoverTransport::new(vec![Box::new(Dead), backup]).with_obs(obs.clone(), Some(clock));
        t.evaluate_transfers(vec![spec(1)]).unwrap();
        assert!(obs
            .registry
            .render_prometheus()
            .contains("pwm_failover_total 1"));
        let events = obs.tracer.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "failover");
        assert_eq!(events[0].start, pwm_sim::SimTime::from_secs(42));
    }

    #[test]
    fn all_replicas_dead_surfaces_the_error() {
        let mut t = FailoverTransport::new(vec![Box::new(Dead), Box::new(Dead)]);
        let err = t.evaluate_transfers(vec![spec(1)]).unwrap_err();
        assert!(matches!(err, TransportError::Io(_)));
    }

    #[test]
    fn backup_state_is_fresh_after_failover() {
        // Stage a file via the primary, then fail over: the backup does not
        // know about it, so a re-request is executed (degraded dedup, never
        // wrong).
        let (primary, _c1) = live();
        let (backup, _c2) = live();
        let mut healthy = FailoverTransport::new(vec![primary, backup]);
        let a = healthy.evaluate_transfers(vec![spec(1)]).unwrap();
        healthy
            .report_transfers(vec![TransferOutcome {
                id: a[0].id,
                success: true,
            }])
            .unwrap();
        // Same request through the backup directly (simulating a failover):
        let (backup2, _c3) = live();
        let mut after = FailoverTransport::new(vec![Box::new(Dead), backup2]);
        let again = after.evaluate_transfers(vec![spec(1)]).unwrap();
        assert!(again[0].should_execute(), "fresh backup re-stages safely");
    }

    #[test]
    fn warm_hook_fires_once_per_replica() {
        let calls = Arc::new(AtomicU64::new(0));
        let counter = Arc::clone(&calls);
        let (backup, _c) = live();
        let mut t =
            FailoverTransport::new(vec![Box::new(Dead), backup]).with_warm_recovery(move |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        t.evaluate_transfers(vec![spec(1)]).unwrap();
        t.evaluate_transfers(vec![spec(2)]).unwrap();
        // The initial primary starts warm, so only the backup triggered the
        // hook — and only before its first request.
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn warm_failover_restores_primary_memory_from_its_log() {
        let dir = crate::durable::scratch_dir("warm-failover");
        let config = PolicyConfig::default()
            .with_default_streams(8)
            .with_threshold(10);
        let primary = PolicyController::new(config.clone());
        primary
            .create_durable_session(
                DEFAULT_SESSION,
                config.clone(),
                crate::durable::DurabilityConfig::new(&dir),
            )
            .unwrap();
        let mut live = InProcessTransport::new(primary.clone(), DEFAULT_SESSION);
        // Stage f1 to completion and leave f2 in flight, holding 8 of the
        // 10 streams allowed between the hosts.
        let a = live.evaluate_transfers(vec![spec(1)]).unwrap();
        live.report_transfers(vec![TransferOutcome {
            id: a[0].id,
            success: true,
        }])
        .unwrap();
        let b = live.evaluate_transfers(vec![spec(2)]).unwrap();
        assert_eq!(b[0].streams, 8);

        // The primary dies; the backup warms itself from the primary's log
        // just before serving its first request.
        let backup = PolicyController::new(config.clone());
        let hook_backup = backup.clone();
        let hook_dir = dir.clone();
        let mut t = FailoverTransport::new(vec![
            Box::new(Dead),
            Box::new(InProcessTransport::new(backup.clone(), DEFAULT_SESSION)),
        ])
        .with_warm_recovery(move |_ix| {
            hook_backup
                .recover_session(DEFAULT_SESSION, &hook_dir)
                .unwrap();
        });

        // Dedup memory survived: the staged f1 is not re-advised.
        let again = t.evaluate_transfers(vec![spec(1)]).unwrap();
        assert!(
            !again[0].should_execute(),
            "warm backup skips a staged file"
        );
        // The allocation ledger survived: f2 still holds 8 streams, so a
        // new transfer on the same host pair never pushes the pair past
        // the threshold.
        let c = t.evaluate_transfers(vec![spec(3)]).unwrap();
        assert!(
            c[0].streams + b[0].streams <= 10,
            "threshold continuity across failover: {} + {} > 10",
            c[0].streams,
            b[0].streams
        );
        assert_eq!(t.failovers(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cleanup_path_fails_over_too() {
        let (backup, _c) = live();
        let mut t = FailoverTransport::new(vec![Box::new(Dead), backup]);
        let advice = t
            .evaluate_cleanups(vec![crate::model::CleanupSpec {
                file: Url::new("file", "d", "/f1"),
                workflow: WorkflowId(1),
            }])
            .unwrap();
        assert_eq!(advice.len(), 1);
        t.report_cleanups(vec![]).unwrap();
        assert_eq!(t.active_replica(), 1);
    }
}
