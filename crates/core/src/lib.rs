//! # pwm-core — the Policy Service
//!
//! The paper's primary contribution: a general policy service that advises a
//! workflow management system on data staging and cleanup. It "removes
//! duplicate staging and cleanup requests, allows multiple workflows to
//! share staged files safely, defines the default number of parallel streams
//! to use for each transfer, and enforces a maximum number of parallel
//! streams to be allocated between a source and destination host."
//!
//! Architecture (paper Fig. 1), mapped to modules:
//!
//! * **Policy Service / policy engine** — [`service::PolicyService`], built
//!   on the `pwm-rules` production-rule engine (the Drools substitute).
//! * **Policy Memory** — the rule session's working memory, holding the
//!   fact types in [`model`] (transfers, staged-file resources, cleanups,
//!   host-pair allocation ledgers).
//! * **Policy Rules** — [`rules_base`] (Table I, applied to all transfers),
//!   [`greedy`] (Table II), [`balanced`] (Table III), plus the
//!   structure-based priority algorithms of Section III.c in [`priority`].
//! * **Policy Controller** — [`controller::PolicyController`], the
//!   thread-safe front door used by the RESTful web interface (`pwm-rest`).
//!
//! ```
//! use pwm_core::{PolicyConfig, PolicyService, TransferSpec, Url, WorkflowId};
//!
//! let mut service = PolicyService::new(
//!     PolicyConfig::default().with_default_streams(8).with_threshold(50),
//! );
//! let advice = service.evaluate_transfers(vec![TransferSpec {
//!     source: Url::parse("gsiftp://gridftp-vm.tacc/data/extra.dat").unwrap(),
//!     dest: Url::parse("file://obelix-nfs/scratch/extra.dat").unwrap(),
//!     bytes: 100_000_000,
//!     requested_streams: None,
//!     workflow: WorkflowId(1),
//!     cluster: None,
//!     priority: None,
//! }]);
//! assert_eq!(advice[0].streams, 8);
//! ```

#![warn(missing_docs)]

pub mod adaptive;
pub mod advice;
pub mod audit;
pub mod balanced;
pub mod chaos;
pub mod config;
pub mod controller;
pub mod ctx;
pub mod durable;
pub mod failover;
pub mod greedy;
pub mod ledger;
pub mod model;
pub mod priority;
pub mod recovery_rules;
pub mod rules_base;
pub mod service;
pub mod shard;
pub mod storage_rules;
pub mod transport;

pub use adaptive::{ThresholdTuner, TransferObservation};
pub use advice::{
    CleanupAction, CleanupAdvice, CleanupOutcome, TransferAction, TransferAdvice, TransferOutcome,
};
pub use audit::{AuditLog, AuditRecord, PolicyEvent};
pub use chaos::{ChaosProbe, ChaosTransport, ServiceFault, SharedSimClock};
pub use config::{
    AllocationPolicy, BackendProfileCfg, OrderingPolicy, PolicyConfig, StoragePolicy,
};
pub use controller::{ControllerError, PolicyController, DEFAULT_SESSION};
pub use ctx::PolicyCtx;
pub use durable::{
    crc32, decode_frames, encode_frame, read_recovery, CrashPoint, Durability, DurabilityConfig,
    DurableFact, DurableState, Recovered, WalCommand, WalRecord,
};
pub use failover::{FailoverProbe, FailoverTransport};
pub use ledger::{balanced_grant, greedy_grant, greedy_total_for_concurrent_jobs, no_policy_total};
pub use model::{
    BackendDownFact, BackendLoadFact, BackendProfileFact, CleanupId, CleanupSpec, ClusterId,
    GroupId, HealthEvent, HostDownFact, StagedOnFact, SuppressReason, SuspectReplicaFact,
    TransferId, TransferSpec, Url, WorkflowId,
};
pub use priority::{assign_priorities, PriorityAlgorithm, WorkflowGraph};
pub use recovery_rules::install_recovery_rules;
pub use service::{
    HostPairSnapshot, MemorySnapshot, PolicyService, RuleCounters, ServiceStats, SHARD_ID_BITS,
};
pub use shard::{fnv1a64, HashRing, ShardedPolicyService, RING_VNODES};
pub use storage_rules::{estimated_dollars, estimated_seconds, install_storage_rules};
pub use transport::{InProcessTransport, NoPolicyTransport, PolicyTransport, TransportError};
