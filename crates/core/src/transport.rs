//! Transport abstraction between the Pegasus Transfer Tool and the Policy
//! Service.
//!
//! The paper's PTT talks to the service "via HTTP using its RESTful Web
//! Interface". Inside the simulator we don't want real sockets on the hot
//! path, so clients program against [`PolicyTransport`] and choose:
//!
//! * [`InProcessTransport`] — direct calls into a shared
//!   [`PolicyController`] (the simulator models the HTTP round-trip latency
//!   separately, as the paper notes the callout overhead explicitly);
//! * `RestTransport` in `pwm-rest` — real loopback HTTP + JSON;
//! * [`NoPolicyTransport`] — the paper's "default Pegasus with no policy"
//!   comparator: every transfer is approved unchanged with a fixed number
//!   of streams and nothing is tracked.

use crate::advice::{
    CleanupAction, CleanupAdvice, CleanupOutcome, TransferAction, TransferAdvice, TransferOutcome,
};
use crate::controller::{ControllerError, PolicyController};
use crate::model::{CleanupId, CleanupSpec, GroupId, HealthEvent, TransferId, TransferSpec};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors a transport can surface to the transfer tool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The policy service rejected or could not route the request.
    Service(String),
    /// The transport itself failed (connection refused, bad payload...).
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Service(m) => write!(f, "policy service error: {m}"),
            TransportError::Io(m) => write!(f, "policy transport error: {m}"),
        }
    }
}
impl std::error::Error for TransportError {}

impl From<ControllerError> for TransportError {
    fn from(e: ControllerError) -> Self {
        TransportError::Service(e.to_string())
    }
}

/// The client-side interface to the Policy Service.
pub trait PolicyTransport: Send {
    /// Submit a list of transfers; receive the modified, advised list.
    fn evaluate_transfers(
        &mut self,
        batch: Vec<TransferSpec>,
    ) -> Result<Vec<TransferAdvice>, TransportError>;

    /// Report transfer outcomes.
    fn report_transfers(&mut self, outcomes: Vec<TransferOutcome>) -> Result<(), TransportError>;

    /// Submit a list of cleanups; receive the modified list.
    fn evaluate_cleanups(
        &mut self,
        batch: Vec<CleanupSpec>,
    ) -> Result<Vec<CleanupAdvice>, TransportError>;

    /// Report cleanup outcomes.
    fn report_cleanups(&mut self, outcomes: Vec<CleanupOutcome>) -> Result<(), TransportError>;

    /// Report infrastructure health observations (recovery family). The
    /// default discards them, so stateless transports — and the no-policy
    /// comparator, which deliberately ignores health — need no code.
    fn report_health(&mut self, _events: Vec<HealthEvent>) -> Result<(), TransportError> {
        Ok(())
    }
}

/// Direct in-process calls into a [`PolicyController`] session.
pub struct InProcessTransport {
    controller: PolicyController,
    session: String,
}

impl InProcessTransport {
    /// Talk to `session` on `controller`.
    pub fn new(controller: PolicyController, session: impl Into<String>) -> Self {
        InProcessTransport {
            controller,
            session: session.into(),
        }
    }
}

impl PolicyTransport for InProcessTransport {
    fn evaluate_transfers(
        &mut self,
        batch: Vec<TransferSpec>,
    ) -> Result<Vec<TransferAdvice>, TransportError> {
        Ok(self.controller.evaluate_transfers(&self.session, batch)?)
    }

    fn report_transfers(&mut self, outcomes: Vec<TransferOutcome>) -> Result<(), TransportError> {
        Ok(self.controller.report_transfers(&self.session, outcomes)?)
    }

    fn evaluate_cleanups(
        &mut self,
        batch: Vec<CleanupSpec>,
    ) -> Result<Vec<CleanupAdvice>, TransportError> {
        Ok(self.controller.evaluate_cleanups(&self.session, batch)?)
    }

    fn report_cleanups(&mut self, outcomes: Vec<CleanupOutcome>) -> Result<(), TransportError> {
        Ok(self.controller.report_cleanups(&self.session, outcomes)?)
    }

    fn report_health(&mut self, events: Vec<HealthEvent>) -> Result<(), TransportError> {
        Ok(self.controller.report_health(&self.session, events)?)
    }
}

/// The "no policy" comparator: approves everything with a fixed stream
/// count, performs no dedup, keeps no state.
pub struct NoPolicyTransport {
    streams: u32,
    next_id: Arc<AtomicU64>,
}

impl NoPolicyTransport {
    /// Every transfer is approved with `streams` parallel streams (the
    /// paper's no-policy runs used default Pegasus with 4).
    pub fn new(streams: u32) -> Self {
        NoPolicyTransport {
            streams: streams.max(1),
            next_id: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl PolicyTransport for NoPolicyTransport {
    fn evaluate_transfers(
        &mut self,
        batch: Vec<TransferSpec>,
    ) -> Result<Vec<TransferAdvice>, TransportError> {
        Ok(batch
            .into_iter()
            .enumerate()
            .map(|(i, spec)| TransferAdvice {
                id: TransferId(self.next_id.fetch_add(1, Ordering::Relaxed)),
                source: spec.source,
                dest: spec.dest,
                action: TransferAction::Execute,
                streams: spec.requested_streams.unwrap_or(self.streams).max(1),
                group: GroupId(0),
                order: i as u32,
                backend: None,
            })
            .collect())
    }

    fn report_transfers(&mut self, _outcomes: Vec<TransferOutcome>) -> Result<(), TransportError> {
        Ok(())
    }

    fn evaluate_cleanups(
        &mut self,
        batch: Vec<CleanupSpec>,
    ) -> Result<Vec<CleanupAdvice>, TransportError> {
        Ok(batch
            .into_iter()
            .map(|spec| CleanupAdvice {
                id: CleanupId(self.next_id.fetch_add(1, Ordering::Relaxed)),
                file: spec.file,
                action: CleanupAction::Execute,
            })
            .collect())
    }

    fn report_cleanups(&mut self, _outcomes: Vec<CleanupOutcome>) -> Result<(), TransportError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyConfig;
    use crate::model::{Url, WorkflowId};
    use crate::DEFAULT_SESSION;

    fn spec(n: u32) -> TransferSpec {
        TransferSpec {
            source: Url::new("gsiftp", "s", format!("/f{n}")),
            dest: Url::new("file", "d", format!("/f{n}")),
            bytes: 1,
            requested_streams: None,
            workflow: WorkflowId(1),
            cluster: None,
            priority: None,
        }
    }

    #[test]
    fn in_process_transport_round_trips() {
        let controller = PolicyController::new(PolicyConfig::default());
        let mut t = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);
        let advice = t.evaluate_transfers(vec![spec(1)]).unwrap();
        assert_eq!(advice.len(), 1);
        assert!(advice[0].should_execute());
        t.report_transfers(vec![TransferOutcome {
            id: advice[0].id,
            success: true,
        }])
        .unwrap();
        assert_eq!(
            controller
                .stats(DEFAULT_SESSION)
                .unwrap()
                .transfers_completed,
            1
        );
    }

    #[test]
    fn in_process_transport_surfaces_session_errors() {
        let controller = PolicyController::new(PolicyConfig::default());
        let mut t = InProcessTransport::new(controller, "missing");
        let err = t.evaluate_transfers(vec![spec(1)]).unwrap_err();
        assert!(matches!(err, TransportError::Service(_)));
    }

    #[test]
    fn no_policy_approves_everything_with_fixed_streams() {
        let mut t = NoPolicyTransport::new(4);
        // Submit the same transfer twice: no dedup in the comparator.
        let advice = t.evaluate_transfers(vec![spec(1), spec(1)]).unwrap();
        assert_eq!(advice.len(), 2);
        assert!(advice.iter().all(|a| a.should_execute()));
        assert!(advice.iter().all(|a| a.streams == 4));
        // Ids are unique.
        assert_ne!(advice[0].id, advice[1].id);
    }

    #[test]
    fn no_policy_respects_explicit_requests() {
        let mut t = NoPolicyTransport::new(4);
        let mut s = spec(1);
        s.requested_streams = Some(9);
        let advice = t.evaluate_transfers(vec![s]).unwrap();
        assert_eq!(advice[0].streams, 9);
    }

    #[test]
    fn no_policy_cleanups_always_execute() {
        let mut t = NoPolicyTransport::new(4);
        let advice = t
            .evaluate_cleanups(vec![CleanupSpec {
                file: Url::new("file", "d", "/f1"),
                workflow: WorkflowId(1),
            }])
            .unwrap();
        assert!(advice[0].should_execute());
        t.report_cleanups(vec![]).unwrap();
    }
}
