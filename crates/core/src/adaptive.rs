//! Adaptive threshold tuning — the paper's future work, implemented.
//!
//! "We also plan to explore machine learning algorithms to help us learn
//! what data transfer settings (such as the threshold number of streams)
//! are the most beneficial for the applications. Based on our current
//! results, we assume that these will depend on available host resources
//! and on the network performance between computing and data storage
//! sites."
//!
//! [`ThresholdTuner`] is an online learner for the greedy threshold of one
//! host pair. It treats tuning as a stochastic bandit over a geometric grid
//! of candidate thresholds: each completed transfer reports its achieved
//! goodput; the tuner credits the sample to the threshold in force,
//! maintains an exponentially weighted estimate of *aggregate* goodput per
//! candidate (per-transfer goodput × concurrent transfers), and follows an
//! ε-greedy policy with optimistic initialization so unexplored thresholds
//! get tried early.
//!
//! The tuner is deliberately simple and fully deterministic given its seed —
//! the point is the *architecture* (the Policy Service can close the loop
//! from observed transfer performance back to its own configuration), not a
//! particular learning algorithm.

use std::collections::BTreeMap;

/// One observation fed back to the tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferObservation {
    /// Achieved goodput of the completed transfer, bytes/sec.
    pub goodput: f64,
    /// Transfers that were concurrently in progress on the host pair.
    pub concurrent: u32,
}

/// Online ε-greedy tuner for one host pair's greedy threshold.
#[derive(Debug, Clone)]
pub struct ThresholdTuner {
    /// Candidate thresholds, ascending.
    candidates: Vec<u32>,
    /// EWMA of estimated aggregate goodput per candidate (None = untried).
    estimates: Vec<Option<f64>>,
    /// Samples credited per candidate.
    samples: Vec<u64>,
    active_ix: usize,
    epsilon: f64,
    alpha: f64,
    rng_state: u64,
    min_samples_per_round: u64,
    round_samples: u64,
}

impl ThresholdTuner {
    /// A tuner over the given candidate thresholds.
    ///
    /// # Panics
    /// Panics if `candidates` is empty.
    pub fn new(mut candidates: Vec<u32>, seed: u64) -> Self {
        assert!(!candidates.is_empty(), "tuner needs candidates");
        candidates.sort_unstable();
        candidates.dedup();
        let n = candidates.len();
        ThresholdTuner {
            candidates,
            estimates: vec![None; n],
            samples: vec![0; n],
            active_ix: 0,
            epsilon: 0.1,
            alpha: 0.15,
            rng_state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1),
            min_samples_per_round: 8,
            round_samples: 0,
        }
    }

    /// A default geometric candidate grid bracketing the paper's
    /// experimental range (25..400 streams).
    pub fn default_grid(seed: u64) -> Self {
        Self::new(vec![25, 50, 100, 200, 400], seed)
    }

    /// Exploration probability (default 0.1).
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon.clamp(0.0, 1.0);
        self
    }

    /// Minimum observations before the tuner may switch thresholds
    /// (a switch invalidates in-flight allocations, so don't thrash).
    pub fn with_min_samples(mut self, n: u64) -> Self {
        self.min_samples_per_round = n.max(1);
        self
    }

    /// The threshold currently recommended for the host pair.
    pub fn active_threshold(&self) -> u32 {
        self.candidates[self.active_ix]
    }

    /// Feed one completed transfer's result; returns the (possibly new)
    /// active threshold.
    pub fn observe(&mut self, obs: TransferObservation) -> u32 {
        // Reward: estimated aggregate goodput achieved under this threshold.
        let reward = obs.goodput * obs.concurrent.max(1) as f64;
        let slot = &mut self.estimates[self.active_ix];
        *slot = Some(match *slot {
            None => reward,
            Some(prev) => prev + self.alpha * (reward - prev),
        });
        self.samples[self.active_ix] += 1;
        self.round_samples += 1;

        if self.round_samples >= self.min_samples_per_round {
            self.round_samples = 0;
            self.active_ix = self.pick_next();
        }
        self.active_threshold()
    }

    /// ε-greedy with optimistic initialization: untried candidates win.
    fn pick_next(&mut self) -> usize {
        if let Some(untried) = self.estimates.iter().position(|e| e.is_none()) {
            return untried;
        }
        if self.next_unit() < self.epsilon {
            return (self.next_u64() % self.candidates.len() as u64) as usize;
        }
        self.estimates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.unwrap_or(0.0)
                    .partial_cmp(&b.unwrap_or(0.0))
                    .expect("rewards are finite")
            })
            .map(|(i, _)| i)
            .expect("non-empty candidates")
    }

    /// Number of observations credited to each candidate.
    pub fn sample_counts(&self) -> BTreeMap<u32, u64> {
        self.candidates
            .iter()
            .zip(&self.samples)
            .map(|(&c, &s)| (c, s))
            .collect()
    }

    /// Current aggregate-goodput estimate per candidate (bytes/sec).
    pub fn estimates(&self) -> BTreeMap<u32, Option<f64>> {
        self.candidates
            .iter()
            .zip(&self.estimates)
            .map(|(&c, &e)| (c, e))
            .collect()
    }

    /// The candidate the tuner currently believes best (ignoring
    /// exploration).
    pub fn best_threshold(&self) -> u32 {
        self.estimates
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                a.unwrap_or(f64::NEG_INFINITY)
                    .partial_cmp(&b.unwrap_or(f64::NEG_INFINITY))
                    .expect("rewards are finite")
            })
            .map(|(i, _)| self.candidates[i])
            .expect("non-empty candidates")
    }

    // xorshift64* — deterministic, no external RNG dependency needed here.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic environment with a known best threshold: aggregate
    /// goodput peaks at `best` and falls off on both sides.
    fn environment_reward(threshold: u32, best: u32) -> TransferObservation {
        let x = threshold as f64 / best as f64;
        // Peak 1.0 at x=1; penalize under- and over-subscription.
        let agg = if x < 1.0 { x } else { 1.0 / x / x };
        TransferObservation {
            goodput: agg * 3.5e6 / 20.0,
            concurrent: 20,
        }
    }

    #[test]
    #[should_panic(expected = "needs candidates")]
    fn empty_candidates_rejected() {
        ThresholdTuner::new(vec![], 1);
    }

    #[test]
    fn starts_with_smallest_candidate() {
        let t = ThresholdTuner::default_grid(1);
        assert_eq!(t.active_threshold(), 25);
    }

    #[test]
    fn tries_every_candidate_before_committing() {
        let mut t = ThresholdTuner::default_grid(1).with_min_samples(1);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..5 {
            seen.insert(t.active_threshold());
            let obs = environment_reward(t.active_threshold(), 50);
            t.observe(obs);
        }
        assert_eq!(seen.len(), 5, "all candidates explored: {seen:?}");
    }

    #[test]
    fn converges_to_the_best_threshold() {
        let mut t = ThresholdTuner::default_grid(7)
            .with_min_samples(4)
            .with_epsilon(0.05);
        for _ in 0..600 {
            let obs = environment_reward(t.active_threshold(), 50);
            t.observe(obs);
        }
        assert_eq!(t.best_threshold(), 50, "estimates: {:?}", t.estimates());
        // The best arm received the most samples.
        let counts = t.sample_counts();
        let best_count = counts[&50];
        for (&c, &n) in &counts {
            if c != 50 {
                assert!(best_count >= n, "arm {c} sampled {n} ≥ best {best_count}");
            }
        }
    }

    #[test]
    fn converges_when_the_peak_moves() {
        // Same tuner, environment where 200 is optimal.
        let mut t = ThresholdTuner::default_grid(3)
            .with_min_samples(4)
            .with_epsilon(0.05);
        for _ in 0..600 {
            let obs = environment_reward(t.active_threshold(), 200);
            t.observe(obs);
        }
        assert_eq!(t.best_threshold(), 200);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut t = ThresholdTuner::default_grid(seed).with_min_samples(2);
            for _ in 0..100 {
                let obs = environment_reward(t.active_threshold(), 100);
                t.observe(obs);
            }
            (t.active_threshold(), t.sample_counts())
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn min_samples_prevents_thrash() {
        let mut t = ThresholdTuner::default_grid(1).with_min_samples(10);
        let first = t.active_threshold();
        for _ in 0..9 {
            t.observe(environment_reward(first, 50));
            assert_eq!(t.active_threshold(), first, "switched before 10 samples");
        }
        t.observe(environment_reward(first, 50));
        // Now it may (and with untried arms, must) switch.
        assert_ne!(t.active_threshold(), first);
    }

    #[test]
    fn candidates_deduped_and_sorted() {
        let t = ThresholdTuner::new(vec![200, 50, 50, 100], 1);
        let grid: Vec<u32> = t.sample_counts().keys().copied().collect();
        assert_eq!(grid, vec![50, 100, 200]);
    }
}
