//! Stream-allocation arithmetic.
//!
//! The grant functions here are the semantic core of the greedy (Table II)
//! and balanced (Table III) policies, pinned down by the paper's worked
//! example for Table IV: *"With a greedy threshold of 50 streams and a
//! default allocation of 8 streams, the first 6 staging jobs will receive an
//! allocation of 8 streams (for a total of 48 streams); the next job will
//! receive 2 streams (reaching the threshold of 50 streams); and the
//! remaining 13 data staging jobs will receive 1 stream, for a total of 63
//! allocated streams."*

/// Streams granted by the greedy policy to a transfer requesting `requested`
/// streams when `allocated` are already charged against `threshold`:
///
/// * full request while it fits under the threshold,
/// * the remaining headroom when the request would cross it,
/// * exactly one stream once the threshold is reached or exceeded
///   ("additional transfers are allowed to proceed with a smaller number of
///   streams to avoid starvation").
pub fn greedy_grant(allocated: u32, requested: u32, threshold: u32) -> u32 {
    let requested = requested.max(1);
    if allocated >= threshold {
        1
    } else {
        let headroom = threshold - allocated;
        requested.min(headroom)
    }
}

/// Streams granted by the balanced policy: the same shape as the greedy
/// grant but against the requesting cluster's reserved share.
pub fn balanced_grant(cluster_allocated: u32, requested: u32, cluster_share: u32) -> u32 {
    greedy_grant(cluster_allocated, requested, cluster_share)
}

/// Simulate `jobs` concurrent transfers each requesting `default` streams
/// under a greedy `threshold`, with no completions in between; returns the
/// total streams allocated. This is exactly the quantity of Table IV.
pub fn greedy_total_for_concurrent_jobs(jobs: u32, default: u32, threshold: u32) -> u32 {
    let mut allocated = 0u32;
    for _ in 0..jobs {
        allocated += greedy_grant(allocated, default, threshold);
    }
    allocated
}

/// The no-policy comparator of Table IV: every job gets the default.
pub fn no_policy_total(jobs: u32, default: u32) -> u32 {
    jobs * default.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_below_threshold_is_full_request() {
        assert_eq!(greedy_grant(0, 8, 50), 8);
        assert_eq!(greedy_grant(40, 8, 50), 8);
    }

    #[test]
    fn grant_crossing_threshold_is_clipped() {
        // 48 allocated, 8 requested, threshold 50 → grant 2 (paper's worked
        // example).
        assert_eq!(greedy_grant(48, 8, 50), 2);
    }

    #[test]
    fn grant_at_or_over_threshold_is_one() {
        assert_eq!(greedy_grant(50, 8, 50), 1);
        assert_eq!(greedy_grant(63, 8, 50), 1);
    }

    #[test]
    fn zero_request_coerces_to_one() {
        assert_eq!(greedy_grant(0, 0, 50), 1);
    }

    #[test]
    fn paper_worked_example_8_streams_threshold_50() {
        // 6 jobs × 8, then 2, then 13 × 1 = 63.
        let mut allocated = 0;
        let mut grants = Vec::new();
        for _ in 0..20 {
            let g = greedy_grant(allocated, 8, 50);
            allocated += g;
            grants.push(g);
        }
        assert_eq!(&grants[..6], &[8, 8, 8, 8, 8, 8]);
        assert_eq!(grants[6], 2);
        assert!(grants[7..].iter().all(|&g| g == 1));
        assert_eq!(allocated, 63);
    }

    #[test]
    fn table_iv_threshold_50() {
        for (default, expected) in [(4, 57), (6, 61), (8, 63), (10, 65), (12, 65)] {
            assert_eq!(
                greedy_total_for_concurrent_jobs(20, default, 50),
                expected,
                "default {default}"
            );
        }
    }

    #[test]
    fn table_iv_threshold_100() {
        for (default, expected) in [(4, 80), (6, 103), (8, 107), (10, 110), (12, 111)] {
            assert_eq!(
                greedy_total_for_concurrent_jobs(20, default, 100),
                expected,
                "default {default}"
            );
        }
    }

    #[test]
    fn table_iv_threshold_200() {
        for (default, expected) in [(4, 80), (6, 120), (8, 160), (10, 200), (12, 203)] {
            assert_eq!(
                greedy_total_for_concurrent_jobs(20, default, 200),
                expected,
                "default {default}"
            );
        }
    }

    #[test]
    fn table_iv_no_policy_row() {
        for default in [4, 6, 8, 10, 12] {
            assert_eq!(no_policy_total(20, default), 20 * default);
        }
        // The paper's no-policy cell: 20 jobs × 4 default streams = 80.
        assert_eq!(no_policy_total(20, 4), 80);
    }

    #[test]
    fn balanced_grant_uses_cluster_share() {
        // Share 12 (threshold 50 / 4 clusters, floored): 1 × 8, then 4, then 1s.
        assert_eq!(balanced_grant(0, 8, 12), 8);
        assert_eq!(balanced_grant(8, 8, 12), 4);
        assert_eq!(balanced_grant(12, 8, 12), 1);
    }

    #[test]
    fn releases_reopen_headroom() {
        // Allocate to the threshold, release one transfer's grant, and the
        // next grant fits again — "as transfers complete and free up streams,
        // those streams are allocated to new transfers".
        let mut allocated = 0;
        for _ in 0..7 {
            allocated += greedy_grant(allocated, 8, 50);
        }
        assert_eq!(allocated, 50);
        allocated -= 8; // one 8-stream transfer completes
        assert_eq!(greedy_grant(allocated, 8, 50), 8);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The ledger never exceeds the threshold... except by the
        /// starvation-avoidance single stream once saturated, so total is
        /// bounded by threshold + (jobs that arrived after saturation).
        #[test]
        fn grant_never_exceeds_headroom_before_saturation(
            allocated in 0u32..200,
            requested in 0u32..64,
            threshold in 1u32..300,
        ) {
            let g = greedy_grant(allocated, requested, threshold);
            prop_assert!(g >= 1, "no starvation: every transfer gets a stream");
            if allocated < threshold {
                prop_assert!(allocated + g <= threshold.max(allocated + 1));
                prop_assert!(g <= requested.max(1));
            } else {
                prop_assert_eq!(g, 1);
            }
        }

        /// Sequential arrivals: the running total is ≤ threshold until
        /// saturation, after which it grows by exactly 1 per arrival.
        #[test]
        fn sequence_is_threshold_then_linear(
            jobs in 1u32..64,
            default in 1u32..16,
            threshold in 1u32..300,
        ) {
            let mut allocated = 0u32;
            let mut post_saturation = 0u32;
            for _ in 0..jobs {
                if allocated >= threshold {
                    post_saturation += 1;
                }
                allocated += greedy_grant(allocated, default, threshold);
            }
            prop_assert!(allocated <= threshold + post_saturation);
            let total = greedy_total_for_concurrent_jobs(jobs, default, threshold);
            prop_assert_eq!(total, allocated);
        }

        /// Monotonicity: raising the threshold never lowers the total.
        #[test]
        fn total_monotone_in_threshold(
            jobs in 1u32..40,
            default in 1u32..16,
            t1 in 1u32..200,
            extra in 0u32..100,
        ) {
            let low = greedy_total_for_concurrent_jobs(jobs, default, t1);
            let high = greedy_total_for_concurrent_jobs(jobs, default, t1 + extra);
            prop_assert!(high >= low);
        }

        /// The no-policy total dominates the greedy total whenever the
        /// threshold is at most jobs × default... not in general (greedy adds
        /// +1s past saturation); but the greedy total never exceeds
        /// max(no_policy, threshold + jobs).
        #[test]
        fn greedy_total_bounded(
            jobs in 1u32..40,
            default in 1u32..16,
            threshold in 1u32..300,
        ) {
            let g = greedy_total_for_concurrent_jobs(jobs, default, threshold);
            let np = no_policy_total(jobs, default);
            prop_assert!(g <= np.max(threshold + jobs));
        }
    }
}
