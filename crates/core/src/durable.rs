//! Crash-consistent persistence for policy memory.
//!
//! The durability layer is a classic redo scheme. Every *input* that
//! mutates a session — transfer/cleanup evaluation batches, outcome
//! reports, config changes — is appended to a write-ahead log before it is
//! applied, and a full [`DurableState`] snapshot is written every
//! `snapshot_every` appends, after which the log is compacted. Because the
//! rule engine is deterministic, replaying the surviving log suffix over
//! the last snapshot reproduces the pre-crash policy memory exactly:
//! `PartialEq`-identical facts, assigned ids, allocation ledgers, stats,
//! and audit numbering.
//!
//! On-disk format (dependency-free, like `pwm-obs`'s JSON module): frames
//! of `[len: u32 LE][crc32: u32 LE][payload]` where the payload is the
//! JSON encoding of a [`WalRecord`] (in `wal.log`) or a [`DurableState`]
//! (in `snapshot.bin`, written via `snapshot.tmp` + rename). Recovery
//! reads the longest valid frame prefix and discards a torn or corrupt
//! tail — the torn-tail rule: a crash may lose the last in-flight command,
//! but never corrupts the recovered state and never panics on garbage.
//!
//! Crash injection is deterministic: a [`CrashPoint`] (from `pwm-sim`)
//! freezes the sink at a seeded place in the append sequence — the
//! simulated process is dead, so all later writes are silently dropped
//! while the in-memory service (the "ghost" of the doomed process)
//! continues.

use crate::advice::{CleanupOutcome, TransferOutcome};
use crate::audit::AuditRecord;
use crate::config::PolicyConfig;
use crate::model::{
    BackendDownFact, BackendLoadFact, CleanupFact, CleanupSpec, ClusterAllocFact, HealthEvent,
    HostDownFact, HostPairFact, ResourceFact, StagedOnFact, SuspectReplicaFact, TransferFact,
    TransferSpec,
};
use crate::service::{MemorySnapshot, ServiceStats};
pub use pwm_sim::CrashPoint;
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Log file name inside a durability directory.
pub const WAL_FILE: &str = "wal.log";
/// Snapshot file name inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// Temporary snapshot name; renamed over [`SNAPSHOT_FILE`] once complete.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Upper bound on one frame's payload. A torn length field read as garbage
/// would otherwise ask the reader to allocate gigabytes; anything larger
/// than this is treated as corruption.
pub const MAX_FRAME: usize = 64 << 20;

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven and built at
/// compile time so the codec stays dependency-free.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut n = 0;
    while n < 256 {
        let mut c = n as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[n] = c;
        n += 1;
    }
    table
}

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Wrap `payload` in a `[len][crc32][payload]` frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decode the longest valid frame prefix of `bytes`.
///
/// Returns the payloads in order plus the byte length of the valid prefix;
/// decoding stops (without error) at the first short header, impossible
/// length, truncated payload, or checksum mismatch. This is the torn-tail
/// rule as a pure function, so it can be property-tested without touching
/// the filesystem.
pub fn decode_frames(bytes: &[u8]) -> (Vec<&[u8]>, usize) {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + 8) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if len > MAX_FRAME {
            break;
        }
        let Some(payload) = bytes.get(pos + 8..pos + 8 + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        payloads.push(payload);
        pos += 8 + len;
    }
    (payloads, pos)
}

/// One logged mutation: the service's input, not its rule firings. Replay
/// feeds these back through the deterministic engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WalCommand {
    /// A transfer-request batch was evaluated.
    EvaluateTransfers(Vec<TransferSpec>),
    /// Several pipelined transfer-request groups were evaluated in one
    /// rules pass (the event loop's batched advice path). Logged as a
    /// single command so replay reproduces the same single `fire_all`
    /// and therefore identical engine statistics.
    EvaluateTransferGroups(Vec<Vec<TransferSpec>>),
    /// Transfer outcomes were reported.
    ReportTransfers(Vec<TransferOutcome>),
    /// A cleanup-request batch was evaluated.
    EvaluateCleanups(Vec<CleanupSpec>),
    /// Cleanup outcomes were reported.
    ReportCleanups(Vec<CleanupOutcome>),
    /// The session configuration was replaced.
    SetConfig(PolicyConfig),
    /// Infrastructure health observations were reported (recovery family).
    ReportHealth(Vec<HealthEvent>),
}

/// A sequence-numbered log record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalRecord {
    /// Monotone sequence number, 1-based; records at or below a snapshot's
    /// `applied_seq` are already folded into that snapshot.
    pub seq: u64,
    /// The logged command.
    pub cmd: WalCommand,
}

/// One fact of policy memory, tagged by type. Snapshots store all facts as
/// a single interleaved list in global insertion (handle) order, because
/// working-memory iteration order — which advice ordering observes — is
/// insertion order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DurableFact {
    /// A transfer lifecycle fact.
    Transfer(TransferFact),
    /// A staged-file resource fact.
    Resource(ResourceFact),
    /// A cleanup lifecycle fact.
    Cleanup(CleanupFact),
    /// A host-pair allocation ledger fact.
    HostPair(HostPairFact),
    /// A per-cluster allocation ledger fact (balanced policy).
    ClusterAlloc(ClusterAllocFact),
    /// A file-landed-on-backend fact (storage policy family).
    StagedOn(StagedOnFact),
    /// A per-backend allocation ledger fact (storage policy family).
    BackendLoad(BackendLoadFact),
    /// A down-host fact (recovery family).
    HostDown(HostDownFact),
    /// A down-backend fact (recovery family).
    BackendDown(BackendDownFact),
    /// A suspect-replica fact (recovery family).
    SuspectReplica(SuspectReplicaFact),
}

/// The complete serializable state of one policy session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DurableState {
    /// Highest log sequence number whose effects this state includes
    /// (0 = none; log replay starts at `applied_seq + 1`).
    pub applied_seq: u64,
    /// Session configuration in force.
    pub config: PolicyConfig,
    /// Next transfer id to assign.
    pub next_transfer: u64,
    /// Next cleanup id to assign.
    pub next_cleanup: u64,
    /// Next group id to mint.
    pub next_group: u64,
    /// Monitoring counters.
    pub stats: ServiceStats,
    /// Audit-ring capacity.
    pub audit_capacity: usize,
    /// Audit sequence counter (so numbering resumes, not restarts).
    pub audit_next_seq: u64,
    /// Retained audit records, oldest first.
    pub audit_records: Vec<AuditRecord>,
    /// All facts, in global insertion order.
    pub facts: Vec<DurableFact>,
    /// Monitoring summary at snapshot time; recovery re-derives it from
    /// the restored facts as an integrity cross-check.
    pub summary: MemorySnapshot,
}

/// Where and how a session persists itself.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal.log` and `snapshot.bin` (created on enable).
    pub dir: PathBuf,
    /// Appends between snapshots (log compaction period).
    pub snapshot_every: u64,
    /// Deterministic crash injection for tests and the chaos harness.
    pub crash: Option<CrashPoint>,
}

impl DurabilityConfig {
    /// Durability in `dir` with the default compaction period.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            snapshot_every: 64,
            crash: None,
        }
    }

    /// Builder-style: snapshot (and compact the log) every `n` appends.
    pub fn with_snapshot_every(mut self, n: u64) -> Self {
        self.snapshot_every = n.max(1);
        self
    }

    /// Builder-style: inject a deterministic crash point.
    pub fn with_crash(mut self, point: CrashPoint) -> Self {
        self.crash = Some(point);
        self
    }
}

/// The append/snapshot sink owned by a durable [`crate::PolicyService`].
///
/// After a simulated crash point fires the sink freezes: every later write
/// is silently dropped (the process is "dead"), while the in-memory
/// service continues as the reference for what was lost.
pub struct Durability {
    cfg: DurabilityConfig,
    wal: File,
    next_seq: u64,
    appends_total: u64,
    since_snapshot: u64,
    snapshot_pending: bool,
    crashed: bool,
}

impl Durability {
    /// Open the sink in `cfg.dir`, writing `state` as the base snapshot
    /// and starting an empty log — so a recovery directory always holds a
    /// snapshot, even if the process dies before the first append.
    pub fn create(cfg: DurabilityConfig, state: &DurableState) -> io::Result<Durability> {
        fs::create_dir_all(&cfg.dir)?;
        let wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(cfg.dir.join(WAL_FILE))?;
        let mut d = Durability {
            cfg,
            wal,
            next_seq: state.applied_seq + 1,
            appends_total: 0,
            since_snapshot: 0,
            snapshot_pending: false,
            crashed: false,
        };
        d.write_snapshot_inner(state, false)?;
        Ok(d)
    }

    /// Sequence number the next [`WalRecord`] must carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// True once an injected crash point has fired (writes are frozen).
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// True when a snapshot is due after the current command's effects
    /// have been applied.
    pub fn snapshot_pending(&self) -> bool {
        !self.crashed && self.snapshot_pending
    }

    /// Append one record to the log (write-ahead: callers log *before*
    /// applying). Ok after a simulated crash — the write is just dropped.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        if self.crashed {
            return Ok(());
        }
        let payload = serde_json::to_vec(record).map_err(to_io)?;
        let frame = encode_frame(&payload);
        let n = self.appends_total + 1;
        if let Some(CrashPoint::TornAppend { append, keep }) = self.cfg.crash {
            if append == n {
                // Only a prefix of the frame reaches the disk.
                let keep = keep.min(frame.len().saturating_sub(1));
                self.wal.write_all(&frame[..keep])?;
                self.wal.sync_all()?;
                self.crashed = true;
                return Ok(());
            }
        }
        self.wal.write_all(&frame)?;
        self.wal.sync_all()?;
        self.appends_total = n;
        self.next_seq = record.seq + 1;
        self.since_snapshot += 1;
        match self.cfg.crash {
            Some(CrashPoint::AfterAppend(at)) if at == n => self.crashed = true,
            // Force the follow-up snapshot so the mid-snapshot tear fires
            // deterministically regardless of the compaction period.
            Some(CrashPoint::MidSnapshot { append }) if append == n => self.snapshot_pending = true,
            _ => {}
        }
        if self.since_snapshot >= self.cfg.snapshot_every {
            self.snapshot_pending = true;
        }
        Ok(())
    }

    /// Write `state` as the new base snapshot and compact the log:
    /// `snapshot.tmp` → fsync → rename over `snapshot.bin` → truncate
    /// `wal.log`. A crash between rename and truncate is tolerated because
    /// replay skips records with `seq <= applied_seq`.
    pub fn write_snapshot(&mut self, state: &DurableState) -> io::Result<()> {
        if self.crashed {
            return Ok(());
        }
        self.snapshot_pending = false;
        let tear = matches!(
            self.cfg.crash,
            Some(CrashPoint::MidSnapshot { append }) if append <= self.appends_total
        );
        self.write_snapshot_inner(state, tear)
    }

    fn write_snapshot_inner(&mut self, state: &DurableState, tear: bool) -> io::Result<()> {
        let payload = serde_json::to_vec(state).map_err(to_io)?;
        let frame = encode_frame(&payload);
        let tmp = self.cfg.dir.join(SNAPSHOT_TMP);
        let mut f = File::create(&tmp)?;
        f.write_all(&frame)?;
        f.sync_all()?;
        if tear {
            // Simulated death between writing the temporary file and the
            // rename: the old snapshot + uncompacted log stay authoritative.
            self.crashed = true;
            return Ok(());
        }
        fs::rename(&tmp, self.cfg.dir.join(SNAPSHOT_FILE))?;
        self.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.cfg.dir.join(WAL_FILE))?;
        self.since_snapshot = 0;
        Ok(())
    }
}

/// What [`read_recovery`] found in a durability directory.
#[derive(Debug)]
pub struct Recovered {
    /// The last durable snapshot.
    pub state: DurableState,
    /// Log records to replay (`seq > state.applied_seq`), oldest first.
    pub records: Vec<WalRecord>,
    /// Bytes of torn/corrupt log tail that were discarded.
    pub discarded_bytes: usize,
}

/// Read a durability directory: the snapshot plus the surviving log
/// suffix. Errors only on a missing/unreadable snapshot or an I/O failure;
/// log corruption truncates, never fails.
pub fn read_recovery(dir: &Path) -> io::Result<Recovered> {
    let snap_bytes = fs::read(dir.join(SNAPSHOT_FILE))?;
    let (snap_frames, _) = decode_frames(&snap_bytes);
    let Some(snap_payload) = snap_frames.first() else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "snapshot file holds no valid frame",
        ));
    };
    let state: DurableState = serde_json::from_slice(snap_payload).map_err(to_io)?;

    let wal_bytes = match fs::read(dir.join(WAL_FILE)) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let (frames, valid_len) = decode_frames(&wal_bytes);
    let mut records = Vec::new();
    for payload in frames {
        // A checksummed frame that fails to decode is treated like a torn
        // tail: keep the prefix, drop the rest.
        let Ok(record) = serde_json::from_slice::<WalRecord>(payload) else {
            break;
        };
        if record.seq > state.applied_seq {
            records.push(record);
        }
    }
    Ok(Recovered {
        state,
        records,
        discarded_bytes: wal_bytes.len() - valid_len,
    })
}

fn to_io(e: serde_json::Error) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Unique scratch directory for crate tests, without the tempfile crate.
#[cfg(test)]
pub(crate) fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pwm-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).unwrap();
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Url, WorkflowId};

    fn record(seq: u64) -> WalRecord {
        WalRecord {
            seq,
            cmd: WalCommand::EvaluateTransfers(vec![TransferSpec {
                source: Url::new("gsiftp", "s", format!("/f{seq}")),
                dest: Url::new("file", "d", format!("/f{seq}")),
                bytes: seq * 100,
                requested_streams: None,
                workflow: WorkflowId(1),
                cluster: None,
                priority: None,
            }]),
        }
    }

    fn empty_state(applied_seq: u64) -> DurableState {
        DurableState {
            applied_seq,
            config: PolicyConfig::default(),
            next_transfer: 0,
            next_cleanup: 0,
            next_group: 0,
            stats: ServiceStats::default(),
            audit_capacity: 16,
            audit_next_seq: 0,
            audit_records: Vec::new(),
            facts: Vec::new(),
            summary: MemorySnapshot {
                in_progress_transfers: 0,
                staged_files: 0,
                staging_files: 0,
                in_progress_cleanups: 0,
                host_pairs: Vec::new(),
            },
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip() {
        let payloads: Vec<&[u8]> = vec![b"alpha", b"", b"gamma-gamma"];
        let mut bytes = Vec::new();
        for p in &payloads {
            bytes.extend_from_slice(&encode_frame(p));
        }
        let (decoded, valid) = decode_frames(&bytes);
        assert_eq!(decoded, payloads);
        assert_eq!(valid, bytes.len());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let mut bytes = encode_frame(b"kept");
        let full = encode_frame(b"torn-away-record");
        let keep_prefix = bytes.len();
        bytes.extend_from_slice(&full[..full.len() - 3]);
        let (decoded, valid) = decode_frames(&bytes);
        assert_eq!(decoded, vec![b"kept".as_slice()]);
        assert_eq!(valid, keep_prefix);
    }

    #[test]
    fn corrupt_byte_stops_at_the_bad_frame() {
        let mut bytes = encode_frame(b"good");
        let mut bad = encode_frame(b"flipped");
        *bad.last_mut().unwrap() ^= 0x01;
        bytes.extend_from_slice(&bad);
        let (decoded, _) = decode_frames(&bytes);
        assert_eq!(decoded, vec![b"good".as_slice()]);
    }

    #[test]
    fn absurd_length_field_is_corruption() {
        let mut bytes = vec![0xFF; 8]; // length ≈ 4 GiB
        bytes.extend_from_slice(&[0u8; 64]);
        let (decoded, valid) = decode_frames(&bytes);
        assert!(decoded.is_empty());
        assert_eq!(valid, 0);
    }

    #[test]
    fn wal_record_json_roundtrip() {
        let r = record(3);
        let json = serde_json::to_vec(&r).unwrap();
        let back: WalRecord = serde_json::from_slice(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn append_then_recover_returns_records_after_applied_seq() {
        let dir = scratch_dir("wal");
        let mut d = Durability::create(DurabilityConfig::new(&dir), &empty_state(0)).unwrap();
        for seq in 1..=3 {
            assert_eq!(d.next_seq(), seq);
            d.append(&record(seq)).unwrap();
        }
        let rec = read_recovery(&dir).unwrap();
        assert_eq!(rec.state, empty_state(0));
        assert_eq!(rec.records, vec![record(1), record(2), record(3)]);
        assert_eq!(rec.discarded_bytes, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_compacts_the_log() {
        let dir = scratch_dir("compact");
        let mut d = Durability::create(
            DurabilityConfig::new(&dir).with_snapshot_every(2),
            &empty_state(0),
        )
        .unwrap();
        d.append(&record(1)).unwrap();
        assert!(!d.snapshot_pending());
        d.append(&record(2)).unwrap();
        assert!(d.snapshot_pending());
        d.write_snapshot(&empty_state(2)).unwrap();
        d.append(&record(3)).unwrap();
        let rec = read_recovery(&dir).unwrap();
        assert_eq!(rec.state.applied_seq, 2);
        assert_eq!(rec.records, vec![record(3)], "compacted records skipped");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn after_append_crash_freezes_the_sink() {
        let dir = scratch_dir("crash-after");
        let mut d = Durability::create(
            DurabilityConfig::new(&dir).with_crash(CrashPoint::AfterAppend(2)),
            &empty_state(0),
        )
        .unwrap();
        for seq in 1..=5 {
            d.append(&record(seq)).unwrap();
        }
        assert!(d.crashed());
        let rec = read_recovery(&dir).unwrap();
        assert_eq!(rec.records, vec![record(1), record(2)]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_append_crash_leaves_recoverable_prefix() {
        let dir = scratch_dir("crash-torn");
        let mut d = Durability::create(
            DurabilityConfig::new(&dir).with_crash(CrashPoint::TornAppend { append: 3, keep: 9 }),
            &empty_state(0),
        )
        .unwrap();
        for seq in 1..=4 {
            d.append(&record(seq)).unwrap();
        }
        let rec = read_recovery(&dir).unwrap();
        assert_eq!(rec.records, vec![record(1), record(2)]);
        assert!(rec.discarded_bytes > 0, "the torn bytes were discarded");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mid_snapshot_crash_keeps_old_snapshot_and_full_log() {
        let dir = scratch_dir("crash-snap");
        let mut d = Durability::create(
            DurabilityConfig::new(&dir)
                .with_snapshot_every(1000)
                .with_crash(CrashPoint::MidSnapshot { append: 2 }),
            &empty_state(0),
        )
        .unwrap();
        d.append(&record(1)).unwrap();
        d.append(&record(2)).unwrap();
        assert!(d.snapshot_pending(), "mid-snapshot point forces a snapshot");
        d.write_snapshot(&empty_state(2)).unwrap();
        assert!(d.crashed());
        // The tmp file exists but the live snapshot is still the base one.
        assert!(dir.join(SNAPSHOT_TMP).exists());
        let rec = read_recovery(&dir).unwrap();
        assert_eq!(rec.state.applied_seq, 0, "old snapshot still authoritative");
        assert_eq!(rec.records, vec![record(1), record(2)]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_snapshot_errors_cleanly() {
        let dir = scratch_dir("nosnap");
        assert!(read_recovery(&dir).is_err());
        fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Round-trip: any payload list decodes back exactly.
        #[test]
        fn frames_roundtrip(payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 0..12)) {
            let mut bytes = Vec::new();
            for p in &payloads {
                bytes.extend_from_slice(&encode_frame(p));
            }
            let (decoded, valid) = decode_frames(&bytes);
            prop_assert_eq!(valid, bytes.len());
            prop_assert_eq!(decoded.len(), payloads.len());
            for (d, p) in decoded.iter().zip(&payloads) {
                prop_assert_eq!(*d, p.as_slice());
            }
        }

        /// Truncating the byte stream anywhere yields a prefix of the
        /// original payload list — never an error, never a panic.
        #[test]
        fn random_truncation_yields_a_prefix(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..64), 1..8),
            cut_frac in 0.0f64..1.0,
        ) {
            let mut bytes = Vec::new();
            for p in &payloads {
                bytes.extend_from_slice(&encode_frame(p));
            }
            let cut = (bytes.len() as f64 * cut_frac) as usize;
            let (decoded, valid) = decode_frames(&bytes[..cut]);
            prop_assert!(valid <= cut);
            prop_assert!(decoded.len() <= payloads.len());
            for (d, p) in decoded.iter().zip(&payloads) {
                prop_assert_eq!(*d, p.as_slice());
            }
        }

        /// Flipping one byte anywhere still yields a prefix of the
        /// original list up to the damaged frame (frames after a corrupt
        /// one are dropped by the torn-tail rule, never misread).
        #[test]
        fn random_corruption_never_panics_and_keeps_prefix_consistency(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..64), 1..8),
            flip_at_frac in 0.0f64..1.0,
            flip_bits in 1u8..255,
        ) {
            let mut bytes = Vec::new();
            for p in &payloads {
                bytes.extend_from_slice(&encode_frame(p));
            }
            let flip_at = ((bytes.len() - 1) as f64 * flip_at_frac) as usize;
            bytes[flip_at] ^= flip_bits;
            let (decoded, _) = decode_frames(&bytes);
            // Any frame decoded before the damage must match the original
            // (CRC makes silently-wrong payloads vanishingly improbable;
            // structurally the prefix property is exact).
            for (d, p) in decoded.iter().zip(&payloads) {
                prop_assert_eq!(*d, p.as_slice());
            }
            prop_assert!(decoded.len() <= payloads.len());
        }

        /// The decoder never panics on arbitrary garbage.
        #[test]
        fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
            let (decoded, valid) = decode_frames(&bytes);
            prop_assert!(valid <= bytes.len());
            let _ = decoded;
        }
    }
}
