//! Domain model of the Policy Service.
//!
//! These are the fact types held in policy memory (the rule engine's working
//! memory) and the request/identifier types exchanged with the Pegasus
//! Transfer Tool. The vocabulary follows Section II of the paper: transfers,
//! resources (staged files with workflow refcounts), cleanups, and host-pair
//! groups.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Unique id the Policy Service assigns to each transfer "so that the
/// transfers can be monitored and modified".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct TransferId(pub u64);

/// Unique id assigned to each cleanup operation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct CleanupId(pub u64);

/// Identifies the workflow instance a request belongs to (multiple workflows
/// may share a policy session and staged files).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct WorkflowId(pub u64);

/// Group id shared by transfers with the same (source host, destination
/// host) pair; the transfer client runs a group in one session for
/// efficiency.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct GroupId(pub u64);

/// A Pegasus cluster index (horizontal clustering); input to the balanced
/// allocation policy.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ClusterId(pub u32);

impl fmt::Display for TransferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}
impl fmt::Display for CleanupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}
impl fmt::Display for WorkflowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wf{}", self.0)
    }
}

/// A simplified transfer URL: `scheme://host/path`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Url {
    /// Protocol scheme ("gsiftp", "http", "file", ...).
    pub scheme: String,
    /// Host name (empty for `file` URLs).
    pub host: String,
    /// Absolute path on the host.
    pub path: String,
}

/// Error from [`Url::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlParseError(pub String);

impl fmt::Display for UrlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid URL: {}", self.0)
    }
}
impl std::error::Error for UrlParseError {}

impl Url {
    /// Build a URL from parts. The path is normalized to start with `/`.
    pub fn new(scheme: impl Into<String>, host: impl Into<String>, path: impl Into<String>) -> Url {
        let mut path = path.into();
        if !path.starts_with('/') {
            path.insert(0, '/');
        }
        Url {
            scheme: scheme.into(),
            host: host.into(),
            path,
        }
    }

    /// Parse `scheme://host/path`.
    pub fn parse(s: &str) -> Result<Url, UrlParseError> {
        let (scheme, rest) = s
            .split_once("://")
            .ok_or_else(|| UrlParseError(format!("missing scheme separator in {s:?}")))?;
        if scheme.is_empty() {
            return Err(UrlParseError(format!("empty scheme in {s:?}")));
        }
        let (host, path) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if host.is_empty() && scheme != "file" {
            return Err(UrlParseError(format!("empty host in {s:?}")));
        }
        Ok(Url {
            scheme: scheme.to_string(),
            host: host.to_string(),
            path: path.to_string(),
        })
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.path)
    }
}

/// A transfer request as submitted by the Pegasus Transfer Tool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferSpec {
    /// Where the file currently lives.
    pub source: Url,
    /// Where it must be staged to.
    pub dest: Url,
    /// Size hint in bytes (0 = unknown; advice does not depend on it, but
    /// monitoring records it).
    pub bytes: u64,
    /// Streams the client would like; `None` lets policy assign the default.
    pub requested_streams: Option<u32>,
    /// Submitting workflow.
    pub workflow: WorkflowId,
    /// Pegasus cluster the transfer belongs to (balanced allocation input).
    pub cluster: Option<ClusterId>,
    /// Structure-based priority of the consuming job, if the workflow was
    /// annotated (higher = stage earlier).
    pub priority: Option<i32>,
}

/// Lifecycle of a transfer in policy memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransferState {
    /// Received, advice being prepared.
    Pending,
    /// Handed back to the PTT for execution.
    InProgress,
    /// Reported complete.
    Completed,
    /// Reported failed.
    Failed,
}

/// A transfer fact in policy memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFact {
    /// Service-assigned id.
    pub id: TransferId,
    /// The original request.
    pub spec: TransferSpec,
    /// Current lifecycle state.
    pub state: TransferState,
    /// Streams advice (None until the default-assignment rule runs).
    pub streams: Option<u32>,
    /// Streams actually charged against the host-pair ledger (set by the
    /// allocation rules; released on completion/failure).
    pub charged_streams: u32,
    /// Group advice (None until the grouping rule runs).
    pub group: Option<GroupId>,
    /// True while the fact belongs to the batch currently under evaluation.
    pub in_current_batch: bool,
    /// Set when the dedup rules decide this request must not execute.
    pub suppressed: Option<SuppressReason>,
    /// Guard so the balanced policy releases a transfer's cluster-ledger
    /// charge exactly once (the host-pair charge is released separately by
    /// the Table I completion/failure rules).
    pub cluster_released: bool,
    /// Staging backend the storage policy family picked (None when the
    /// family is off or no backend profile matches the destination site).
    #[serde(default)]
    pub backend: Option<String>,
    /// Guard so the storage family releases the backend-load charge and
    /// records the `StagedOn` fact exactly once.
    #[serde(default)]
    pub backend_released: bool,
}

/// Why a request was removed from the list returned to the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuppressReason {
    /// An identical transfer appears earlier in the same batch.
    DuplicateInBatch,
    /// An identical transfer is already in progress.
    AlreadyInProgress,
    /// The file was already staged by this or another workflow.
    AlreadyStaged,
    /// A cleanup for this file is in progress or done (cleanup dedup).
    DuplicateCleanup,
    /// The file is still in use by other workflows (cleanup protection).
    ResourceInUse,
    /// The source replica is quarantined after repeated checksum failures;
    /// the client must re-plan from another replica or re-run the producer.
    SourceQuarantined,
    /// The source host is reported down; retrying against it is pointless
    /// until a `HostUp` health report clears the fact.
    SourceHostDown,
}

/// State of a staged-file resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceState {
    /// A transfer that will produce this file is pending or in progress.
    Staging,
    /// The file is present at the destination.
    Staged,
}

/// A staged-file resource: tracks which workflows use a file so duplicate
/// staging is avoided and premature cleanup is suppressed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceFact {
    /// Canonical destination URL of the staged file.
    pub dest: Url,
    /// Where it was staged from.
    pub source: Url,
    /// Workflows currently using the staged file.
    #[serde(with = "workflow_set_serde")]
    pub users: BTreeSet<WorkflowId>,
    /// Staging vs staged.
    pub state: ResourceState,
    /// Transfer that is currently producing the file (while `Staging`).
    pub producer: Option<TransferId>,
}

/// Lifecycle of a cleanup operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CleanupState {
    /// Received, advice being prepared.
    Pending,
    /// Handed back for execution.
    InProgress,
    /// Reported complete.
    Completed,
}

/// A cleanup request as submitted by a Pegasus cleanup job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanupSpec {
    /// File to delete (destination URL of a staged resource).
    pub file: Url,
    /// Requesting workflow.
    pub workflow: WorkflowId,
}

/// A cleanup fact in policy memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CleanupFact {
    /// Service-assigned id.
    pub id: CleanupId,
    /// The original request.
    pub spec: CleanupSpec,
    /// Current lifecycle state.
    pub state: CleanupState,
    /// True while part of the batch under evaluation.
    pub in_current_batch: bool,
    /// Set when policy decides the cleanup must not execute.
    pub suppressed: Option<SuppressReason>,
}

/// The per-(source host, destination host) allocation ledger fact used by
/// the greedy and balanced policies ("Generate a unique group ID for a
/// source and destination host pair").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostPairFact {
    /// Source host name.
    pub src_host: String,
    /// Destination host name.
    pub dst_host: String,
    /// The group id all transfers on this pair share.
    pub group: GroupId,
    /// Streams currently allocated to in-progress transfers.
    pub allocated: u32,
    /// High-water mark of `allocated` (Table IV reproduces this).
    pub peak_allocated: u32,
}

/// Per-(host pair, cluster) ledger used by the balanced policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterAllocFact {
    /// The host-pair group this cluster ledger belongs to.
    pub group: GroupId,
    /// Pegasus cluster id.
    pub cluster: ClusterId,
    /// Streams currently allocated to this cluster's transfers.
    pub allocated: u32,
}

/// A storage backend available at a site, as policy memory sees it — the
/// Table-I-style "what exists" fact of the storage family. One fact per
/// backend, inserted from [`crate::PolicyConfig::backends`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendProfileFact {
    /// Performance + cost envelope (shared with the simulator layer).
    pub profile: pwm_storage::BackendSpec,
    /// Destination-site host name the backend serves; a transfer is
    /// eligible for this backend iff its dest URL names this host.
    pub site: String,
}

/// A file staged onto a specific backend (storage-family bookkeeping,
/// recorded when the producing transfer completes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagedOnFact {
    /// Canonical destination URL of the staged file.
    pub file: Url,
    /// Backend name it landed on.
    pub backend: String,
    /// Size hint from the producing transfer.
    pub bytes: u64,
    /// Workflow that staged it.
    pub workflow: WorkflowId,
}

/// Running per-backend allocation ledger for the storage family: how much
/// in-flight staging the selection rules have already committed to each
/// backend (released when transfers complete or fail).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendLoadFact {
    /// Backend name.
    pub backend: String,
    /// Transfers currently assigned and not yet released.
    pub active: u32,
    /// Bytes assigned and not yet released.
    pub bytes_assigned: f64,
    /// Estimated dollars committed so far (monotone; budget-capped
    /// selection compares this against its cap).
    pub dollars_committed: f64,
}

/// A compute or transfer host currently reported down (recovery family).
/// While present, transfers sourced at the host are suppressed rather than
/// retried, and re-placement rules avoid it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostDownFact {
    /// Host name as it appears in transfer URLs.
    pub host: String,
}

/// A storage backend currently reported down (recovery family). While
/// present, the storage-selection rules exclude the backend from candidate
/// sets, steering new placements around the outage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendDownFact {
    /// Backend name (matches [`BackendProfileFact::profile`]'s name).
    pub backend: String,
}

/// A replica that failed checksum verification on read (recovery family).
/// Strikes accumulate per `(host, file)`; at the client's quarantine
/// threshold the replica is marked quarantined and transfer requests
/// sourced from it are suppressed so the client re-plans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuspectReplicaFact {
    /// Host serving the suspect replica.
    pub host: String,
    /// File path of the replica on that host.
    pub file: String,
    /// Checksum failures observed so far.
    pub strikes: u32,
    /// True once the replica is quarantined (suppression active).
    pub quarantined: bool,
}

/// One health observation reported by an execution environment. Reports are
/// upserts over the recovery facts above: `Down`/`Suspect` events insert or
/// update, `Up`/`Cleared` events retract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HealthEvent {
    /// A host stopped responding (crash, reboot, partition).
    HostDown {
        /// Host name as it appears in transfer URLs.
        host: String,
    },
    /// A previously down host is serving again.
    HostUp {
        /// Host name as it appears in transfer URLs.
        host: String,
    },
    /// A storage backend went dark or was administratively drained.
    BackendDown {
        /// Backend name.
        backend: String,
    },
    /// A previously down backend is serving again.
    BackendUp {
        /// Backend name.
        backend: String,
    },
    /// A read of `file` from `host` failed checksum verification. Carries
    /// the reporter's quarantine decision so the threshold stays a client
    /// policy (the service records strikes and suppresses once quarantined).
    SuspectReplica {
        /// Host serving the suspect replica.
        host: String,
        /// File path of the replica.
        file: String,
        /// True when the reporter's strike threshold is reached.
        quarantine: bool,
    },
    /// The replica was re-verified or regenerated; clear its suspicion.
    ReplicaCleared {
        /// Host serving the replica.
        host: String,
        /// File path of the replica.
        file: String,
    },
}

/// `#[serde(with)]` adapter for `BTreeSet<WorkflowId>`: the vendored serde
/// has no set impls, so the set crosses the wire as a sorted id array.
mod workflow_set_serde {
    use super::WorkflowId;
    use serde::{Deserialize, Serialize, Value};
    use std::collections::BTreeSet;

    /// Set → sorted array of raw workflow ids.
    pub fn serialize(set: &BTreeSet<WorkflowId>) -> Value {
        set.iter().map(|w| w.0).collect::<Vec<u64>>().to_value()
    }

    /// Array of raw ids → set (duplicates collapse).
    pub fn deserialize(value: &Value) -> Result<BTreeSet<WorkflowId>, serde::Error> {
        Ok(Vec::<u64>::from_value(value)?
            .into_iter()
            .map(WorkflowId)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_parse_roundtrip() {
        let u = Url::parse("gsiftp://gridftp-vm.tacc/data/extra_01.dat").unwrap();
        assert_eq!(u.scheme, "gsiftp");
        assert_eq!(u.host, "gridftp-vm.tacc");
        assert_eq!(u.path, "/data/extra_01.dat");
        assert_eq!(u.to_string(), "gsiftp://gridftp-vm.tacc/data/extra_01.dat");
    }

    #[test]
    fn url_parse_no_path_defaults_to_root() {
        let u = Url::parse("http://apache.isi").unwrap();
        assert_eq!(u.path, "/");
    }

    #[test]
    fn url_parse_rejects_garbage() {
        assert!(Url::parse("not-a-url").is_err());
        assert!(Url::parse("://host/x").is_err());
        assert!(Url::parse("gsiftp:///x").is_err());
    }

    #[test]
    fn file_urls_may_have_empty_host() {
        let u = Url::parse("file:///scratch/f.dat").unwrap();
        assert_eq!(u.scheme, "file");
        assert_eq!(u.host, "");
        assert_eq!(u.path, "/scratch/f.dat");
    }

    #[test]
    fn url_new_normalizes_path() {
        let u = Url::new("http", "h", "data/f");
        assert_eq!(u.path, "/data/f");
        let u2 = Url::new("http", "h", "/data/f");
        assert_eq!(u, u2);
    }

    #[test]
    fn url_ordering_is_lexicographic() {
        // The base rules sort transfers by (source, dest) URL; Url's Ord must
        // be stable and total.
        let a = Url::parse("gsiftp://a/x").unwrap();
        let b = Url::parse("gsiftp://b/x").unwrap();
        let a2 = Url::parse("gsiftp://a/y").unwrap();
        assert!(a < b);
        assert!(a < a2);
    }

    #[test]
    fn display_of_ids() {
        assert_eq!(TransferId(7).to_string(), "t7");
        assert_eq!(CleanupId(3).to_string(), "c3");
        assert_eq!(WorkflowId(1).to_string(), "wf1");
    }

    #[test]
    fn url_serde_roundtrip() {
        let u = Url::parse("gsiftp://host/p/q.dat").unwrap();
        let json = serde_json::to_string(&u).unwrap();
        let back: Url = serde_json::from_str(&json).unwrap();
        assert_eq!(u, back);
    }

    #[test]
    fn transfer_spec_serde_roundtrip() {
        let spec = TransferSpec {
            source: Url::parse("gsiftp://src/a").unwrap(),
            dest: Url::parse("file:///dst/a").unwrap(),
            bytes: 1_000_000,
            requested_streams: Some(8),
            workflow: WorkflowId(2),
            cluster: Some(ClusterId(1)),
            priority: Some(10),
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: TransferSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Display → parse is the identity for any well-formed URL.
        #[test]
        fn url_display_parse_roundtrip(
            scheme in "[a-z]{2,8}",
            host in "[a-z0-9.-]{1,24}",
            path in "/[a-zA-Z0-9._/-]{0,48}",
        ) {
            let url = Url::new(scheme, host, path);
            let back = Url::parse(&url.to_string()).unwrap();
            prop_assert_eq!(url, back);
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn url_parse_never_panics(s in "\\PC{0,128}") {
            let _ = Url::parse(&s);
        }

        /// Ordering agrees with string ordering of the canonical form for
        /// same-scheme URLs (the Table I sort rule relies on a total order).
        #[test]
        fn url_order_is_total_and_antisymmetric(
            host_a in "[a-z]{1,8}", path_a in "/[a-z]{0,8}",
            host_b in "[a-z]{1,8}", path_b in "/[a-z]{0,8}",
        ) {
            let a = Url::new("gsiftp", host_a, path_a);
            let b = Url::new("gsiftp", host_b, path_b);
            match a.cmp(&b) {
                std::cmp::Ordering::Equal => prop_assert_eq!(&a, &b),
                std::cmp::Ordering::Less => prop_assert!(b > a),
                std::cmp::Ordering::Greater => prop_assert!(a > b),
            }
        }
    }
}
