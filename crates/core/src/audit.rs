//! The monitoring log.
//!
//! "The Policy Service assigns each transfer a unique ID so that the
//! transfers can be monitored and modified." The [`AuditLog`] is the
//! monitoring half: a bounded, sequence-numbered record of every decision
//! the service makes, queryable through the controller and the REST
//! interface (`GET /sessions/{s}/log`).

use crate::model::{CleanupId, SuppressReason, TransferId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One recorded policy decision or lifecycle event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyEvent {
    /// A transfer request was evaluated.
    TransferEvaluated {
        /// Assigned id.
        id: TransferId,
        /// Streams granted (meaningful when executed).
        streams: u32,
        /// None = execute; Some = skipped and why.
        skipped: Option<SuppressReason>,
    },
    /// A transfer outcome was reported.
    TransferReported {
        /// Which transfer.
        id: TransferId,
        /// Success or failure.
        success: bool,
    },
    /// A cleanup request was evaluated.
    CleanupEvaluated {
        /// Assigned id.
        id: CleanupId,
        /// None = execute; Some = skipped and why.
        skipped: Option<SuppressReason>,
    },
    /// A cleanup outcome was reported.
    CleanupReported {
        /// Which cleanup.
        id: CleanupId,
        /// Success or failure.
        success: bool,
    },
    /// The session configuration was replaced.
    ConfigChanged,
}

/// A sequence-numbered audit entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRecord {
    /// Monotone sequence number within the session.
    pub seq: u64,
    /// What happened.
    pub event: PolicyEvent,
}

/// Bounded decision log; oldest entries are evicted when full.
#[derive(Debug, Clone)]
pub struct AuditLog {
    records: VecDeque<AuditRecord>,
    capacity: usize,
    next_seq: u64,
}

impl Default for AuditLog {
    fn default() -> Self {
        Self::with_capacity(4096)
    }
}

impl AuditLog {
    /// A log retaining at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        AuditLog {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
        }
    }

    /// Append an event; returns its sequence number.
    pub fn record(&mut self, event: PolicyEvent) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(AuditRecord { seq, event });
        seq
    }

    /// Records with `seq >= since`, oldest first (incremental polling).
    pub fn since(&self, since: u64) -> Vec<AuditRecord> {
        self.records
            .iter()
            .filter(|r| r.seq >= since)
            .cloned()
            .collect()
    }

    /// The most recent `n` records, oldest first.
    pub fn tail(&self, n: usize) -> Vec<AuditRecord> {
        let skip = self.records.len().saturating_sub(n);
        self.records.iter().skip(skip).cloned().collect()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        self.next_seq
    }

    /// The retention bound in force.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many records the retention ring has evicted over its lifetime.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.records.len() as u64
    }

    /// Rebuild a log from recovered state (durability): retained records
    /// plus the sequence counter, so post-recovery events keep numbering
    /// where the crashed session stopped.
    pub fn restore(capacity: usize, next_seq: u64, records: Vec<AuditRecord>) -> Self {
        AuditLog {
            records: records.into(),
            capacity: capacity.max(1),
            next_seq,
        }
    }

    /// Retained records, oldest first (snapshot export).
    pub fn records(&self) -> Vec<AuditRecord> {
        self.records.iter().cloned().collect()
    }

    /// Currently retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> PolicyEvent {
        PolicyEvent::TransferReported {
            id: TransferId(n),
            success: true,
        }
    }

    #[test]
    fn sequence_numbers_are_monotone() {
        let mut log = AuditLog::default();
        assert_eq!(log.record(ev(0)), 0);
        assert_eq!(log.record(ev(1)), 1);
        assert_eq!(log.total_recorded(), 2);
    }

    #[test]
    fn capacity_evicts_oldest_but_keeps_seq() {
        let mut log = AuditLog::with_capacity(2);
        log.record(ev(0));
        log.record(ev(1));
        log.record(ev(2));
        assert_eq!(log.len(), 2);
        let seqs: Vec<u64> = log.tail(10).iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(log.total_recorded(), 3);
    }

    #[test]
    fn since_filters_incrementally() {
        let mut log = AuditLog::default();
        for n in 0..5 {
            log.record(ev(n));
        }
        let recent = log.since(3);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].seq, 3);
        assert!(log.since(99).is_empty());
    }

    #[test]
    fn tail_returns_last_n_in_order() {
        let mut log = AuditLog::default();
        for n in 0..10 {
            log.record(ev(n));
        }
        let t = log.tail(3);
        let seqs: Vec<u64> = t.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(log.tail(100).len(), 10);
    }

    #[test]
    fn dropped_counts_lifetime_evictions() {
        let mut log = AuditLog::with_capacity(3);
        assert_eq!(log.dropped(), 0);
        for n in 0..10 {
            log.record(ev(n));
        }
        assert_eq!(log.capacity(), 3);
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 7);
    }

    #[test]
    fn restore_resumes_sequence_numbering() {
        let mut log = AuditLog::with_capacity(4);
        for n in 0..6 {
            log.record(ev(n));
        }
        let back = AuditLog::restore(log.capacity(), log.total_recorded(), log.records());
        assert_eq!(back.tail(10), log.tail(10));
        assert_eq!(back.dropped(), log.dropped());
        let mut back = back;
        assert_eq!(back.record(ev(6)), 6);
    }

    #[test]
    fn records_serialize() {
        let mut log = AuditLog::default();
        log.record(PolicyEvent::TransferEvaluated {
            id: TransferId(1),
            streams: 8,
            skipped: Some(SuppressReason::AlreadyStaged),
        });
        let json = serde_json::to_string(&log.tail(1)).unwrap();
        let back: Vec<AuditRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, log.tail(1));
    }
}
