//! Differential harness: the arena [`WorkingMemory`] driven in lockstep
//! with the legacy boxed-fact store it replaced.
//!
//! Random insert/update/retract/probe command sequences execute against both
//! stores; after every command each observable the rule engine consumes must
//! agree exactly — returned handles, operation results, fact values,
//! iteration order, versions, the global generation, per-type generations,
//! and the `changed_since` delta log. A generic mini rule evaluator then
//! replays identical workloads over both stores and must produce identical
//! firing-report counters (evaluations / matches / firings), since those
//! counters are pure functions of exactly the observables compared above.
//! Finally, use-after-retract probes through saved [`pwm_rules::FactId`]s
//! must return `None` via the generation mismatch, never a stale or
//! recycled fact.
//!
//! Runs only with the `legacy-facts` feature (default-on), which keeps the
//! oracle compiled. `PWM_PROPTEST_CASES` raises the case count for the CI
//! differential job.
#![cfg(feature = "legacy-facts")]

use proptest::prelude::*;
use pwm_rules::{FactHandle, FactId, LegacyWorkingMemory, WorkingMemory};
use std::any::TypeId;

#[derive(Debug, PartialEq, Clone)]
struct Alpha {
    n: u64,
    key: u64,
}

#[derive(Debug, PartialEq, Clone)]
struct Beta {
    s: String,
}

/// One lockstep command. Handle-bearing variants pick from the issued
/// handle list by index, so they hit live, retracted, and wrong-type
/// handles alike.
#[derive(Debug, Clone)]
enum Cmd {
    InsertA(u64, u64),
    InsertB(u64),
    UpdateA(usize, u64),
    /// `update::<Beta>` aimed at whatever handle `ix` names — usually an
    /// Alpha, so the typed-miss path is exercised.
    UpdateWrongType(usize),
    Retract(usize),
    RetractAllB,
    Probe(usize),
    LookupByKey(u64),
    /// Record the current generation; subsequent `changed_since` checks
    /// compare both logs from this point.
    Checkpoint,
}

fn arb_cmd() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        4 => (0u64..50, 0u64..8).prop_map(|(n, k)| Cmd::InsertA(n, k)),
        2 => (0u64..50).prop_map(Cmd::InsertB),
        3 => (any::<usize>(), 0u64..8).prop_map(|(ix, k)| Cmd::UpdateA(ix, k)),
        1 => any::<usize>().prop_map(Cmd::UpdateWrongType),
        2 => any::<usize>().prop_map(Cmd::Retract),
        1 => Just(Cmd::RetractAllB),
        2 => any::<usize>().prop_map(Cmd::Probe),
        1 => (0u64..8).prop_map(Cmd::LookupByKey),
        1 => Just(Cmd::Checkpoint),
    ]
}

/// Compare every engine-visible observable of the two stores.
fn assert_stores_agree(arena: &WorkingMemory, legacy: &LegacyWorkingMemory, checkpoint: u64) {
    assert_eq!(arena.len(), legacy.len());
    assert_eq!(arena.is_empty(), legacy.is_empty());
    assert_eq!(arena.count::<Alpha>(), legacy.count::<Alpha>());
    assert_eq!(arena.count::<Beta>(), legacy.count::<Beta>());
    assert_eq!(arena.generation(), legacy.generation());
    assert_eq!(
        arena.type_generation_of::<Alpha>(),
        legacy.type_generation_of::<Alpha>()
    );
    assert_eq!(
        arena.type_generation_of::<Beta>(),
        legacy.type_generation_of::<Beta>()
    );
    let a_iter: Vec<(FactHandle, Alpha)> =
        arena.iter::<Alpha>().map(|(h, a)| (h, a.clone())).collect();
    let l_iter: Vec<(FactHandle, Alpha)> = legacy
        .iter::<Alpha>()
        .map(|(h, a)| (h, a.clone()))
        .collect();
    assert_eq!(a_iter, l_iter, "Alpha iteration diverged");
    let a_beta: Vec<(FactHandle, Beta)> =
        arena.iter::<Beta>().map(|(h, b)| (h, b.clone())).collect();
    let l_beta: Vec<(FactHandle, Beta)> =
        legacy.iter::<Beta>().map(|(h, b)| (h, b.clone())).collect();
    assert_eq!(a_beta, l_beta, "Beta iteration diverged");
    for ty in [TypeId::of::<Alpha>(), TypeId::of::<Beta>()] {
        assert_eq!(
            arena.changed_since(ty, checkpoint),
            legacy.changed_since(ty, checkpoint),
            "changed_since diverged"
        );
    }
    for key in 0..8u64 {
        assert_eq!(
            arena.lookup_by::<Alpha, u64>(&key),
            legacy.lookup_by::<Alpha, u64>(&key),
            "lookup_by({key}) diverged"
        );
        let a_by: Vec<(FactHandle, Alpha)> = arena
            .iter_by::<Alpha, u64>(&key)
            .map(|(h, a)| (h, a.clone()))
            .collect();
        let l_by: Vec<(FactHandle, Alpha)> = legacy
            .iter_by::<Alpha, u64>(&key)
            .map(|(h, a)| (h, a.clone()))
            .collect();
        assert_eq!(a_by, l_by, "iter_by({key}) diverged");
        assert_eq!(
            arena
                .find_by::<Alpha, u64>(&key)
                .map(|(h, a)| (h, a.clone())),
            legacy
                .find_by::<Alpha, u64>(&key)
                .map(|(h, a)| (h, a.clone())),
            "find_by({key}) diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: option_env!("PWM_PROPTEST_CASES")
            .and_then(|s| s.parse().ok())
            .unwrap_or(128),
    })]

    /// The heart of the harness: identical command sequences, identical
    /// observables, after every single command.
    #[test]
    fn arena_store_matches_legacy_store(cmds in proptest::collection::vec(arb_cmd(), 1..120)) {
        let mut arena = WorkingMemory::new();
        let mut legacy = LegacyWorkingMemory::new();
        arena.register_index::<Alpha, u64>(|a| a.key);
        legacy.register_index::<Alpha, u64>(|a| a.key);
        let mut handles: Vec<FactHandle> = Vec::new();
        // Ids of every Alpha ever inserted, with the handle they named;
        // retired ones must probe to None at the end.
        let mut ids: Vec<(FactHandle, FactId<Alpha>)> = Vec::new();
        let mut checkpoint = 0u64;
        for cmd in cmds {
            match cmd {
                Cmd::InsertA(n, key) => {
                    let ha = arena.insert(Alpha { n, key });
                    let hl = legacy.insert(Alpha { n, key });
                    prop_assert_eq!(ha, hl, "handle numbering diverged");
                    ids.push((ha, arena.fact_id::<Alpha>(ha).unwrap()));
                    handles.push(ha);
                }
                Cmd::InsertB(n) => {
                    let ha = arena.insert(Beta { s: format!("b{n}") });
                    let hl = legacy.insert(Beta { s: format!("b{n}") });
                    prop_assert_eq!(ha, hl, "handle numbering diverged");
                    handles.push(ha);
                }
                Cmd::UpdateA(ix, key) if !handles.is_empty() => {
                    let h = handles[ix % handles.len()];
                    let ra = arena.update::<Alpha>(h, |a| { a.n += 1; a.key = key; });
                    let rl = legacy.update::<Alpha>(h, |a| { a.n += 1; a.key = key; });
                    prop_assert_eq!(ra, rl, "update result diverged");
                }
                Cmd::UpdateWrongType(ix) if !handles.is_empty() => {
                    let h = handles[ix % handles.len()];
                    // Against an Alpha handle this must fail on both sides
                    // without bumping any version or generation.
                    let ra = arena.update::<Beta>(h, |b| b.s.push('!'));
                    let rl = legacy.update::<Beta>(h, |b| b.s.push('!'));
                    prop_assert_eq!(ra, rl, "wrong-type update diverged");
                }
                Cmd::Retract(ix) if !handles.is_empty() => {
                    let h = handles[ix % handles.len()];
                    prop_assert_eq!(arena.retract(h), legacy.retract(h), "retract diverged");
                }
                Cmd::RetractAllB => {
                    prop_assert_eq!(
                        arena.retract_all::<Beta>(),
                        legacy.retract_all::<Beta>(),
                        "retract_all diverged"
                    );
                }
                Cmd::Probe(ix) if !handles.is_empty() => {
                    let h = handles[ix % handles.len()];
                    prop_assert_eq!(arena.get::<Alpha>(h), legacy.get::<Alpha>(h));
                    prop_assert_eq!(arena.get::<Beta>(h), legacy.get::<Beta>(h));
                    prop_assert_eq!(arena.version(h), legacy.version(h));
                    prop_assert_eq!(arena.contains(h), legacy.contains(h));
                }
                Cmd::LookupByKey(key) => {
                    prop_assert_eq!(
                        arena.lookup_by::<Alpha, u64>(&key),
                        legacy.lookup_by::<Alpha, u64>(&key)
                    );
                }
                Cmd::Checkpoint => checkpoint = arena.generation(),
                // Handle-bearing commands before the first insert: no-ops.
                Cmd::UpdateA(..) | Cmd::UpdateWrongType(_) | Cmd::Retract(_) | Cmd::Probe(_) => {}
            }
            assert_stores_agree(&arena, &legacy, checkpoint);
        }
        // Use-after-retract: every id whose handle is gone must miss via
        // generation mismatch; every live one must still resolve.
        for (h, id) in ids {
            if arena.contains(h) {
                prop_assert_eq!(arena.get_id(id), arena.get::<Alpha>(h));
            } else {
                prop_assert!(
                    arena.get_id(id).is_none(),
                    "stale FactId resolved after retract (slot recycling leak)"
                );
            }
        }
    }
}

// --- firing-counter equivalence over a generic store --------------------

/// The store operations a (miniature) rule engine needs. Both stores
/// implement it with the same inherent methods, so the impls are mechanical.
trait Store {
    fn insert_a(&mut self, a: Alpha) -> FactHandle;
    fn update_a(&mut self, h: FactHandle, bump: u64) -> bool;
    fn retract_fact(&mut self, h: FactHandle) -> bool;
    fn contains_fact(&self, h: FactHandle) -> bool;
    fn version_of(&self, h: FactHandle) -> Option<u64>;
    fn snapshot_a(&self) -> Vec<(FactHandle, Alpha)>;
    fn gen_now(&self) -> u64;
    fn type_gen_a(&self) -> u64;
}

macro_rules! impl_store {
    ($ty:ty) => {
        impl Store for $ty {
            fn insert_a(&mut self, a: Alpha) -> FactHandle {
                self.insert(a)
            }
            fn update_a(&mut self, h: FactHandle, bump: u64) -> bool {
                self.update::<Alpha>(h, |a| a.n += bump)
            }
            fn retract_fact(&mut self, h: FactHandle) -> bool {
                self.retract(h)
            }
            fn contains_fact(&self, h: FactHandle) -> bool {
                self.contains(h)
            }
            fn version_of(&self, h: FactHandle) -> Option<u64> {
                self.version(h)
            }
            fn snapshot_a(&self) -> Vec<(FactHandle, Alpha)> {
                self.iter::<Alpha>().map(|(h, a)| (h, a.clone())).collect()
            }
            fn gen_now(&self) -> u64 {
                self.generation()
            }
            fn type_gen_a(&self) -> u64 {
                self.type_generation_of::<Alpha>()
            }
        }
    };
}
impl_store!(WorkingMemory);
impl_store!(LegacyWorkingMemory);

/// The counters `pwm_rules::FiringReport` aggregates per rule, reproduced
/// by the mini evaluator so they can be compared across stores.
#[derive(Debug, PartialEq, Default)]
struct Counters {
    evaluations: u64,
    matches: u64,
    firings: u64,
}

/// A one-rule engine with Drools refraction, structured exactly like
/// `Session::fire_all`'s incremental loop: the matcher only re-runs when
/// the watched type's generation moved, matches are `(handle, version)`
/// refraction-keyed, and the action mutates the matched fact. The rule:
/// "while `n` is odd, add `step`".
fn fire_to_quiescence<S: Store>(store: &mut S, step: u64) -> Counters {
    let mut c = Counters::default();
    let mut fired: std::collections::HashSet<(FactHandle, u64)> = std::collections::HashSet::new();
    let mut cache_gen = 0u64;
    let mut agenda: Vec<FactHandle> = Vec::new();
    for _ in 0..10_000 {
        if store.type_gen_a() > cache_gen {
            c.evaluations += 1;
            agenda = store
                .snapshot_a()
                .iter()
                .filter(|(_, a)| a.n % 2 == 1)
                .map(|(h, _)| *h)
                .collect();
            c.matches += agenda.len() as u64;
            cache_gen = store.gen_now();
        }
        let next = agenda.iter().copied().find(|h| {
            store.contains_fact(*h)
                && store
                    .version_of(*h)
                    .is_some_and(|v| !fired.contains(&(*h, v)))
        });
        let Some(h) = next else { break };
        let v = store.version_of(h).unwrap();
        fired.insert((h, v));
        c.firings += 1;
        store.update_a(h, step);
    }
    c
}

/// Identical workloads through the mini engine must yield identical
/// counters and final fact states on both stores — the firing-report
/// equivalence leg of the differential harness.
#[test]
fn firing_counters_match_across_stores() {
    // Steps are odd so "add `step`" always flips parity and the rule
    // genuinely quiesces (an even step would leave odd facts odd forever).
    for (step, seed_facts, retract_every) in
        [(1u64, 7u64, 0usize), (3, 12, 3), (5, 30, 4), (1, 64, 5)]
    {
        let mut arena = WorkingMemory::new();
        let mut legacy = LegacyWorkingMemory::new();
        let mut handles = Vec::new();
        for i in 0..seed_facts {
            let a = Alpha {
                n: i * 3 + 1,
                key: i % 4,
            };
            let ha = arena.insert_a(a.clone());
            let hl = legacy.insert_a(a);
            assert_eq!(ha, hl);
            handles.push(ha);
        }
        if retract_every > 0 {
            for (i, h) in handles.iter().enumerate() {
                if i % retract_every == 0 {
                    assert_eq!(arena.retract_fact(*h), legacy.retract_fact(*h));
                }
            }
        }
        let ca = fire_to_quiescence(&mut arena, step);
        let cl = fire_to_quiescence(&mut legacy, step);
        assert_eq!(ca, cl, "firing counters diverged (step={step})");
        assert_eq!(
            arena.snapshot_a(),
            legacy.snapshot_a(),
            "post-quiescence fact state diverged"
        );
        // The rule drove every fact to an even n; quiescence is real.
        assert!(arena.snapshot_a().iter().all(|(_, a)| a.n % 2 == 0));
    }
}
