//! The forward-chaining engine.
//!
//! [`Session`] owns a [`WorkingMemory`], a rule set, and the *fired set*
//! implementing refraction. [`Session::fire_all`] repeatedly:
//!
//! 1. collects the activations of every rule (rule × matched tuple) that is
//!    not refracted,
//! 2. orders them by salience (descending), then rule insertion order, then
//!    tuple order — Drools' default conflict-resolution modulo recency,
//! 3. fires the first activation and records it in the fired set,
//!
//! until no activation remains or a firing budget is exhausted (a guard
//! against non-converging rule sets, which Drools leaves to the author).
//!
//! Refraction key: `(rule, tuple handles, tuple fact versions)`. Updating a
//! fact bumps its version, which re-arms every rule matching it — exactly
//! the Drools `update()` semantics the paper's policy rules rely on.

use crate::memory::{FactHandle, WorkingMemory};
use crate::rule::{Match, Rule};
use std::collections::HashSet;

/// Refraction key: (rule index, matched handles with their versions).
type RefractionKey = (usize, Vec<(FactHandle, u64)>);

/// Outcome of a [`Session::fire_all`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiringReport {
    /// Total rule firings performed.
    pub firings: usize,
    /// Rule names in firing order (capped at `LOG_CAP` entries).
    pub log: Vec<String>,
    /// True if the engine stopped due to the firing budget rather than
    /// quiescence.
    pub budget_exhausted: bool,
}

const LOG_CAP: usize = 10_000;

/// A rule session: working memory + rules + refraction state.
pub struct Session<Ctx> {
    /// The fact store. Public so callers can insert/inspect facts directly,
    /// as Drools callers do with a `KieSession`.
    pub wm: WorkingMemory,
    rules: Vec<Rule<Ctx>>,
    fired: HashSet<RefractionKey>,
    max_firings: usize,
}

impl<Ctx> Session<Ctx> {
    /// New session with an empty memory and default firing budget.
    pub fn new() -> Self {
        Session {
            wm: WorkingMemory::new(),
            rules: Vec::new(),
            fired: HashSet::new(),
            max_firings: 100_000,
        }
    }

    /// Override the firing budget.
    pub fn with_max_firings(mut self, max: usize) -> Self {
        self.max_firings = max.max(1);
        self
    }

    /// Install a rule. Order of installation breaks salience ties.
    pub fn add_rule(&mut self, rule: Rule<Ctx>) {
        self.rules.push(rule);
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Forget all refraction state (e.g. at the start of a fresh request
    /// evaluation, for one-shot `when_once` rules).
    pub fn reset_refraction(&mut self) {
        self.fired.clear();
    }

    /// Drop refraction entries that reference retracted facts (the fired set
    /// otherwise grows for the lifetime of a long policy session).
    pub fn gc_refraction(&mut self) {
        let wm = &self.wm;
        self.fired
            .retain(|(_, tuple)| tuple.iter().all(|(h, _)| wm.contains(*h)));
    }

    /// Run rules to quiescence. Returns what fired.
    pub fn fire_all(&mut self, ctx: &mut Ctx) -> FiringReport {
        let mut report = FiringReport {
            firings: 0,
            log: Vec::new(),
            budget_exhausted: false,
        };
        while report.firings < self.max_firings {
            match self.next_activation(ctx) {
                Some((rule_idx, m, key)) => {
                    self.fired.insert(key);
                    let rule = &mut self.rules[rule_idx];
                    if report.log.len() < LOG_CAP {
                        report.log.push(rule.name().to_string());
                    }
                    rule.fire(&mut self.wm, ctx, &m);
                    report.firings += 1;
                }
                None => return report,
            }
        }
        report.budget_exhausted = true;
        report
    }

    /// Find the highest-priority non-refracted activation.
    fn next_activation(&self, ctx: &Ctx) -> Option<(usize, Match, RefractionKey)> {
        // Rules sorted by (salience desc, insertion order) — computed on the
        // fly; rule counts are small (tens) in the policy service.
        let mut order: Vec<usize> = (0..self.rules.len()).collect();
        order.sort_by_key(|&i| (-self.rules[i].salience(), i));
        for idx in order {
            let rule = &self.rules[idx];
            for m in rule.matches(&self.wm, ctx) {
                // A tuple containing a stale handle can arise if a matcher
                // returned handles that another firing retracted; skip it.
                if m.iter().any(|h| !self.wm.contains(*h)) {
                    continue;
                }
                let key: Vec<(FactHandle, u64)> = m
                    .iter()
                    .map(|h| (*h, self.wm.version(*h).unwrap_or(0)))
                    .collect();
                let full_key = (idx, key);
                if !self.fired.contains(&full_key) {
                    return Some((idx, m, full_key));
                }
            }
        }
        None
    }
}

impl<Ctx> Default for Session<Ctx> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Counter(u64);

    #[derive(Debug, PartialEq)]
    struct Item {
        priority: Option<u32>,
    }

    #[test]
    fn single_rule_fires_once_per_fact() {
        let mut s: Session<()> = Session::new();
        s.wm.insert(Item { priority: None });
        s.wm.insert(Item { priority: None });
        s.add_rule(
            Rule::new("assign")
                .when_each::<Item>(|i, _| i.priority.is_none())
                .then(|wm, _, m| {
                    wm.update::<Item>(m[0], |i| i.priority = Some(1));
                }),
        );
        let r = s.fire_all(&mut ());
        assert_eq!(r.firings, 2);
        assert!(!r.budget_exhausted);
        assert!(s.wm.iter::<Item>().all(|(_, i)| i.priority == Some(1)));
    }

    #[test]
    fn refraction_prevents_refire_on_unchanged_fact() {
        let mut s: Session<u64> = Session::new();
        s.wm.insert(Counter(0));
        // Matcher matches unconditionally; action does NOT update the fact,
        // so the rule must fire exactly once per tuple version.
        s.add_rule(
            Rule::new("observe")
                .when_each::<Counter>(|_, _| true)
                .then(|_, fired: &mut u64, _| *fired += 1),
        );
        let mut fired = 0;
        s.fire_all(&mut fired);
        assert_eq!(fired, 1);
        // A second fire_all adds nothing.
        s.fire_all(&mut fired);
        assert_eq!(fired, 1);
    }

    #[test]
    fn update_rearms_rules() {
        let mut s: Session<u64> = Session::new();
        let h = s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("observe")
                .when_each::<Counter>(|_, _| true)
                .then(|_, fired: &mut u64, _| *fired += 1),
        );
        let mut fired = 0;
        s.fire_all(&mut fired);
        s.wm.update::<Counter>(h, |c| c.0 += 1);
        s.fire_all(&mut fired);
        assert_eq!(fired, 2);
    }

    #[test]
    fn chained_rules_reach_quiescence() {
        // Rule A counts up to 5 by updating the fact; each update re-arms it.
        let mut s: Session<()> = Session::new();
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("count-to-five")
                .when_each::<Counter>(|c, _| c.0 < 5)
                .then(|wm, _, m| {
                    wm.update::<Counter>(m[0], |c| c.0 += 1);
                }),
        );
        let r = s.fire_all(&mut ());
        assert_eq!(r.firings, 5);
        let (_, c) = s.wm.find::<Counter>(|_| true).unwrap();
        assert_eq!(c.0, 5);
    }

    #[test]
    fn salience_orders_firing() {
        let mut s: Session<Vec<&'static str>> = Session::new();
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("low")
                .salience(1)
                .when_each::<Counter>(|_, _| true)
                .then(|_, log: &mut Vec<&'static str>, _| log.push("low")),
        );
        s.add_rule(
            Rule::new("high")
                .salience(10)
                .when_each::<Counter>(|_, _| true)
                .then(|_, log: &mut Vec<&'static str>, _| log.push("high")),
        );
        let mut log = Vec::new();
        let report = s.fire_all(&mut log);
        assert_eq!(log, vec!["high", "low"]);
        assert_eq!(report.log, vec!["high".to_string(), "low".to_string()]);
    }

    #[test]
    fn equal_salience_fires_in_installation_order() {
        let mut s: Session<Vec<&'static str>> = Session::new();
        s.wm.insert(Counter(0));
        for name in ["first", "second", "third"] {
            s.add_rule(
                Rule::new(name)
                    .when_each::<Counter>(|_, _| true)
                    .then(move |_, log: &mut Vec<&'static str>, _| log.push(name)),
            );
        }
        let mut log = Vec::new();
        s.fire_all(&mut log);
        assert_eq!(log, vec!["first", "second", "third"]);
    }

    #[test]
    fn budget_stops_runaway_rules() {
        let mut s: Session<()> = Session::new().with_max_firings(50);
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("forever")
                .when_each::<Counter>(|_, _| true)
                .then(|wm, _, m| {
                    wm.update::<Counter>(m[0], |c| c.0 += 1);
                }),
        );
        let r = s.fire_all(&mut ());
        assert_eq!(r.firings, 50);
        assert!(r.budget_exhausted);
    }

    #[test]
    fn retraction_by_one_rule_hides_fact_from_others() {
        let mut s: Session<u64> = Session::new();
        s.wm.insert(Item { priority: None });
        s.add_rule(
            Rule::new("delete-unprioritized")
                .salience(10)
                .when_each::<Item>(|i, _| i.priority.is_none())
                .then(|wm, _, m| {
                    wm.retract(m[0]);
                }),
        );
        s.add_rule(
            Rule::new("count-items")
                .when_each::<Item>(|_, _| true)
                .then(|_, seen: &mut u64, _| *seen += 1),
        );
        let mut seen = 0;
        s.fire_all(&mut seen);
        assert_eq!(seen, 0, "lower-salience rule saw a retracted fact");
    }

    #[test]
    fn reset_refraction_allows_refire() {
        let mut s: Session<u64> = Session::new();
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("observe")
                .when_each::<Counter>(|_, _| true)
                .then(|_, fired: &mut u64, _| *fired += 1),
        );
        let mut fired = 0;
        s.fire_all(&mut fired);
        s.reset_refraction();
        s.fire_all(&mut fired);
        assert_eq!(fired, 2);
    }

    #[test]
    fn gc_refraction_drops_stale_entries() {
        let mut s: Session<()> = Session::new();
        let h = s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("noop")
                .when_each::<Counter>(|_, _| true)
                .then(|_, _, _| {}),
        );
        s.fire_all(&mut ());
        assert_eq!(s.fired.len(), 1);
        s.wm.retract(h);
        s.gc_refraction();
        assert!(s.fired.is_empty());
    }

    #[test]
    fn when_once_rule_fires_single_time() {
        let mut s: Session<u64> = Session::new();
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("setup")
                .when_once(|wm, _| wm.count::<Counter>() > 0)
                .then(|_, fired: &mut u64, _| *fired += 1),
        );
        let mut fired = 0;
        s.fire_all(&mut fired);
        s.fire_all(&mut fired);
        assert_eq!(fired, 1);
    }

    #[test]
    fn two_fact_join_rule() {
        // Pair every Counter with every Item: a 2-tuple match.
        let mut s: Session<u64> = Session::new();
        s.wm.insert(Counter(1));
        s.wm.insert(Counter(2));
        s.wm.insert(Item { priority: None });
        s.add_rule(
            Rule::new("join")
                .when(|wm, _| {
                    let mut out = Vec::new();
                    for (ch, _) in wm.iter::<Counter>() {
                        for (ih, _) in wm.iter::<Item>() {
                            out.push(vec![ch, ih]);
                        }
                    }
                    out
                })
                .then(|_, pairs: &mut u64, _| *pairs += 1),
        );
        let mut pairs = 0;
        s.fire_all(&mut pairs);
        assert_eq!(pairs, 2);
    }
}
