//! The forward-chaining engine.
//!
//! [`Session`] owns a [`WorkingMemory`], a rule set, and the *fired set*
//! implementing refraction. Conflict resolution is Drools' default modulo
//! recency: salience (descending), then rule installation order, then tuple
//! order within a rule's matches. [`Session::fire_all`] fires the first
//! eligible activation, then repeats until quiescence or a firing budget is
//! exhausted (a guard against non-converging rule sets, which Drools leaves
//! to the author).
//!
//! # Incremental agenda
//!
//! Matching is incremental (a Rete-lite): each rule keeps its last matcher
//! output as a cached *agenda segment*, stamped with the working-memory
//! generation it was computed at. The matcher is only re-run when a fact
//! type the rule [watches](crate::rule::Watch) has been mutated since that
//! stamp — [`WorkingMemory`] maintains a per-type dirty generation fed by
//! `insert`/`update`/`retract`. A rule whose cached segment has been fully
//! refracted is marked *exhausted* and skipped in O(1) until it turns dirty
//! again, so quiescence checks no longer pay O(rules × facts) per firing.
//! Because live refraction entries are never removed while a cache is valid
//! (GC only drops entries with retracted facts), a per-rule scan cursor
//! additionally skips already-refracted tuples without re-hashing them.
//!
//! Matchers must be pure functions of (working memory, ctx). The engine
//! deliberately does **not** watch `Ctx`: like Drools globals, a ctx change
//! does not re-activate rules. Callers that mutate ctx in a way matchers can
//! observe (e.g. a config change between requests) must call
//! [`Session::invalidate_agenda`].
//!
//! Refraction key: `(rule, tuple handles, tuple fact versions)`. Updating a
//! fact bumps its version, which re-arms every rule matching it — exactly
//! the Drools `update()` semantics the paper's policy rules rely on. Keys
//! for tuples of up to two facts (the common case: `when_each` rules and
//! pairwise joins) are stored inline without heap allocation.

use crate::memory::{FactHandle, WorkingMemory};
use crate::rule::{Match, Rule};
use pwm_obs::{Counter, Registry};
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Fact tuples up to this length get allocation-free refraction keys.
const INLINE_FACTS: usize = 2;

/// Refraction key: (rule index, matched handles with their versions).
///
/// Small tuples are stored inline; only joins wider than [`INLINE_FACTS`]
/// facts pay a heap allocation per candidate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum RefractionKey {
    /// Tuple of at most [`INLINE_FACTS`] facts, padded with zeroes (the
    /// `len` discriminant keeps padded keys distinct from genuine ones).
    Inline {
        rule: u32,
        len: u8,
        facts: [(FactHandle, u64); INLINE_FACTS],
    },
    /// Wider join tuple.
    Heap {
        rule: u32,
        facts: Box<[(FactHandle, u64)]>,
    },
}

impl RefractionKey {
    fn new(rule: usize, m: &Match, wm: &WorkingMemory) -> Self {
        let rule = rule as u32;
        if m.len() <= INLINE_FACTS {
            let mut facts = [(FactHandle(0), 0u64); INLINE_FACTS];
            for (slot, h) in facts.iter_mut().zip(m.iter()) {
                *slot = (*h, wm.version(*h).unwrap_or(0));
            }
            RefractionKey::Inline {
                rule,
                len: m.len() as u8,
                facts,
            }
        } else {
            RefractionKey::Heap {
                rule,
                facts: m
                    .iter()
                    .map(|h| (*h, wm.version(*h).unwrap_or(0)))
                    .collect(),
            }
        }
    }

    /// The (handle, version) pairs the key binds (without inline padding).
    fn facts(&self) -> &[(FactHandle, u64)] {
        match self {
            RefractionKey::Inline { len, facts, .. } => &facts[..*len as usize],
            RefractionKey::Heap { facts, .. } => facts,
        }
    }
}

/// Per-rule observability counters (cumulative over the session).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleStats {
    /// Rule name (shared with the rule itself).
    pub name: Arc<str>,
    /// Rule salience, for display.
    pub salience: i32,
    /// Times the matcher was (re-)evaluated. Stays flat while the rule's
    /// watched fact types are clean — the direct measure that dirty-set
    /// propagation is working.
    pub evaluations: u64,
    /// Total fact tuples the matcher returned across evaluations.
    pub matches: u64,
    /// Times the rule's action fired.
    pub firings: u64,
    /// Cumulative wall-clock time spent in the matcher, in nanoseconds.
    pub eval_nanos: u64,
}

/// Outcome of a [`Session::fire_all`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiringReport {
    /// Total rule firings performed.
    pub firings: usize,
    /// Rule names in firing order (capped at `LOG_CAP` entries). Empty
    /// unless the session opted in via [`Session::with_firing_log`]; names
    /// are shared `Arc<str>`s, so logging does not allocate per firing.
    pub log: Vec<Arc<str>>,
    /// True if the engine stopped due to the firing budget rather than
    /// quiescence.
    pub budget_exhausted: bool,
    /// Per-rule counter deltas for *this run* (installation order): what was
    /// evaluated, matched and fired while reaching quiescence.
    pub rule_stats: Vec<RuleStats>,
}

const LOG_CAP: usize = 10_000;

/// Refraction GC threshold: `maybe_gc_refraction` does nothing until the
/// fired set reaches this size (then doubles the watermark after each sweep).
const GC_MIN_WATERMARK: usize = 256;

/// Cached agenda state for one rule.
#[derive(Default)]
struct RuleState {
    /// Last matcher output (the rule's agenda segment).
    matches: Vec<Match>,
    /// Working-memory generation `matches` was computed at.
    valid_at: u64,
    /// False until the matcher has run at least once (or after
    /// [`Session::invalidate_agenda`]).
    computed: bool,
    /// True when every tuple in `matches` is refracted or stale; cleared on
    /// re-evaluation and refraction reset.
    exhausted: bool,
    /// Index of the first tuple in `matches` that might still be eligible;
    /// everything before it is known refracted or stale for this cache.
    scan_from: usize,
    evaluations: u64,
    matched: u64,
    firings: u64,
    eval_nanos: u64,
}

impl RuleState {
    fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.evaluations,
            self.matched,
            self.firings,
            self.eval_nanos,
        )
    }
}

/// Registry handles for one rule's counter series, created lazily the
/// first time the rule appears in a published report.
struct RuleMetrics {
    evaluations: Counter,
    matches: Counter,
    firings: Counter,
    eval_nanos: Counter,
}

/// Metrics hookup for a session: the shared registry, base labels stamped
/// onto every series (e.g. the policy session name), and cached per-rule
/// handles so the hot path pays atomic adds, not registry lookups.
struct SessionObs {
    registry: Registry,
    labels: Vec<(String, String)>,
    per_rule: Vec<Option<RuleMetrics>>,
}

impl SessionObs {
    fn rule_metrics(&mut self, idx: usize, rule_name: &str) -> &RuleMetrics {
        if self.per_rule.len() <= idx {
            self.per_rule.resize_with(idx + 1, || None);
        }
        let slot = &mut self.per_rule[idx];
        if slot.is_none() {
            let mut labels: Vec<(&str, &str)> = self
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            labels.push(("rule", rule_name));
            *slot = Some(RuleMetrics {
                evaluations: self.registry.counter(
                    "pwm_rules_evaluations_total",
                    "Matcher (re-)evaluations per rule",
                    &labels,
                ),
                matches: self.registry.counter(
                    "pwm_rules_matches_total",
                    "Fact tuples returned by matchers per rule",
                    &labels,
                ),
                firings: self.registry.counter(
                    "pwm_rules_firings_total",
                    "Rule action firings per rule",
                    &labels,
                ),
                eval_nanos: self.registry.counter(
                    "pwm_rules_eval_nanos_total",
                    "Cumulative wall-clock nanoseconds spent in matchers per rule",
                    &labels,
                ),
            });
        }
        slot.as_ref().expect("slot just filled")
    }

    fn publish(&mut self, stats: &[RuleStats]) {
        for (idx, s) in stats.iter().enumerate() {
            if s.evaluations == 0 && s.matches == 0 && s.firings == 0 && s.eval_nanos == 0 {
                // Nothing moved; skip the handle lookup entirely for clean
                // rules (the common case under incremental matching).
                if self.per_rule.get(idx).map(Option::is_some) == Some(true) {
                    continue;
                }
            }
            let m = self.rule_metrics(idx, &s.name);
            m.evaluations.add(s.evaluations);
            m.matches.add(s.matches);
            m.firings.add(s.firings);
            m.eval_nanos.add(s.eval_nanos);
        }
    }
}

/// A rule session: working memory + rules + refraction state.
pub struct Session<Ctx> {
    /// The fact store. Public so callers can insert/inspect facts directly,
    /// as Drools callers do with a `KieSession`.
    pub wm: WorkingMemory,
    rules: Vec<Rule<Ctx>>,
    states: Vec<RuleState>,
    fired: HashSet<RefractionKey>,
    /// Rule indices sorted by (salience desc, installation order); rebuilt
    /// lazily after `add_rule` instead of per firing.
    order: Vec<usize>,
    order_valid: bool,
    max_firings: usize,
    log_firings: bool,
    gc_watermark: usize,
    obs: Option<SessionObs>,
}

impl<Ctx> Session<Ctx> {
    /// New session with an empty memory and default firing budget.
    pub fn new() -> Self {
        Session {
            wm: WorkingMemory::new(),
            rules: Vec::new(),
            states: Vec::new(),
            fired: HashSet::new(),
            order: Vec::new(),
            order_valid: true,
            max_firings: 100_000,
            log_firings: false,
            gc_watermark: GC_MIN_WATERMARK,
            obs: None,
        }
    }

    /// Publish per-rule counters (`pwm_rules_evaluations_total`,
    /// `pwm_rules_matches_total`, `pwm_rules_firings_total`,
    /// `pwm_rules_eval_nanos_total`) to `registry` at the end of every
    /// [`Session::fire_all`], each series labeled with the rule name plus
    /// the given base labels (e.g. the owning policy session).
    pub fn set_obs(&mut self, registry: Registry, base_labels: &[(&str, &str)]) {
        self.obs = Some(SessionObs {
            registry,
            labels: base_labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            per_rule: Vec::new(),
        });
    }

    /// Override the firing budget.
    pub fn with_max_firings(mut self, max: usize) -> Self {
        self.max_firings = max.max(1);
        self
    }

    /// Record rule names in [`FiringReport::log`] (off by default; the
    /// firings counter and per-rule stats are always maintained).
    pub fn with_firing_log(mut self) -> Self {
        self.log_firings = true;
        self
    }

    /// Toggle firing-log capture at runtime.
    pub fn set_firing_log(&mut self, enabled: bool) {
        self.log_firings = enabled;
    }

    /// Install a rule. Order of installation breaks salience ties.
    pub fn add_rule(&mut self, rule: Rule<Ctx>) {
        self.rules.push(rule);
        self.states.push(RuleState::default());
        self.order_valid = false;
    }

    /// Number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Cumulative per-rule counters, in installation order.
    pub fn rule_stats(&self) -> Vec<RuleStats> {
        self.rules
            .iter()
            .zip(&self.states)
            .map(|(rule, state)| RuleStats {
                name: rule.name_arc(),
                salience: rule.salience(),
                evaluations: state.evaluations,
                matches: state.matched,
                firings: state.firings,
                eval_nanos: state.eval_nanos,
            })
            .collect()
    }

    /// Discard every cached match list, forcing each matcher to re-run on
    /// its next consideration. Required after mutating ctx in a way matchers
    /// observe (the engine does not watch ctx, mirroring Drools globals).
    pub fn invalidate_agenda(&mut self) {
        for state in &mut self.states {
            state.computed = false;
            state.exhausted = false;
            state.scan_from = 0;
            state.matches.clear();
        }
    }

    /// Forget all refraction state (e.g. at the start of a fresh request
    /// evaluation, for one-shot `when_once` rules).
    pub fn reset_refraction(&mut self) {
        self.fired.clear();
        for state in &mut self.states {
            state.exhausted = false;
            state.scan_from = 0;
        }
    }

    /// Drop refraction entries that reference retracted facts (the fired set
    /// otherwise grows for the lifetime of a long policy session).
    ///
    /// This never removes an entry whose facts are all live, so cached
    /// agenda segments (including scan cursors and exhausted marks) remain
    /// valid across a sweep.
    pub fn gc_refraction(&mut self) {
        let wm = &self.wm;
        self.fired
            .retain(|key| key.facts().iter().all(|(h, _)| wm.contains(*h)));
    }

    /// Amortized refraction GC: sweeps only once the fired set crosses a
    /// watermark, then doubles the watermark (floored at a minimum). Call
    /// sites on the request hot path use this instead of sweeping the whole
    /// set on every request.
    pub fn maybe_gc_refraction(&mut self) {
        if self.fired.len() >= self.gc_watermark {
            self.gc_refraction();
            self.gc_watermark = (self.fired.len() * 2).max(GC_MIN_WATERMARK);
        }
    }

    /// Run rules to quiescence. Returns what fired.
    pub fn fire_all(&mut self, ctx: &mut Ctx) -> FiringReport {
        let baseline: Vec<(u64, u64, u64, u64)> =
            self.states.iter().map(RuleState::counters).collect();
        let mut firings = 0;
        let mut log = Vec::new();
        let mut budget_exhausted = false;
        loop {
            if firings >= self.max_firings {
                budget_exhausted = true;
                break;
            }
            match self.next_activation(ctx) {
                Some((rule_idx, m, key)) => {
                    self.fired.insert(key);
                    self.states[rule_idx].firings += 1;
                    let rule = &mut self.rules[rule_idx];
                    if self.log_firings && log.len() < LOG_CAP {
                        log.push(rule.name_arc());
                    }
                    rule.fire(&mut self.wm, ctx, &m);
                    firings += 1;
                }
                None => break,
            }
        }
        let rule_stats = self
            .rules
            .iter()
            .zip(&self.states)
            .zip(baseline)
            .map(|((rule, state), (ev0, ma0, fi0, ns0))| RuleStats {
                name: rule.name_arc(),
                salience: rule.salience(),
                evaluations: state.evaluations - ev0,
                matches: state.matched - ma0,
                firings: state.firings - fi0,
                eval_nanos: state.eval_nanos - ns0,
            })
            .collect::<Vec<_>>();
        if let Some(obs) = &mut self.obs {
            obs.publish(&rule_stats);
        }
        FiringReport {
            firings,
            log,
            budget_exhausted,
            rule_stats,
        }
    }

    /// Try to refresh a stale `when_each` match cache by re-probing only the
    /// handles mutated since the cache was computed, instead of re-scanning
    /// every fact of the watched type. Returns `false` when the rule is a
    /// join rule, the cache was never computed, or the per-type change log
    /// has been compacted past the cache's generation — the caller then
    /// falls back to a full matcher run.
    ///
    /// The merge walks the cached matches (ascending handle order — exactly
    /// what a full scan produces) and the sorted changed handles together,
    /// so the refreshed cache is byte-identical to a full re-scan.
    fn delta_refresh(
        rule: &Rule<Ctx>,
        state: &mut RuleState,
        wm: &WorkingMemory,
        ctx: &Ctx,
    ) -> bool {
        if !state.computed {
            return false;
        }
        let Some(each) = rule.each() else {
            return false;
        };
        let Some(changes) = wm.changed_since(each.type_id, state.valid_at) else {
            return false;
        };
        let mut changed: Vec<FactHandle> = changes.iter().map(|&(_, h)| h).collect();
        changed.sort_unstable();
        changed.dedup();
        if changed.is_empty() {
            return true;
        }
        let probe = &each.probe;
        let pass: Vec<bool> = changed.iter().map(|&h| (probe)(wm, ctx, h)).collect();
        let mut merged = Vec::with_capacity(state.matches.len() + changed.len());
        let mut ci = 0;
        for m in &state.matches {
            let h = m[0];
            while ci < changed.len() && changed[ci] < h {
                if pass[ci] {
                    merged.push(vec![changed[ci]]);
                }
                ci += 1;
            }
            if ci < changed.len() && changed[ci] == h {
                if pass[ci] {
                    merged.push(vec![h]);
                }
                ci += 1;
                continue;
            }
            merged.push(m.clone());
        }
        while ci < changed.len() {
            if pass[ci] {
                merged.push(vec![changed[ci]]);
            }
            ci += 1;
        }
        state.matches = merged;
        true
    }

    /// Rebuild the salience order if `add_rule` invalidated it.
    fn ensure_order(&mut self) {
        if !self.order_valid {
            self.order = (0..self.rules.len()).collect();
            self.order.sort_by_key(|&i| (-self.rules[i].salience(), i));
            self.order_valid = true;
        }
    }

    /// Find the highest-priority non-refracted activation.
    ///
    /// Semantically identical to re-matching every rule against the current
    /// memory in (salience desc, installation) order and returning the first
    /// non-refracted live tuple; the cache/dirty machinery only skips work
    /// whose outcome cannot have changed.
    fn next_activation(&mut self, ctx: &Ctx) -> Option<(usize, Match, RefractionKey)> {
        self.ensure_order();
        for oi in 0..self.order.len() {
            let idx = self.order[oi];
            let rule = &self.rules[idx];
            let state = &mut self.states[idx];
            if !state.computed || rule.watch().is_dirty(&self.wm, state.valid_at) {
                let started = Instant::now();
                if !Self::delta_refresh(rule, state, &self.wm, ctx) {
                    state.matches = rule.matches(&self.wm, ctx);
                }
                state.eval_nanos += started.elapsed().as_nanos() as u64;
                state.evaluations += 1;
                state.matched += state.matches.len() as u64;
                state.valid_at = self.wm.generation();
                state.computed = true;
                state.exhausted = false;
                state.scan_from = 0;
            } else if state.exhausted {
                continue;
            }
            let mut pos = state.scan_from;
            while pos < state.matches.len() {
                let m = &state.matches[pos];
                // A tuple containing a stale handle can arise if a matcher
                // returned handles that another firing retracted; skip it.
                if m.iter().any(|h| !self.wm.contains(*h)) {
                    pos += 1;
                    state.scan_from = pos;
                    continue;
                }
                let key = RefractionKey::new(idx, m, &self.wm);
                if self.fired.contains(&key) {
                    pos += 1;
                    state.scan_from = pos;
                    continue;
                }
                // The caller refracts this tuple before firing, so the next
                // scan may resume here.
                state.scan_from = pos;
                return Some((idx, m.clone(), key));
            }
            state.exhausted = true;
        }
        None
    }
}

impl<Ctx> Default for Session<Ctx> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::TypeId;

    #[derive(Debug)]
    struct Counter(u64);

    #[derive(Debug, PartialEq)]
    struct Item {
        priority: Option<u32>,
    }

    #[test]
    fn single_rule_fires_once_per_fact() {
        let mut s: Session<()> = Session::new();
        s.wm.insert(Item { priority: None });
        s.wm.insert(Item { priority: None });
        s.add_rule(
            Rule::new("assign")
                .when_each::<Item>(|i, _| i.priority.is_none())
                .then(|wm, _, m| {
                    wm.update::<Item>(m[0], |i| i.priority = Some(1));
                }),
        );
        let r = s.fire_all(&mut ());
        assert_eq!(r.firings, 2);
        assert!(!r.budget_exhausted);
        assert!(s.wm.iter::<Item>().all(|(_, i)| i.priority == Some(1)));
    }

    #[test]
    fn refraction_prevents_refire_on_unchanged_fact() {
        let mut s: Session<u64> = Session::new();
        s.wm.insert(Counter(0));
        // Matcher matches unconditionally; action does NOT update the fact,
        // so the rule must fire exactly once per tuple version.
        s.add_rule(
            Rule::new("observe")
                .when_each::<Counter>(|_, _| true)
                .then(|_, fired: &mut u64, _| *fired += 1),
        );
        let mut fired = 0;
        s.fire_all(&mut fired);
        assert_eq!(fired, 1);
        // A second fire_all adds nothing.
        s.fire_all(&mut fired);
        assert_eq!(fired, 1);
    }

    #[test]
    fn update_rearms_rules() {
        let mut s: Session<u64> = Session::new();
        let h = s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("observe")
                .when_each::<Counter>(|_, _| true)
                .then(|_, fired: &mut u64, _| *fired += 1),
        );
        let mut fired = 0;
        s.fire_all(&mut fired);
        s.wm.update::<Counter>(h, |c| c.0 += 1);
        s.fire_all(&mut fired);
        assert_eq!(fired, 2);
    }

    #[test]
    fn chained_rules_reach_quiescence() {
        // Rule A counts up to 5 by updating the fact; each update re-arms it.
        let mut s: Session<()> = Session::new();
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("count-to-five")
                .when_each::<Counter>(|c, _| c.0 < 5)
                .then(|wm, _, m| {
                    wm.update::<Counter>(m[0], |c| c.0 += 1);
                }),
        );
        let r = s.fire_all(&mut ());
        assert_eq!(r.firings, 5);
        let (_, c) = s.wm.find::<Counter>(|_| true).unwrap();
        assert_eq!(c.0, 5);
    }

    #[test]
    fn salience_orders_firing() {
        let mut s: Session<Vec<&'static str>> = Session::new().with_firing_log();
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("low")
                .salience(1)
                .when_each::<Counter>(|_, _| true)
                .then(|_, log: &mut Vec<&'static str>, _| log.push("low")),
        );
        s.add_rule(
            Rule::new("high")
                .salience(10)
                .when_each::<Counter>(|_, _| true)
                .then(|_, log: &mut Vec<&'static str>, _| log.push("high")),
        );
        let mut log = Vec::new();
        let report = s.fire_all(&mut log);
        assert_eq!(log, vec!["high", "low"]);
        let logged: Vec<&str> = report.log.iter().map(|n| n.as_ref()).collect();
        assert_eq!(logged, vec!["high", "low"]);
    }

    #[test]
    fn equal_salience_fires_in_installation_order() {
        let mut s: Session<Vec<&'static str>> = Session::new();
        s.wm.insert(Counter(0));
        for name in ["first", "second", "third"] {
            s.add_rule(
                Rule::new(name)
                    .when_each::<Counter>(|_, _| true)
                    .then(move |_, log: &mut Vec<&'static str>, _| log.push(name)),
            );
        }
        let mut log = Vec::new();
        s.fire_all(&mut log);
        assert_eq!(log, vec!["first", "second", "third"]);
    }

    #[test]
    fn budget_stops_runaway_rules() {
        let mut s: Session<()> = Session::new().with_max_firings(50);
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("forever")
                .when_each::<Counter>(|_, _| true)
                .then(|wm, _, m| {
                    wm.update::<Counter>(m[0], |c| c.0 += 1);
                }),
        );
        let r = s.fire_all(&mut ());
        assert_eq!(r.firings, 50);
        assert!(r.budget_exhausted);
    }

    #[test]
    fn retraction_by_one_rule_hides_fact_from_others() {
        let mut s: Session<u64> = Session::new();
        s.wm.insert(Item { priority: None });
        s.add_rule(
            Rule::new("delete-unprioritized")
                .salience(10)
                .when_each::<Item>(|i, _| i.priority.is_none())
                .then(|wm, _, m| {
                    wm.retract(m[0]);
                }),
        );
        s.add_rule(
            Rule::new("count-items")
                .when_each::<Item>(|_, _| true)
                .then(|_, seen: &mut u64, _| *seen += 1),
        );
        let mut seen = 0;
        s.fire_all(&mut seen);
        assert_eq!(seen, 0, "lower-salience rule saw a retracted fact");
    }

    #[test]
    fn reset_refraction_allows_refire() {
        let mut s: Session<u64> = Session::new();
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("observe")
                .when_each::<Counter>(|_, _| true)
                .then(|_, fired: &mut u64, _| *fired += 1),
        );
        let mut fired = 0;
        s.fire_all(&mut fired);
        s.reset_refraction();
        s.fire_all(&mut fired);
        assert_eq!(fired, 2);
    }

    #[test]
    fn gc_refraction_drops_stale_entries() {
        let mut s: Session<()> = Session::new();
        let h = s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("noop")
                .when_each::<Counter>(|_, _| true)
                .then(|_, _, _| {}),
        );
        s.fire_all(&mut ());
        assert_eq!(s.fired.len(), 1);
        s.wm.retract(h);
        s.gc_refraction();
        assert!(s.fired.is_empty());
    }

    #[test]
    fn when_once_rule_fires_single_time() {
        let mut s: Session<u64> = Session::new();
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("setup")
                .when_once(|wm, _| wm.count::<Counter>() > 0)
                .then(|_, fired: &mut u64, _| *fired += 1),
        );
        let mut fired = 0;
        s.fire_all(&mut fired);
        s.fire_all(&mut fired);
        assert_eq!(fired, 1);
    }

    #[test]
    fn two_fact_join_rule() {
        // Pair every Counter with every Item: a 2-tuple match.
        let mut s: Session<u64> = Session::new();
        s.wm.insert(Counter(1));
        s.wm.insert(Counter(2));
        s.wm.insert(Item { priority: None });
        s.add_rule(
            Rule::new("join")
                .when(|wm, _| {
                    let mut out = Vec::new();
                    for (ch, _) in wm.iter::<Counter>() {
                        for (ih, _) in wm.iter::<Item>() {
                            out.push(vec![ch, ih]);
                        }
                    }
                    out
                })
                .then(|_, pairs: &mut u64, _| *pairs += 1),
        );
        let mut pairs = 0;
        s.fire_all(&mut pairs);
        assert_eq!(pairs, 2);
    }

    #[test]
    fn log_is_off_by_default_but_firings_still_counted() {
        let mut s: Session<()> = Session::new();
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("noop")
                .when_each::<Counter>(|_, _| true)
                .then(|_, _, _| {}),
        );
        let r = s.fire_all(&mut ());
        assert_eq!(r.firings, 1);
        assert!(r.log.is_empty());
    }

    #[test]
    fn clean_type_rules_are_not_reevaluated() {
        let mut s: Session<()> = Session::new();
        s.wm.insert(Counter(0));
        s.wm.insert(Item { priority: None });
        s.add_rule(
            Rule::new("counters")
                .when_each::<Counter>(|_, _| true)
                .then(|_, _, _| {}),
        );
        s.add_rule(
            Rule::new("items")
                .when_each::<Item>(|_, _| true)
                .then(|_, _, _| {}),
        );
        s.fire_all(&mut ());
        let before = s.rule_stats();
        // Mutating only Item must leave the Counter rule's matcher untouched.
        s.wm.insert(Item { priority: Some(2) });
        let report = s.fire_all(&mut ());
        assert_eq!(report.firings, 1);
        let after = s.rule_stats();
        assert_eq!(
            after[0].evaluations, before[0].evaluations,
            "Counter rule re-evaluated while its watched type was clean"
        );
        assert!(after[1].evaluations > before[1].evaluations);
        // The per-run report shows the same: zero evaluations for the clean
        // rule, at least one for the dirty rule.
        assert_eq!(report.rule_stats[0].evaluations, 0);
        assert!(report.rule_stats[1].evaluations >= 1);
        assert_eq!(report.rule_stats[1].firings, 1);
    }

    #[test]
    fn rule_stats_report_names_and_counts() {
        let mut s: Session<()> = Session::new();
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("noop")
                .when_each::<Counter>(|_, _| true)
                .then(|_, _, _| {}),
        );
        s.fire_all(&mut ());
        let stats = s.rule_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].name.as_ref(), "noop");
        assert_eq!(stats[0].firings, 1);
        assert!(stats[0].evaluations >= 1);
        assert!(stats[0].matches >= 1);
    }

    #[test]
    fn invalidate_agenda_picks_up_ctx_changes() {
        // Matchers read ctx but the engine (like Drools globals) does not
        // watch it; invalidate_agenda is the explicit re-arm.
        let mut s: Session<i64> = Session::new();
        s.wm.insert(Counter(5));
        s.add_rule(
            Rule::new("above-threshold")
                .when_each::<Counter>(|c, threshold| (c.0 as i64) > *threshold)
                .then(|_, _, _| {}),
        );
        let mut threshold = 10;
        assert_eq!(s.fire_all(&mut threshold).firings, 0);
        threshold = 3;
        assert_eq!(
            s.fire_all(&mut threshold).firings,
            0,
            "ctx changes alone must not re-activate (Drools globals)"
        );
        s.invalidate_agenda();
        assert_eq!(s.fire_all(&mut threshold).firings, 1);
    }

    #[test]
    fn maybe_gc_keeps_fired_set_bounded() {
        let mut s: Session<()> = Session::new();
        s.add_rule(
            Rule::new("noop")
                .when_each::<Counter>(|_, _| true)
                .then(|_, _, _| {}),
        );
        for i in 0..600 {
            let h = s.wm.insert(Counter(i));
            s.fire_all(&mut ());
            s.wm.retract(h);
            s.maybe_gc_refraction();
        }
        assert!(
            s.fired.len() < 600,
            "watermark GC never swept ({} entries)",
            s.fired.len()
        );
    }

    #[test]
    fn wide_join_tuples_use_heap_keys() {
        // A 3-fact join exceeds the inline key capacity; refraction must
        // still hold (fires once per distinct triple).
        let mut s: Session<u64> = Session::new();
        s.wm.insert(Counter(1));
        s.wm.insert(Counter(2));
        s.wm.insert(Counter(3));
        s.add_rule(
            Rule::new("triple")
                .when(|wm, _| {
                    let hs = wm.handles::<Counter>();
                    if hs.len() == 3 {
                        vec![hs]
                    } else {
                        vec![]
                    }
                })
                .then(|_, fired: &mut u64, _| *fired += 1),
        );
        let mut fired = 0;
        s.fire_all(&mut fired);
        s.fire_all(&mut fired);
        assert_eq!(fired, 1);
        assert!(s
            .fired
            .iter()
            .all(|k| matches!(k, RefractionKey::Heap { .. })));
        assert_eq!(s.fired.iter().next().unwrap().facts().len(), 3);
    }

    #[test]
    fn registry_counters_track_rule_activity() {
        let registry = Registry::new();
        let mut s: Session<()> = Session::new();
        s.set_obs(registry.clone(), &[("session", "default")]);
        s.wm.insert(Counter(0));
        s.add_rule(
            Rule::new("observe")
                .when_each::<Counter>(|_, _| true)
                .then(|_, _, _| {}),
        );
        s.fire_all(&mut ());
        s.fire_all(&mut ()); // quiescent: no new firings
        let text = registry.render_prometheus();
        assert!(
            text.contains("pwm_rules_firings_total{rule=\"observe\",session=\"default\"} 1"),
            "unexpected exposition:\n{text}"
        );
        assert!(text.contains("pwm_rules_evaluations_total{rule=\"observe\",session=\"default\"}"));
        assert!(text.contains("pwm_rules_matches_total{rule=\"observe\",session=\"default\"} 1"));
    }

    #[test]
    fn declared_join_watch_reacts_to_both_types() {
        // A join rule with explicit watches must re-arm when either watched
        // type changes, and must not when an unrelated type changes.
        #[derive(Debug)]
        struct Unrelated;
        let mut s: Session<u64> = Session::new();
        let ch = s.wm.insert(Counter(1));
        s.wm.insert(Item { priority: None });
        s.add_rule(
            Rule::new("join")
                .watches::<Counter>()
                .watches::<Item>()
                .when(|wm, _| {
                    let mut out = Vec::new();
                    for (c, _) in wm.iter::<Counter>() {
                        for (i, _) in wm.iter::<Item>() {
                            out.push(vec![c, i]);
                        }
                    }
                    out
                })
                .then(|_, fired: &mut u64, _| *fired += 1),
        );
        assert_eq!(
            s.rules[0].watch(),
            &crate::rule::Watch::Types(vec![TypeId::of::<Counter>(), TypeId::of::<Item>()])
        );
        let mut fired = 0;
        s.fire_all(&mut fired);
        assert_eq!(fired, 1);
        let evals_before = s.rule_stats()[0].evaluations;
        s.wm.insert(Unrelated);
        s.fire_all(&mut fired);
        assert_eq!(fired, 1);
        assert_eq!(
            s.rule_stats()[0].evaluations,
            evals_before,
            "unrelated type dirtied a declared join watch"
        );
        s.wm.update::<Counter>(ch, |c| c.0 += 1);
        s.fire_all(&mut fired);
        assert_eq!(fired, 2, "updating a watched join input must re-arm");
    }
}
