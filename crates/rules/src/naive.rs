//! Reference evaluator for equivalence testing.
//!
//! [`NaiveSession`] is the pre-incremental engine kept verbatim: every call
//! to `next_activation` re-evaluates every rule's matcher against the
//! current working memory and re-sorts the salience order. It is the oracle
//! the incremental agenda in [`crate::engine`] is tested against — randomized
//! scripts of inserts/updates/retracts/firings must produce bit-identical
//! firing sequences and final memory state on both engines.
//!
//! Test-only: compiled under `#[cfg(test)]` from `lib.rs`.

use crate::memory::{FactHandle, WorkingMemory};
use crate::rule::{Match, Rule};
use std::collections::HashSet;

type RefractionKey = (usize, Vec<(FactHandle, u64)>);

/// Firing outcome mirroring `FiringReport`, with owned-name log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct NaiveReport {
    pub firings: usize,
    pub log: Vec<String>,
    pub budget_exhausted: bool,
}

/// The O(firings × rules × facts) engine this crate used to ship.
pub(crate) struct NaiveSession<Ctx> {
    pub wm: WorkingMemory,
    rules: Vec<Rule<Ctx>>,
    fired: HashSet<RefractionKey>,
    max_firings: usize,
}

impl<Ctx> NaiveSession<Ctx> {
    pub fn new() -> Self {
        NaiveSession {
            wm: WorkingMemory::new(),
            rules: Vec::new(),
            fired: HashSet::new(),
            max_firings: 100_000,
        }
    }

    pub fn with_max_firings(mut self, max: usize) -> Self {
        self.max_firings = max.max(1);
        self
    }

    pub fn add_rule(&mut self, rule: Rule<Ctx>) {
        self.rules.push(rule);
    }

    pub fn reset_refraction(&mut self) {
        self.fired.clear();
    }

    pub fn gc_refraction(&mut self) {
        let wm = &self.wm;
        self.fired
            .retain(|(_, tuple)| tuple.iter().all(|(h, _)| wm.contains(*h)));
    }

    pub fn fire_all(&mut self, ctx: &mut Ctx) -> NaiveReport {
        let mut report = NaiveReport {
            firings: 0,
            log: Vec::new(),
            budget_exhausted: false,
        };
        while report.firings < self.max_firings {
            match self.next_activation(ctx) {
                Some((rule_idx, m, key)) => {
                    self.fired.insert(key);
                    let rule = &mut self.rules[rule_idx];
                    report.log.push(rule.name().to_string());
                    rule.fire(&mut self.wm, ctx, &m);
                    report.firings += 1;
                }
                None => return report,
            }
        }
        report.budget_exhausted = true;
        report
    }

    fn next_activation(&self, ctx: &Ctx) -> Option<(usize, Match, RefractionKey)> {
        let mut order: Vec<usize> = (0..self.rules.len()).collect();
        order.sort_by_key(|&i| (-self.rules[i].salience(), i));
        for idx in order {
            let rule = &self.rules[idx];
            for m in rule.matches(&self.wm, ctx) {
                if m.iter().any(|h| !self.wm.contains(*h)) {
                    continue;
                }
                let key: Vec<(FactHandle, u64)> = m
                    .iter()
                    .map(|h| (*h, self.wm.version(*h).unwrap_or(0)))
                    .collect();
                let full_key = (idx, key);
                if !self.fired.contains(&full_key) {
                    return Some((idx, m, full_key));
                }
            }
        }
        None
    }
}

/// Randomized equivalence: the incremental agenda must be observationally
/// identical to the naive engine on arbitrary fact/firing scripts.
mod equivalence {
    use super::NaiveSession;
    use crate::engine::Session;
    use crate::memory::FactHandle;
    use crate::rule::Rule;
    use proptest::prelude::*;

    #[derive(Debug)]
    struct A(u32);

    #[derive(Debug)]
    struct B(u32);

    type Ctx = Vec<String>;

    /// One step of a random session script. Handle-indexed ops address the
    /// i-th handle ever inserted (possibly already retracted — both engines
    /// must agree on the resulting no-op too).
    #[derive(Debug, Clone)]
    enum Op {
        InsertA(u32),
        InsertB(u32),
        UpdateA(usize),
        UpdateB(usize),
        Retract(usize),
        Fire,
        ResetRefraction,
        GcRefraction,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u8..8, 0u32..12).prop_map(|(tag, n)| match tag {
            0 => Op::InsertA(n),
            1 => Op::InsertB(n),
            2 => Op::UpdateA(n as usize),
            3 => Op::UpdateB(n as usize),
            4 => Op::Retract(n as usize),
            5 => Op::ResetRefraction,
            6 => Op::GcRefraction,
            _ => Op::Fire,
        })
    }

    /// The shared rule set, exercising every matcher form: chaining
    /// `when_each`, a declared-watch two-type join, a high-salience
    /// retraction rule, a `when_once`, and a negative-salience observer.
    /// Installed identically into both engines.
    fn install_rules(add: &mut dyn FnMut(Rule<Ctx>)) {
        add(Rule::new("bump-small-a")
            .salience(5)
            .when_each::<A>(|a, _| a.0 < 3)
            .then(|wm, ctx: &mut Ctx, m| {
                wm.update::<A>(m[0], |a| a.0 += 1);
                ctx.push("bump".into());
            }));
        add(Rule::new("retract-large-b")
            .salience(8)
            .when_each::<B>(|b, _| b.0 >= 10)
            .then(|wm, ctx: &mut Ctx, m| {
                wm.retract(m[0]);
                ctx.push("retract".into());
            }));
        add(Rule::new("parity-join")
            .watches::<A>()
            .watches::<B>()
            .when(|wm, _| {
                let mut out = Vec::new();
                for (ah, a) in wm.iter::<A>() {
                    for (bh, b) in wm.iter::<B>() {
                        if a.0 % 2 == b.0 % 2 {
                            out.push(vec![ah, bh]);
                        }
                    }
                }
                out
            })
            .then(|wm, ctx: &mut Ctx, m| {
                wm.update::<B>(m[1], |b| {
                    if b.0 < 8 {
                        b.0 += 2;
                    }
                });
                ctx.push("join".into());
            }));
        add(Rule::new("once-any-a")
            .when_once(|wm, _| wm.count::<A>() > 0)
            .then(|_, ctx: &mut Ctx, _| ctx.push("once".into())));
        add(Rule::new("observe-a")
            .salience(-1)
            .when_each::<A>(|_, _| true)
            .then(|_, ctx: &mut Ctx, _| ctx.push("observe".into())));
    }

    fn dump(wm: &crate::memory::WorkingMemory) -> Vec<(u64, String)> {
        let mut out: Vec<(u64, String)> = wm
            .iter::<A>()
            .map(|(h, a)| (h.0, format!("{a:?}")))
            .chain(wm.iter::<B>().map(|(h, b)| (h.0, format!("{b:?}"))))
            .collect();
        out.sort();
        out
    }

    proptest! {
        #[test]
        fn incremental_matches_naive_on_random_scripts(
            ops in proptest::collection::vec(op_strategy(), 0..40)
        ) {
            let mut inc: Session<Ctx> = Session::new().with_max_firings(100).with_firing_log();
            let mut nai: NaiveSession<Ctx> = NaiveSession::new().with_max_firings(100);
            install_rules(&mut |r| inc.add_rule(r));
            install_rules(&mut |r| nai.add_rule(r));
            let mut ctx_inc: Ctx = Vec::new();
            let mut ctx_nai: Ctx = Vec::new();
            // Both sessions start empty and see the same inserts, so handle
            // values line up; indexed ops address the i-th insertion.
            let mut handles: Vec<FactHandle> = Vec::new();
            for op in &ops {
                match op {
                    Op::InsertA(n) => {
                        let h = inc.wm.insert(A(*n));
                        let h2 = nai.wm.insert(A(*n));
                        prop_assert_eq!(h, h2);
                        handles.push(h);
                    }
                    Op::InsertB(n) => {
                        let h = inc.wm.insert(B(*n));
                        let h2 = nai.wm.insert(B(*n));
                        prop_assert_eq!(h, h2);
                        handles.push(h);
                    }
                    Op::UpdateA(i) => {
                        if let Some(&h) = handles.get(i % handles.len().max(1)) {
                            let a = inc.wm.update::<A>(h, |a| a.0 += 1);
                            let b = nai.wm.update::<A>(h, |a| a.0 += 1);
                            prop_assert_eq!(a, b);
                        }
                    }
                    Op::UpdateB(i) => {
                        if let Some(&h) = handles.get(i % handles.len().max(1)) {
                            let a = inc.wm.update::<B>(h, |b| b.0 += 1);
                            let b = nai.wm.update::<B>(h, |b| b.0 += 1);
                            prop_assert_eq!(a, b);
                        }
                    }
                    Op::Retract(i) => {
                        if let Some(&h) = handles.get(i % handles.len().max(1)) {
                            let a = inc.wm.retract(h);
                            let b = nai.wm.retract(h);
                            prop_assert_eq!(a, b);
                        }
                    }
                    Op::Fire => {
                        let ri = inc.fire_all(&mut ctx_inc);
                        let rn = nai.fire_all(&mut ctx_nai);
                        prop_assert_eq!(ri.firings, rn.firings);
                        prop_assert_eq!(ri.budget_exhausted, rn.budget_exhausted);
                        let inc_log: Vec<&str> = ri.log.iter().map(|n| n.as_ref()).collect();
                        let nai_log: Vec<&str> = rn.log.iter().map(|n| n.as_str()).collect();
                        prop_assert_eq!(inc_log, nai_log, "firing sequences diverged");
                    }
                    Op::ResetRefraction => {
                        inc.reset_refraction();
                        nai.reset_refraction();
                    }
                    Op::GcRefraction => {
                        inc.gc_refraction();
                        nai.gc_refraction();
                    }
                }
            }
            // Drain to quiescence, then compare every observable.
            let ri = inc.fire_all(&mut ctx_inc);
            let rn = nai.fire_all(&mut ctx_nai);
            prop_assert_eq!(ri.firings, rn.firings);
            prop_assert_eq!(&ctx_inc, &ctx_nai, "action effects on ctx diverged");
            prop_assert_eq!(dump(&inc.wm), dump(&nai.wm), "final memories diverged");
        }
    }
}
