//! Typed queries and aggregations over working memory.
//!
//! Drools exposes queries alongside rules; these helpers give callers (the
//! Policy Service snapshot, tests, monitoring endpoints) the same
//! capabilities over [`WorkingMemory`] without writing iterator chains at
//! every call site.

use crate::memory::{Fact, FactHandle, WorkingMemory};
use std::collections::BTreeMap;

/// Count facts of type `T` matching a predicate.
pub fn count_where<T: Fact>(wm: &WorkingMemory, pred: impl Fn(&T) -> bool) -> usize {
    wm.iter::<T>().filter(|(_, t)| pred(t)).count()
}

/// Sum a projection over all facts of type `T`.
pub fn sum_by<T: Fact>(wm: &WorkingMemory, f: impl Fn(&T) -> f64) -> f64 {
    wm.iter::<T>().map(|(_, t)| f(t)).sum()
}

/// Group fact handles of type `T` by a key projection.
pub fn group_by<T: Fact, K: Ord>(
    wm: &WorkingMemory,
    key: impl Fn(&T) -> K,
) -> BTreeMap<K, Vec<FactHandle>> {
    let mut groups: BTreeMap<K, Vec<FactHandle>> = BTreeMap::new();
    for (h, t) in wm.iter::<T>() {
        groups.entry(key(t)).or_default().push(h);
    }
    groups
}

/// The fact of type `T` maximizing a projection (ties: first inserted).
pub fn max_by<T: Fact, K: PartialOrd>(
    wm: &WorkingMemory,
    f: impl Fn(&T) -> K,
) -> Option<(FactHandle, &T)> {
    let mut best: Option<(FactHandle, &T, K)> = None;
    for (h, t) in wm.iter::<T>() {
        let k = f(t);
        match &best {
            Some((_, _, bk)) if k <= *bk => {}
            _ => best = Some((h, t, k)),
        }
    }
    best.map(|(h, t, _)| (h, t))
}

/// True when any fact of type `T` matches the predicate.
pub fn exists<T: Fact>(wm: &WorkingMemory, pred: impl Fn(&T) -> bool) -> bool {
    wm.iter::<T>().any(|(_, t)| pred(t))
}

/// Collect owned projections from all facts of type `T`, in insertion order.
pub fn select<T: Fact, R>(wm: &WorkingMemory, f: impl Fn(&T) -> R) -> Vec<R> {
    wm.iter::<T>().map(|(_, t)| f(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Transfer {
        host: &'static str,
        streams: u32,
        done: bool,
    }

    fn memory() -> WorkingMemory {
        let mut wm = WorkingMemory::new();
        wm.insert(Transfer {
            host: "a",
            streams: 4,
            done: false,
        });
        wm.insert(Transfer {
            host: "b",
            streams: 8,
            done: true,
        });
        wm.insert(Transfer {
            host: "a",
            streams: 2,
            done: false,
        });
        wm
    }

    #[test]
    fn count_where_filters() {
        let wm = memory();
        assert_eq!(count_where::<Transfer>(&wm, |t| !t.done), 2);
        assert_eq!(count_where::<Transfer>(&wm, |t| t.streams > 10), 0);
    }

    #[test]
    fn sum_by_projects() {
        let wm = memory();
        assert_eq!(sum_by::<Transfer>(&wm, |t| t.streams as f64), 14.0);
    }

    #[test]
    fn group_by_key() {
        let wm = memory();
        let groups = group_by::<Transfer, _>(&wm, |t| t.host);
        assert_eq!(groups["a"].len(), 2);
        assert_eq!(groups["b"].len(), 1);
    }

    #[test]
    fn max_by_projection() {
        let wm = memory();
        let (_, t) = max_by::<Transfer, _>(&wm, |t| t.streams).unwrap();
        assert_eq!(t.streams, 8);
        let empty = WorkingMemory::new();
        assert!(max_by::<Transfer, _>(&empty, |t| t.streams).is_none());
    }

    #[test]
    fn exists_and_select() {
        let wm = memory();
        assert!(exists::<Transfer>(&wm, |t| t.done));
        assert!(!exists::<Transfer>(&wm, |t| t.streams == 99));
        assert_eq!(select::<Transfer, _>(&wm, |t| t.streams), vec![4, 8, 2]);
    }
}
