//! Typed working memory, arena edition.
//!
//! Drools sessions hold *facts*; rules pattern-match over them and mutate
//! them. [`WorkingMemory`] is the Rust equivalent: a deterministic store of
//! heterogeneous fact values addressed by [`FactHandle`], with per-fact
//! version counters that drive the engine's refraction logic (a rule does
//! not re-fire on a fact tuple until one of its facts changes).
//!
//! Facts live in *typed slabs*: one generational arena per fact type, each
//! slot carrying the value inline plus an intrusive insertion-order list, so
//! iteration and indexed lookups walk contiguous typed storage with **one**
//! `TypeId` dispatch per call instead of one `Box<dyn Fact>` pointer chase
//! and `downcast_ref` per fact. Slots are recycled through a free list; every
//! recycle bumps the slot's generation, which is what makes [`FactId`] — a
//! typed `(slot, generation)` pair — immune to the ABA problem: a probe
//! through a stale id sees the generation mismatch and returns `None`, never
//! another fact that happens to reuse the slot.
//!
//! Iteration order is insertion order (handles are monotonically increasing
//! and the per-slab list appends at the tail), so rule evaluation is
//! reproducible and exactly matches the legacy `BTreeMap` store, which is
//! preserved as [`crate::legacy::LegacyWorkingMemory`] behind the
//! `legacy-facts` feature to serve as the differential-test oracle.

use std::any::{Any, TypeId};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;

/// Marker trait for values storable in working memory.
///
/// Blanket-implemented for every `'static + Debug` type; you never implement
/// it by hand.
pub trait Fact: Any + fmt::Debug + Send {
    /// Upcast to `&dyn Any` (object-safe downcasting support).
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any + fmt::Debug + Send> Fact for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Stable identifier of one fact in a [`WorkingMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactHandle(pub u64);

/// Sentinel slot index for "no slot" in the intrusive lists.
const NIL: u32 = u32::MAX;

/// Typed generational id of one fact: arena slot plus the slot's generation
/// at issue time. Unlike [`FactHandle`] (which routes through a hash lookup
/// and works for any type), a `FactId<T>` indexes its typed slab directly —
/// and it can never resurrect: retracting the fact bumps the slot
/// generation, so probing a stale id returns `None` even after the slot is
/// recycled for a new fact.
pub struct FactId<T> {
    slot: u32,
    gen: u32,
    _marker: PhantomData<fn() -> T>,
}

// Manual impls: derives would demand `T: Copy` etc., but the id itself is
// always a plain (u32, u32) regardless of the fact type.
impl<T> Clone for FactId<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for FactId<T> {}
impl<T> PartialEq for FactId<T> {
    fn eq(&self, other: &Self) -> bool {
        self.slot == other.slot && self.gen == other.gen
    }
}
impl<T> Eq for FactId<T> {}
impl<T> Hash for FactId<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.slot.hash(state);
        self.gen.hash(state);
    }
}
impl<T> fmt::Debug for FactId<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "FactId<{}>({}g{})",
            std::any::type_name::<T>(),
            self.slot,
            self.gen
        )
    }
}

/// One arena slot: either a live fact with its intrusive-list links or a
/// link in the free list. `gen` increments each time the slot is vacated.
struct ArenaSlot<T> {
    gen: u32,
    state: SlotState<T>,
}

enum SlotState<T> {
    Occupied {
        value: T,
        handle: FactHandle,
        version: u64,
        prev: u32,
        next: u32,
    },
    Free {
        next_free: u32,
    },
}

/// Generational arena of all facts of one type, threaded with an intrusive
/// doubly-linked list in insertion order (appends at the tail). Handles are
/// monotone, facts are never re-inserted under an old handle, so list order
/// is also ascending-handle order — the iteration contract the engine's
/// match caches rely on.
struct TypedSlab<T> {
    slots: Vec<ArenaSlot<T>>,
    free_head: u32,
    head: u32,
    tail: u32,
    len: usize,
}

impl<T> TypedSlab<T> {
    fn new() -> Self {
        TypedSlab {
            slots: Vec::new(),
            free_head: NIL,
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Place `value` in a slot (recycling the free list) and link it at the
    /// tail of the insertion-order list.
    fn alloc(&mut self, value: T, handle: FactHandle) -> u32 {
        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            let SlotState::Free { next_free } = self.slots[slot as usize].state else {
                unreachable!("free list points at occupied slot");
            };
            self.free_head = next_free;
            self.slots[slot as usize].state = SlotState::Occupied {
                value,
                handle,
                version: 0,
                prev: self.tail,
                next: NIL,
            };
            slot
        } else {
            let slot = self.slots.len() as u32;
            assert!(slot != NIL, "typed slab exhausted u32 slot space");
            self.slots.push(ArenaSlot {
                gen: 0,
                state: SlotState::Occupied {
                    value,
                    handle,
                    version: 0,
                    prev: self.tail,
                    next: NIL,
                },
            });
            slot
        };
        if self.tail != NIL {
            let SlotState::Occupied { next, .. } = &mut self.slots[self.tail as usize].state else {
                unreachable!("tail points at free slot");
            };
            *next = slot;
        } else {
            self.head = slot;
        }
        self.tail = slot;
        self.len += 1;
        slot
    }

    /// Unlink and vacate `slot`, bumping its generation so stale
    /// [`FactId`]s miss. Returns the evicted value.
    fn remove(&mut self, slot: u32) -> T {
        let state = std::mem::replace(
            &mut self.slots[slot as usize].state,
            SlotState::Free {
                next_free: self.free_head,
            },
        );
        let SlotState::Occupied {
            value, prev, next, ..
        } = state
        else {
            unreachable!("remove of free slot");
        };
        if prev != NIL {
            let SlotState::Occupied { next: n, .. } = &mut self.slots[prev as usize].state else {
                unreachable!("prev points at free slot");
            };
            *n = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            let SlotState::Occupied { prev: p, .. } = &mut self.slots[next as usize].state else {
                unreachable!("next points at free slot");
            };
            *p = prev;
        } else {
            self.tail = prev;
        }
        self.slots[slot as usize].gen = self.slots[slot as usize].gen.wrapping_add(1);
        self.free_head = slot;
        self.len -= 1;
        value
    }

    fn value(&self, slot: u32) -> &T {
        match &self.slots[slot as usize].state {
            SlotState::Occupied { value, .. } => value,
            SlotState::Free { .. } => unreachable!("value of free slot"),
        }
    }

    fn value_mut(&mut self, slot: u32) -> &mut T {
        match &mut self.slots[slot as usize].state {
            SlotState::Occupied { value, .. } => value,
            SlotState::Free { .. } => unreachable!("value_mut of free slot"),
        }
    }

    fn version(&self, slot: u32) -> u64 {
        match &self.slots[slot as usize].state {
            SlotState::Occupied { version, .. } => *version,
            SlotState::Free { .. } => unreachable!("version of free slot"),
        }
    }

    fn bump_version(&mut self, slot: u32) {
        match &mut self.slots[slot as usize].state {
            SlotState::Occupied { version, .. } => *version += 1,
            SlotState::Free { .. } => unreachable!("bump_version of free slot"),
        }
    }

    fn generation_of(&self, slot: u32) -> u32 {
        self.slots[slot as usize].gen
    }

    /// Generation-checked probe: `Some` only while the slot still holds the
    /// fact the id was issued for.
    fn value_checked(&self, slot: u32, gen: u32) -> Option<&T> {
        let s = self.slots.get(slot as usize)?;
        if s.gen != gen {
            return None;
        }
        match &s.state {
            SlotState::Occupied { value, .. } => Some(value),
            SlotState::Free { .. } => None,
        }
    }

    /// Insertion-order walk yielding `(handle, slot, &value)`.
    fn iter_slots(&self) -> impl Iterator<Item = (FactHandle, u32, &T)> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                return None;
            }
            let slot = cur;
            let SlotState::Occupied {
                value,
                handle,
                next,
                ..
            } = &self.slots[slot as usize].state
            else {
                unreachable!("insertion list points at free slot");
            };
            cur = *next;
            Some((*handle, slot, value))
        })
    }
}

/// Object-safe face of a [`TypedSlab`], so [`WorkingMemory`] can hold slabs
/// of arbitrary fact types and service untyped operations (retract,
/// version queries) without knowing `T`.
trait ErasedSlab: Send {
    fn remove_slot(&mut self, slot: u32);
    fn version_of(&self, slot: u32) -> u64;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Fact> ErasedSlab for TypedSlab<T> {
    fn remove_slot(&mut self, slot: u32) {
        let _ = self.remove(slot);
    }
    fn version_of(&self, slot: u32) -> u64 {
        self.version(slot)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Where one handle's fact lives: which typed slab, and which slot in it.
#[derive(Clone, Copy)]
struct HandleEntry {
    type_id: TypeId,
    slot: u32,
}

/// Type-erased secondary index, maintained on every insert/update/retract.
/// The concrete type is always [`KeyIndex<T, K>`]; erasure lets
/// [`WorkingMemory`] hold indexes over arbitrary fact/key type pairs. The
/// callbacks carry the fact's arena slot so lookups can later jump straight
/// into the typed slab.
trait ErasedIndex: Send {
    fn on_insert(&mut self, handle: FactHandle, slot: u32, fact: &dyn Any);
    fn on_remove(&mut self, handle: FactHandle);
    /// Re-key after an in-place mutation. The index keeps a reverse map of
    /// each handle's current key, so an update whose key did not change is a
    /// cheap compare instead of a remove + insert.
    fn on_update(&mut self, handle: FactHandle, slot: u32, fact: &dyn Any);
    fn as_any(&self) -> &dyn Any;
}

/// Hash index from an extracted key to the handles bearing it — the alpha
/// memory of a Rete network: equality joins probe this instead of scanning
/// every fact of the type. Each posting also records the fact's arena slot,
/// so [`WorkingMemory::iter_by`] resolves facts by direct slab indexing:
/// one slab downcast per *call*, zero downcasts per fact. Postings are
/// handle-ordered, so indexed lookups see facts in the same insertion order
/// as [`WorkingMemory::iter`].
struct KeyIndex<T: Fact, K: Eq + Hash + Clone + Send + 'static> {
    extract: fn(&T) -> K,
    /// key → (handle → slot), handle-ascending.
    map: HashMap<K, BTreeMap<FactHandle, u32>>,
    /// Each indexed handle's current key, so removals and no-op re-keys
    /// never re-extract from a stale fact value.
    back: HashMap<FactHandle, K>,
}

impl<T: Fact, K: Eq + Hash + Clone + Send + 'static> KeyIndex<T, K> {
    fn link(&mut self, handle: FactHandle, slot: u32, key: K) {
        self.map
            .entry(key.clone())
            .or_default()
            .insert(handle, slot);
        self.back.insert(handle, key);
    }

    fn unlink(&mut self, handle: FactHandle) {
        if let Some(key) = self.back.remove(&handle) {
            if let Some(set) = self.map.get_mut(&key) {
                set.remove(&handle);
                if set.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }
}

impl<T: Fact, K: Eq + Hash + Clone + Send + 'static> ErasedIndex for KeyIndex<T, K> {
    fn on_insert(&mut self, handle: FactHandle, slot: u32, fact: &dyn Any) {
        let t = fact.downcast_ref::<T>().expect("index fact type");
        self.link(handle, slot, (self.extract)(t));
    }

    fn on_remove(&mut self, handle: FactHandle) {
        self.unlink(handle);
    }

    fn on_update(&mut self, handle: FactHandle, slot: u32, fact: &dyn Any) {
        let t = fact.downcast_ref::<T>().expect("index fact type");
        let key = (self.extract)(t);
        if self.back.get(&handle) == Some(&key) {
            return;
        }
        self.unlink(handle);
        self.link(handle, slot, key);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Per-type log of recently mutated handles, driving the engine's delta
/// re-evaluation of single-type rules: instead of re-scanning every fact of
/// a watched type after a mutation, a rule asks which handles changed since
/// its cache was computed and re-probes only those.
#[derive(Default)]
pub(crate) struct TypeLog {
    /// `(generation, handle)` in ascending generation order. A handle may
    /// appear many times; readers dedup.
    entries: Vec<(u64, FactHandle)>,
    /// Highest generation already compacted away. A reader whose cache
    /// predates the floor must fall back to a full re-scan.
    floor: u64,
}

/// Entries a [`TypeLog`] holds before compaction drops its older half.
const TYPE_LOG_CAP: usize = 1024;

impl TypeLog {
    pub(crate) fn push(&mut self, gen: u64, handle: FactHandle) {
        // Collapse repeated mutations of the same fact (the common shape:
        // one fact updated several times in a firing cascade).
        if let Some(last) = self.entries.last_mut() {
            if last.1 == handle {
                last.0 = gen;
                return;
            }
        }
        if self.entries.len() >= TYPE_LOG_CAP {
            let drop = self.entries.len() / 2;
            self.floor = self.entries[drop - 1].0;
            self.entries.drain(..drop);
        }
        self.entries.push((gen, handle));
    }

    /// Handles mutated at generations strictly after `gen`, oldest first, or
    /// `None` if the log no longer reaches back that far.
    pub(crate) fn since(&self, gen: u64) -> Option<&[(u64, FactHandle)]> {
        if gen < self.floor {
            return None;
        }
        let start = self.entries.partition_point(|&(g, _)| g <= gen);
        Some(&self.entries[start..])
    }
}

/// The fact store.
#[derive(Default)]
pub struct WorkingMemory {
    /// One generational arena per fact type.
    slabs: HashMap<TypeId, Box<dyn ErasedSlab>>,
    /// handle → (slab, slot). Entries are removed on retract, so membership
    /// doubles as liveness and the map never grows past the live fact count.
    handle_index: HashMap<u64, HandleEntry>,
    next_handle: u64,
    /// Live facts across all slabs.
    live: usize,
    /// Bumped on every insert/update/retract; engines watch it to detect
    /// quiescence.
    generation: u64,
    /// Per-type dirty marks: the global generation at which each fact type
    /// was last inserted/updated/retracted. The incremental engine compares
    /// these against the generation a rule's match cache was computed at, so
    /// a mutation to type `T` only invalidates rules watching `T`.
    type_gen: HashMap<TypeId, u64>,
    /// Secondary indexes, keyed by (fact type, key type).
    indexes: HashMap<(TypeId, TypeId), Box<dyn ErasedIndex>>,
    /// Per-type mutation logs (see [`TypeLog`]).
    type_log: HashMap<TypeId, TypeLog>,
}

impl fmt::Debug for WorkingMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkingMemory")
            .field("facts", &self.live)
            .field("generation", &self.generation)
            .finish()
    }
}

impl WorkingMemory {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    fn slab<T: Fact>(&self) -> Option<&TypedSlab<T>> {
        self.slabs.get(&TypeId::of::<T>()).map(|s| {
            s.as_any()
                .downcast_ref::<TypedSlab<T>>()
                .expect("slab type")
        })
    }

    /// Insert a fact, returning its handle.
    pub fn insert<T: Fact>(&mut self, fact: T) -> FactHandle {
        let handle = FactHandle(self.next_handle);
        self.next_handle += 1;
        let type_id = TypeId::of::<T>();
        let slab = self
            .slabs
            .entry(type_id)
            .or_insert_with(|| Box::new(TypedSlab::<T>::new()))
            .as_any_mut()
            .downcast_mut::<TypedSlab<T>>()
            .expect("slab type");
        let slot = slab.alloc(fact, handle);
        let value: &T = slab.value(slot);
        for (_, idx) in self
            .indexes
            .iter_mut()
            .filter(|((ft, _), _)| *ft == type_id)
        {
            idx.on_insert(handle, slot, value);
        }
        self.handle_index
            .insert(handle.0, HandleEntry { type_id, slot });
        self.live += 1;
        self.generation += 1;
        self.type_gen.insert(type_id, self.generation);
        self.type_log
            .entry(type_id)
            .or_default()
            .push(self.generation, handle);
        handle
    }

    /// Remove a fact. Returns `true` if it existed.
    pub fn retract(&mut self, handle: FactHandle) -> bool {
        let Some(entry) = self.handle_index.remove(&handle.0) else {
            return false;
        };
        self.slabs
            .get_mut(&entry.type_id)
            .expect("handle entry implies slab")
            .remove_slot(entry.slot);
        for (_, idx) in self
            .indexes
            .iter_mut()
            .filter(|((ft, _), _)| *ft == entry.type_id)
        {
            idx.on_remove(handle);
        }
        self.live -= 1;
        self.generation += 1;
        self.type_gen.insert(entry.type_id, self.generation);
        self.type_log
            .entry(entry.type_id)
            .or_default()
            .push(self.generation, handle);
        true
    }

    /// Immutable access to a fact of known type.
    pub fn get<T: Fact>(&self, handle: FactHandle) -> Option<&T> {
        let entry = self.handle_index.get(&handle.0)?;
        if entry.type_id != TypeId::of::<T>() {
            return None;
        }
        Some(
            self.slab::<T>()
                .expect("handle entry implies slab")
                .value(entry.slot),
        )
    }

    /// Typed generational id of a live fact, or `None` if the handle is
    /// stale or names a different type. The id supports direct slab probes
    /// via [`WorkingMemory::get_id`] with ABA-safe staleness detection.
    pub fn fact_id<T: Fact>(&self, handle: FactHandle) -> Option<FactId<T>> {
        let entry = self.handle_index.get(&handle.0)?;
        if entry.type_id != TypeId::of::<T>() {
            return None;
        }
        let slab = self.slab::<T>().expect("handle entry implies slab");
        Some(FactId {
            slot: entry.slot,
            gen: slab.generation_of(entry.slot),
            _marker: PhantomData,
        })
    }

    /// Probe by typed id: direct slab indexing, no hash lookup, no
    /// downcast-per-fact. Returns `None` once the fact has been retracted —
    /// the slot generation was bumped, so even a recycled slot cannot serve
    /// a stale id.
    pub fn get_id<T: Fact>(&self, id: FactId<T>) -> Option<&T> {
        self.slab::<T>()?.value_checked(id.slot, id.gen)
    }

    /// Mutate a fact in place; bumps its version (making rules eligible to
    /// re-fire on it). Returns `false` if the handle is stale or the type is
    /// wrong.
    pub fn update<T: Fact>(&mut self, handle: FactHandle, f: impl FnOnce(&mut T)) -> bool {
        let type_id = TypeId::of::<T>();
        let Some(&HandleEntry {
            type_id: actual,
            slot,
        }) = self.handle_index.get(&handle.0)
        else {
            return false;
        };
        if actual != type_id {
            return false;
        }
        let slab = self
            .slabs
            .get_mut(&type_id)
            .expect("handle entry implies slab")
            .as_any_mut()
            .downcast_mut::<TypedSlab<T>>()
            .expect("slab type");
        f(slab.value_mut(slot));
        slab.bump_version(slot);
        // Re-key under the post-update value — the closure may have changed
        // indexed fields. The index compares against its reverse map, so an
        // unchanged key costs one extract.
        let value: &T = self
            .slabs
            .get(&type_id)
            .expect("slab persists")
            .as_any()
            .downcast_ref::<TypedSlab<T>>()
            .expect("slab type")
            .value(slot);
        for (_, idx) in self
            .indexes
            .iter_mut()
            .filter(|((ft, _), _)| *ft == type_id)
        {
            idx.on_update(handle, slot, value);
        }
        self.generation += 1;
        self.type_gen.insert(type_id, self.generation);
        self.type_log
            .entry(type_id)
            .or_default()
            .push(self.generation, handle);
        true
    }

    /// Current version of a fact (None if retracted). Handles start at 0 and
    /// bump on each [`WorkingMemory::update`].
    pub fn version(&self, handle: FactHandle) -> Option<u64> {
        let entry = self.handle_index.get(&handle.0)?;
        Some(
            self.slabs
                .get(&entry.type_id)
                .expect("handle entry implies slab")
                .version_of(entry.slot),
        )
    }

    /// Monotone counter over all mutations.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Generation at which facts of `type_id` were last mutated (insert,
    /// update or retract). Zero if the type has never been touched. A rule
    /// whose match cache was computed at generation `g` is stale for type
    /// `T` iff `type_generation(T) > g`.
    pub fn type_generation(&self, type_id: TypeId) -> u64 {
        self.type_gen.get(&type_id).copied().unwrap_or(0)
    }

    /// Typed convenience wrapper over [`WorkingMemory::type_generation`].
    pub fn type_generation_of<T: Fact>(&self) -> u64 {
        self.type_generation(TypeId::of::<T>())
    }

    /// Iterate all facts of type `T` in handle (= insertion) order. Walks
    /// the typed slab's intrusive list: contiguous storage, one downcast
    /// for the whole call.
    pub fn iter<T: Fact>(&self) -> impl Iterator<Item = (FactHandle, &T)> {
        self.slab::<T>()
            .into_iter()
            .flat_map(|slab| slab.iter_slots().map(|(h, _, t)| (h, t)))
    }

    /// Handles of all facts of type `T`, insertion order.
    pub fn handles<T: Fact>(&self) -> Vec<FactHandle> {
        self.iter::<T>().map(|(h, _)| h).collect()
    }

    /// First fact of type `T` matching `pred`.
    pub fn find<T: Fact>(&self, pred: impl Fn(&T) -> bool) -> Option<(FactHandle, &T)> {
        self.iter::<T>().find(|(_, t)| pred(t))
    }

    /// Register a hash index over facts of type `T`, keyed by `extract`.
    /// Existing facts are back-filled, and the index is maintained on every
    /// subsequent insert/update/retract. One index per (fact type, key type)
    /// pair; re-registering replaces the index.
    ///
    /// Equality joins probe the index via [`WorkingMemory::find_by`] in O(1)
    /// instead of scanning every fact of the type — the alpha memory of a
    /// Rete network.
    pub fn register_index<T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &mut self,
        extract: fn(&T) -> K,
    ) {
        let mut index = KeyIndex::<T, K> {
            extract,
            map: HashMap::new(),
            back: HashMap::new(),
        };
        if let Some(slab) = self.slab::<T>() {
            for (h, slot, t) in slab.iter_slots() {
                index.link(h, slot, extract(t));
            }
        }
        self.indexes
            .insert((TypeId::of::<T>(), TypeId::of::<K>()), Box::new(index));
    }

    fn key_index<T: Fact, K: Eq + Hash + Clone + Send + 'static>(&self) -> &KeyIndex<T, K> {
        self.indexes
            .get(&(TypeId::of::<T>(), TypeId::of::<K>()))
            .unwrap_or_else(|| {
                panic!(
                    "no index over {} keyed by {}; call register_index first",
                    std::any::type_name::<T>(),
                    std::any::type_name::<K>()
                )
            })
            .as_any()
            .downcast_ref::<KeyIndex<T, K>>()
            .expect("index shape matches its registration key")
    }

    /// Handles of facts of type `T` whose indexed key equals `key`, in
    /// insertion order. Panics if no such index was registered.
    pub fn lookup_by<T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &self,
        key: &K,
    ) -> Vec<FactHandle> {
        self.key_index::<T, K>()
            .map
            .get(key)
            .map(|set| set.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Iterate facts of type `T` whose indexed key equals `key`, in
    /// insertion order, without allocating. Panics if no such index was
    /// registered. This is the alpha-memory join path: the index posting
    /// carries each fact's arena slot, so resolution is direct typed-slab
    /// indexing — one downcast per call, not per fact.
    pub fn iter_by<'a, T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &'a self,
        key: &K,
    ) -> impl Iterator<Item = (FactHandle, &'a T)> + 'a {
        let slab = self.slab::<T>();
        self.key_index::<T, K>()
            .map
            .get(key)
            .into_iter()
            .flat_map(|set| set.iter())
            .map(move |(&h, &slot)| {
                let slab = slab.expect("indexed fact implies slab");
                (h, slab.value(slot))
            })
    }

    /// Handles of facts of `type_id` mutated (inserted, updated or
    /// retracted) at generations strictly after `gen`, oldest first, or
    /// `None` if the per-type log has been compacted past `gen` (the caller
    /// must then fall back to a full scan). Retracted handles appear in the
    /// result; callers filter with [`WorkingMemory::contains`].
    pub fn changed_since(&self, type_id: TypeId, gen: u64) -> Option<&[(u64, FactHandle)]> {
        match self.type_log.get(&type_id) {
            Some(log) => log.since(gen),
            // Type never mutated: nothing changed since any generation.
            None => Some(&[]),
        }
    }

    /// First (lowest-handle) fact of type `T` whose indexed key equals
    /// `key` — the indexed equivalent of [`WorkingMemory::find`] with a
    /// key-equality predicate. Panics if no such index was registered.
    pub fn find_by<T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &self,
        key: &K,
    ) -> Option<(FactHandle, &T)> {
        let (&handle, &slot) = self.key_index::<T, K>().map.get(key)?.iter().next()?;
        let slab = self.slab::<T>().expect("indexed fact implies slab");
        Some((handle, slab.value(slot)))
    }

    /// Number of facts of type `T`.
    pub fn count<T: Fact>(&self) -> usize {
        self.slab::<T>().map(|s| s.len).unwrap_or(0)
    }

    /// Total facts of all types.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// True if the handle refers to a live fact.
    pub fn contains(&self, handle: FactHandle) -> bool {
        self.handle_index.contains_key(&handle.0)
    }

    /// Retract every fact of type `T`; returns how many were removed.
    pub fn retract_all<T: Fact>(&mut self) -> usize {
        let handles = self.handles::<T>();
        let n = handles.len();
        for h in handles {
            self.retract(h);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Transfer {
        id: u32,
        streams: u32,
    }

    #[derive(Debug, PartialEq)]
    struct Cleanup {
        file: String,
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Transfer { id: 1, streams: 4 });
        assert_eq!(wm.get::<Transfer>(h).unwrap().id, 1);
        assert_eq!(wm.len(), 1);
    }

    #[test]
    fn wrong_type_get_is_none() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Transfer { id: 1, streams: 4 });
        assert!(wm.get::<Cleanup>(h).is_none());
    }

    #[test]
    fn retract_removes_and_is_idempotent() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Transfer { id: 1, streams: 4 });
        assert!(wm.retract(h));
        assert!(!wm.retract(h));
        assert!(wm.get::<Transfer>(h).is_none());
        assert_eq!(wm.count::<Transfer>(), 0);
    }

    #[test]
    fn update_mutates_and_bumps_version() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Transfer { id: 1, streams: 4 });
        assert_eq!(wm.version(h), Some(0));
        assert!(wm.update::<Transfer>(h, |t| t.streams = 8));
        assert_eq!(wm.get::<Transfer>(h).unwrap().streams, 8);
        assert_eq!(wm.version(h), Some(1));
    }

    #[test]
    fn update_wrong_type_fails_without_version_bump() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Transfer { id: 1, streams: 4 });
        assert!(!wm.update::<Cleanup>(h, |_| {}));
        assert_eq!(wm.version(h), Some(0));
    }

    #[test]
    fn iteration_is_insertion_ordered_per_type() {
        let mut wm = WorkingMemory::new();
        wm.insert(Transfer { id: 3, streams: 0 });
        wm.insert(Cleanup { file: "x".into() });
        wm.insert(Transfer { id: 1, streams: 0 });
        wm.insert(Transfer { id: 2, streams: 0 });
        let ids: Vec<u32> = wm.iter::<Transfer>().map(|(_, t)| t.id).collect();
        assert_eq!(ids, vec![3, 1, 2]);
        assert_eq!(wm.count::<Transfer>(), 3);
        assert_eq!(wm.count::<Cleanup>(), 1);
    }

    #[test]
    fn find_matches_predicate() {
        let mut wm = WorkingMemory::new();
        wm.insert(Transfer { id: 1, streams: 4 });
        let h2 = wm.insert(Transfer { id: 2, streams: 8 });
        let (h, t) = wm.find::<Transfer>(|t| t.streams == 8).unwrap();
        assert_eq!(h, h2);
        assert_eq!(t.id, 2);
        assert!(wm.find::<Transfer>(|t| t.id == 99).is_none());
    }

    #[test]
    fn generation_tracks_all_mutations() {
        let mut wm = WorkingMemory::new();
        let g0 = wm.generation();
        let h = wm.insert(Transfer { id: 1, streams: 0 });
        assert!(wm.generation() > g0);
        let g1 = wm.generation();
        wm.update::<Transfer>(h, |t| t.streams = 1);
        assert!(wm.generation() > g1);
        let g2 = wm.generation();
        wm.retract(h);
        assert!(wm.generation() > g2);
    }

    #[test]
    fn retract_all_clears_one_type_only() {
        let mut wm = WorkingMemory::new();
        wm.insert(Transfer { id: 1, streams: 0 });
        wm.insert(Transfer { id: 2, streams: 0 });
        wm.insert(Cleanup { file: "a".into() });
        assert_eq!(wm.retract_all::<Transfer>(), 2);
        assert_eq!(wm.count::<Transfer>(), 0);
        assert_eq!(wm.count::<Cleanup>(), 1);
    }

    #[test]
    fn type_generation_tracks_only_its_type() {
        let mut wm = WorkingMemory::new();
        assert_eq!(wm.type_generation_of::<Transfer>(), 0);
        let h = wm.insert(Transfer { id: 1, streams: 0 });
        let t1 = wm.type_generation_of::<Transfer>();
        assert!(t1 > 0);
        wm.insert(Cleanup { file: "a".into() });
        assert_eq!(
            wm.type_generation_of::<Transfer>(),
            t1,
            "mutating Cleanup must not dirty Transfer"
        );
        assert!(wm.type_generation_of::<Cleanup>() > t1);
        wm.update::<Transfer>(h, |t| t.streams = 2);
        let t2 = wm.type_generation_of::<Transfer>();
        assert!(t2 > t1);
        wm.retract(h);
        assert!(wm.type_generation_of::<Transfer>() > t2);
    }

    #[test]
    fn index_backfills_and_tracks_mutations() {
        let mut wm = WorkingMemory::new();
        let h1 = wm.insert(Cleanup { file: "a".into() });
        wm.register_index::<Cleanup, String>(|c| c.file.clone());
        // Back-filled.
        assert_eq!(
            wm.find_by::<Cleanup, String>(&"a".to_string()).unwrap().0,
            h1
        );
        // Maintained on insert.
        let h2 = wm.insert(Cleanup { file: "b".into() });
        assert_eq!(
            wm.find_by::<Cleanup, String>(&"b".to_string()).unwrap().0,
            h2
        );
        // Maintained on key-changing update.
        wm.update::<Cleanup>(h1, |c| c.file = "c".into());
        assert!(wm.find_by::<Cleanup, String>(&"a".to_string()).is_none());
        assert_eq!(
            wm.find_by::<Cleanup, String>(&"c".to_string()).unwrap().0,
            h1
        );
        // Maintained on retract.
        wm.retract(h2);
        assert!(wm.find_by::<Cleanup, String>(&"b".to_string()).is_none());
    }

    #[test]
    fn index_lookup_is_insertion_ordered() {
        let mut wm = WorkingMemory::new();
        wm.register_index::<Cleanup, String>(|c| c.file.clone());
        let h1 = wm.insert(Cleanup { file: "x".into() });
        let h2 = wm.insert(Cleanup { file: "x".into() });
        wm.insert(Cleanup { file: "y".into() });
        assert_eq!(
            wm.lookup_by::<Cleanup, String>(&"x".to_string()),
            vec![h1, h2]
        );
        // find_by returns the lowest handle, like a linear `find` would.
        assert_eq!(
            wm.find_by::<Cleanup, String>(&"x".to_string()).unwrap().0,
            h1
        );
        // Indexes on other types are untouched by Cleanup traffic.
        wm.register_index::<Transfer, u32>(|t| t.id);
        let ht = wm.insert(Transfer { id: 7, streams: 0 });
        assert_eq!(wm.find_by::<Transfer, u32>(&7).unwrap().0, ht);
    }

    #[test]
    #[should_panic(expected = "no index")]
    fn unregistered_index_lookup_panics() {
        let wm = WorkingMemory::new();
        wm.find_by::<Cleanup, String>(&"a".to_string());
    }

    #[test]
    fn handles_survive_other_retractions() {
        let mut wm = WorkingMemory::new();
        let h1 = wm.insert(Transfer { id: 1, streams: 0 });
        let h2 = wm.insert(Transfer { id: 2, streams: 0 });
        wm.retract(h1);
        assert!(wm.contains(h2));
        assert_eq!(wm.get::<Transfer>(h2).unwrap().id, 2);
    }

    #[test]
    fn fact_id_probes_directly_and_dies_with_the_fact() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Transfer { id: 9, streams: 1 });
        let id = wm.fact_id::<Transfer>(h).unwrap();
        assert_eq!(wm.get_id(id).unwrap().id, 9);
        // Wrong-type ids are refused at issue time.
        assert!(wm.fact_id::<Cleanup>(h).is_none());
        wm.retract(h);
        assert!(wm.get_id(id).is_none(), "stale id must not resolve");
        assert!(wm.fact_id::<Transfer>(h).is_none());
    }

    #[test]
    fn stale_fact_id_misses_even_after_slot_reuse() {
        let mut wm = WorkingMemory::new();
        let h1 = wm.insert(Transfer { id: 1, streams: 0 });
        let id1 = wm.fact_id::<Transfer>(h1).unwrap();
        wm.retract(h1);
        // The freed slot is recycled by the next insert of the same type.
        let h2 = wm.insert(Transfer { id: 2, streams: 0 });
        let id2 = wm.fact_id::<Transfer>(h2).unwrap();
        assert_eq!(wm.get_id(id2).unwrap().id, 2);
        assert_ne!(id1, id2, "recycled slot must carry a new generation");
        assert!(
            wm.get_id(id1).is_none(),
            "ABA: stale id resolved to a recycled slot"
        );
    }

    #[test]
    fn slot_reuse_preserves_insertion_order_and_handles() {
        let mut wm = WorkingMemory::new();
        let h1 = wm.insert(Transfer { id: 1, streams: 0 });
        let h2 = wm.insert(Transfer { id: 2, streams: 0 });
        wm.retract(h1);
        let h3 = wm.insert(Transfer { id: 3, streams: 0 });
        assert!(h3 > h2, "handles stay monotone across slot reuse");
        let order: Vec<u32> = wm.iter::<Transfer>().map(|(_, t)| t.id).collect();
        assert_eq!(order, vec![2, 3], "reused slot must append at the tail");
    }
}
