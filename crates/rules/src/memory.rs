//! Typed working memory.
//!
//! Drools sessions hold *facts*; rules pattern-match over them and mutate
//! them. [`WorkingMemory`] is the Rust equivalent: a deterministic store of
//! heterogeneous fact values addressed by [`FactHandle`], with per-fact
//! version counters that drive the engine's refraction logic (a rule does
//! not re-fire on a fact tuple until one of its facts changes).
//!
//! Facts are ordinary Rust values (`'static + Debug`). Iteration order is
//! insertion order (handles are monotonically increasing and stored in a
//! `BTreeMap`), so rule evaluation is reproducible.

use std::any::{Any, TypeId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::Hash;

/// Marker trait for values storable in working memory.
///
/// Blanket-implemented for every `'static + Debug` type; you never implement
/// it by hand.
pub trait Fact: Any + fmt::Debug + Send {
    /// Upcast to `&dyn Any` (object-safe downcasting support).
    fn as_any(&self) -> &dyn Any;
    /// Upcast to `&mut dyn Any`.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any + fmt::Debug + Send> Fact for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Stable identifier of one fact in a [`WorkingMemory`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FactHandle(pub u64);

struct Slot {
    fact: Box<dyn Fact>,
    type_id: TypeId,
    version: u64,
}

/// Type-erased secondary index, maintained on every insert/update/retract.
/// The concrete type is always [`KeyIndex<T, K>`]; erasure lets
/// [`WorkingMemory`] hold indexes over arbitrary fact/key type pairs.
trait ErasedIndex: Send {
    fn on_insert(&mut self, handle: FactHandle, fact: &dyn Fact);
    fn on_remove(&mut self, handle: FactHandle);
    /// Re-key after an in-place mutation. The index keeps a reverse map of
    /// each handle's current key, so an update whose key did not change is a
    /// cheap compare instead of a remove + insert.
    fn on_update(&mut self, handle: FactHandle, fact: &dyn Fact);
    fn as_any(&self) -> &dyn Any;
}

/// Hash index from an extracted key to the handles bearing it, the alpha
/// memory of a Rete network: equality joins probe this instead of scanning
/// every fact of the type. Handle sets are ordered, so indexed lookups see
/// facts in the same insertion order as [`WorkingMemory::iter`].
struct KeyIndex<T: Fact, K: Eq + Hash + Clone + Send + 'static> {
    extract: fn(&T) -> K,
    map: HashMap<K, BTreeSet<FactHandle>>,
    /// Each indexed handle's current key, so removals and no-op re-keys
    /// never re-extract from a stale fact value.
    back: HashMap<FactHandle, K>,
}

impl<T: Fact, K: Eq + Hash + Clone + Send + 'static> KeyIndex<T, K> {
    fn link(&mut self, handle: FactHandle, key: K) {
        self.map.entry(key.clone()).or_default().insert(handle);
        self.back.insert(handle, key);
    }

    fn unlink(&mut self, handle: FactHandle) {
        if let Some(key) = self.back.remove(&handle) {
            if let Some(set) = self.map.get_mut(&key) {
                set.remove(&handle);
                if set.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }
}

impl<T: Fact, K: Eq + Hash + Clone + Send + 'static> ErasedIndex for KeyIndex<T, K> {
    fn on_insert(&mut self, handle: FactHandle, fact: &dyn Fact) {
        let t = fact.as_any().downcast_ref::<T>().expect("index fact type");
        self.link(handle, (self.extract)(t));
    }

    fn on_remove(&mut self, handle: FactHandle) {
        self.unlink(handle);
    }

    fn on_update(&mut self, handle: FactHandle, fact: &dyn Fact) {
        let t = fact.as_any().downcast_ref::<T>().expect("index fact type");
        let key = (self.extract)(t);
        if self.back.get(&handle) == Some(&key) {
            return;
        }
        self.unlink(handle);
        self.link(handle, key);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Per-type log of recently mutated handles, driving the engine's delta
/// re-evaluation of single-type rules: instead of re-scanning every fact of
/// a watched type after a mutation, a rule asks which handles changed since
/// its cache was computed and re-probes only those.
#[derive(Default)]
struct TypeLog {
    /// `(generation, handle)` in ascending generation order. A handle may
    /// appear many times; readers dedup.
    entries: Vec<(u64, FactHandle)>,
    /// Highest generation already compacted away. A reader whose cache
    /// predates the floor must fall back to a full re-scan.
    floor: u64,
}

/// Entries a [`TypeLog`] holds before compaction drops its older half.
const TYPE_LOG_CAP: usize = 1024;

impl TypeLog {
    fn push(&mut self, gen: u64, handle: FactHandle) {
        // Collapse repeated mutations of the same fact (the common shape:
        // one fact updated several times in a firing cascade).
        if let Some(last) = self.entries.last_mut() {
            if last.1 == handle {
                last.0 = gen;
                return;
            }
        }
        if self.entries.len() >= TYPE_LOG_CAP {
            let drop = self.entries.len() / 2;
            self.floor = self.entries[drop - 1].0;
            self.entries.drain(..drop);
        }
        self.entries.push((gen, handle));
    }

    /// Handles mutated at generations strictly after `gen`, oldest first, or
    /// `None` if the log no longer reaches back that far.
    fn since(&self, gen: u64) -> Option<&[(u64, FactHandle)]> {
        if gen < self.floor {
            return None;
        }
        let start = self.entries.partition_point(|&(g, _)| g <= gen);
        Some(&self.entries[start..])
    }
}

/// The fact store.
#[derive(Default)]
pub struct WorkingMemory {
    slots: BTreeMap<FactHandle, Slot>,
    by_type: HashMap<TypeId, BTreeSet<FactHandle>>,
    next_handle: u64,
    /// Bumped on every insert/update/retract; engines watch it to detect
    /// quiescence.
    generation: u64,
    /// Per-type dirty marks: the global generation at which each fact type
    /// was last inserted/updated/retracted. The incremental engine compares
    /// these against the generation a rule's match cache was computed at, so
    /// a mutation to type `T` only invalidates rules watching `T`.
    type_gen: HashMap<TypeId, u64>,
    /// Secondary indexes, keyed by (fact type, key type).
    indexes: HashMap<(TypeId, TypeId), Box<dyn ErasedIndex>>,
    /// Per-type mutation logs (see [`TypeLog`]).
    type_log: HashMap<TypeId, TypeLog>,
}

impl fmt::Debug for WorkingMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkingMemory")
            .field("facts", &self.slots.len())
            .field("generation", &self.generation)
            .finish()
    }
}

impl WorkingMemory {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a fact, returning its handle.
    pub fn insert<T: Fact>(&mut self, fact: T) -> FactHandle {
        let handle = FactHandle(self.next_handle);
        self.next_handle += 1;
        let type_id = TypeId::of::<T>();
        for (_, idx) in self
            .indexes
            .iter_mut()
            .filter(|((ft, _), _)| *ft == type_id)
        {
            idx.on_insert(handle, &fact);
        }
        self.slots.insert(
            handle,
            Slot {
                fact: Box::new(fact),
                type_id,
                version: 0,
            },
        );
        self.by_type.entry(type_id).or_default().insert(handle);
        self.generation += 1;
        self.type_gen.insert(type_id, self.generation);
        self.type_log
            .entry(type_id)
            .or_default()
            .push(self.generation, handle);
        handle
    }

    /// Remove a fact. Returns `true` if it existed.
    pub fn retract(&mut self, handle: FactHandle) -> bool {
        match self.slots.remove(&handle) {
            Some(slot) => {
                if let Some(set) = self.by_type.get_mut(&slot.type_id) {
                    set.remove(&handle);
                }
                let type_id = slot.type_id;
                for (_, idx) in self
                    .indexes
                    .iter_mut()
                    .filter(|((ft, _), _)| *ft == type_id)
                {
                    idx.on_remove(handle);
                }
                self.generation += 1;
                self.type_gen.insert(type_id, self.generation);
                self.type_log
                    .entry(type_id)
                    .or_default()
                    .push(self.generation, handle);
                true
            }
            None => false,
        }
    }

    /// Immutable access to a fact of known type.
    pub fn get<T: Fact>(&self, handle: FactHandle) -> Option<&T> {
        // `as_ref()` is load-bearing: calling `as_any()` directly on the Box
        // would resolve the blanket `Fact` impl for `Box<dyn Fact>` itself
        // and downcasting would always fail.
        self.slots
            .get(&handle)
            .and_then(|s| s.fact.as_ref().as_any().downcast_ref::<T>())
    }

    /// Mutate a fact in place; bumps its version (making rules eligible to
    /// re-fire on it). Returns `false` if the handle is stale or the type is
    /// wrong.
    pub fn update<T: Fact>(&mut self, handle: FactHandle, f: impl FnOnce(&mut T)) -> bool {
        match self.slots.get_mut(&handle) {
            Some(slot) => match slot.fact.as_mut().as_any_mut().downcast_mut::<T>() {
                Some(value) => {
                    let type_id = TypeId::of::<T>();
                    f(value);
                    // Re-key under the post-update value — the closure may
                    // have changed indexed fields. The index compares against
                    // its reverse map, so an unchanged key costs one extract.
                    for (_, idx) in self
                        .indexes
                        .iter_mut()
                        .filter(|((ft, _), _)| *ft == type_id)
                    {
                        idx.on_update(handle, &*value);
                    }
                    slot.version += 1;
                    self.generation += 1;
                    self.type_gen.insert(type_id, self.generation);
                    self.type_log
                        .entry(type_id)
                        .or_default()
                        .push(self.generation, handle);
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Current version of a fact (None if retracted). Handles start at 0 and
    /// bump on each [`WorkingMemory::update`].
    pub fn version(&self, handle: FactHandle) -> Option<u64> {
        self.slots.get(&handle).map(|s| s.version)
    }

    /// Monotone counter over all mutations.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Generation at which facts of `type_id` were last mutated (insert,
    /// update or retract). Zero if the type has never been touched. A rule
    /// whose match cache was computed at generation `g` is stale for type
    /// `T` iff `type_generation(T) > g`.
    pub fn type_generation(&self, type_id: TypeId) -> u64 {
        self.type_gen.get(&type_id).copied().unwrap_or(0)
    }

    /// Typed convenience wrapper over [`WorkingMemory::type_generation`].
    pub fn type_generation_of<T: Fact>(&self) -> u64 {
        self.type_generation(TypeId::of::<T>())
    }

    /// Iterate all facts of type `T` in handle (= insertion) order.
    pub fn iter<T: Fact>(&self) -> impl Iterator<Item = (FactHandle, &T)> {
        self.by_type
            .get(&TypeId::of::<T>())
            .into_iter()
            .flat_map(|set| set.iter())
            .filter_map(move |h| self.get::<T>(*h).map(|t| (*h, t)))
    }

    /// Handles of all facts of type `T`, insertion order.
    pub fn handles<T: Fact>(&self) -> Vec<FactHandle> {
        self.iter::<T>().map(|(h, _)| h).collect()
    }

    /// First fact of type `T` matching `pred`.
    pub fn find<T: Fact>(&self, pred: impl Fn(&T) -> bool) -> Option<(FactHandle, &T)> {
        self.iter::<T>().find(|(_, t)| pred(t))
    }

    /// Register a hash index over facts of type `T`, keyed by `extract`.
    /// Existing facts are back-filled, and the index is maintained on every
    /// subsequent insert/update/retract. One index per (fact type, key type)
    /// pair; re-registering replaces the index.
    ///
    /// Equality joins probe the index via [`WorkingMemory::find_by`] in O(1)
    /// instead of scanning every fact of the type — the alpha memory of a
    /// Rete network.
    pub fn register_index<T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &mut self,
        extract: fn(&T) -> K,
    ) {
        let mut index = KeyIndex::<T, K> {
            extract,
            map: HashMap::new(),
            back: HashMap::new(),
        };
        let existing: Vec<(FactHandle, K)> =
            self.iter::<T>().map(|(h, t)| (h, extract(t))).collect();
        for (h, key) in existing {
            index.link(h, key);
        }
        self.indexes
            .insert((TypeId::of::<T>(), TypeId::of::<K>()), Box::new(index));
    }

    fn key_index<T: Fact, K: Eq + Hash + Clone + Send + 'static>(&self) -> &KeyIndex<T, K> {
        self.indexes
            .get(&(TypeId::of::<T>(), TypeId::of::<K>()))
            .unwrap_or_else(|| {
                panic!(
                    "no index over {} keyed by {}; call register_index first",
                    std::any::type_name::<T>(),
                    std::any::type_name::<K>()
                )
            })
            .as_any()
            .downcast_ref::<KeyIndex<T, K>>()
            .expect("index shape matches its registration key")
    }

    /// Handles of facts of type `T` whose indexed key equals `key`, in
    /// insertion order. Panics if no such index was registered.
    pub fn lookup_by<T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &self,
        key: &K,
    ) -> Vec<FactHandle> {
        self.key_index::<T, K>()
            .map
            .get(key)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Iterate facts of type `T` whose indexed key equals `key`, in
    /// insertion order, without allocating. Panics if no such index was
    /// registered. This is the allocation-free hot-path variant of
    /// [`WorkingMemory::lookup_by`] for matchers that probe per evaluation.
    pub fn iter_by<'a, T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &'a self,
        key: &K,
    ) -> impl Iterator<Item = (FactHandle, &'a T)> + 'a {
        self.key_index::<T, K>()
            .map
            .get(key)
            .into_iter()
            .flat_map(|set| set.iter())
            .filter_map(move |h| self.get::<T>(*h).map(|t| (*h, t)))
    }

    /// Handles of facts of `type_id` mutated (inserted, updated or
    /// retracted) at generations strictly after `gen`, oldest first, or
    /// `None` if the per-type log has been compacted past `gen` (the caller
    /// must then fall back to a full scan). Retracted handles appear in the
    /// result; callers filter with [`WorkingMemory::contains`].
    pub fn changed_since(&self, type_id: TypeId, gen: u64) -> Option<&[(u64, FactHandle)]> {
        match self.type_log.get(&type_id) {
            Some(log) => log.since(gen),
            // Type never mutated: nothing changed since any generation.
            None => Some(&[]),
        }
    }

    /// First (lowest-handle) fact of type `T` whose indexed key equals
    /// `key` — the indexed equivalent of [`WorkingMemory::find`] with a
    /// key-equality predicate. Panics if no such index was registered.
    pub fn find_by<T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &self,
        key: &K,
    ) -> Option<(FactHandle, &T)> {
        let handle = *self.key_index::<T, K>().map.get(key)?.iter().next()?;
        Some((handle, self.get::<T>(handle).expect("indexed fact is live")))
    }

    /// Number of facts of type `T`.
    pub fn count<T: Fact>(&self) -> usize {
        self.by_type
            .get(&TypeId::of::<T>())
            .map(|s| s.len())
            .unwrap_or(0)
    }

    /// Total facts of all types.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True if the handle refers to a live fact.
    pub fn contains(&self, handle: FactHandle) -> bool {
        self.slots.contains_key(&handle)
    }

    /// Retract every fact of type `T`; returns how many were removed.
    pub fn retract_all<T: Fact>(&mut self) -> usize {
        let handles = self.handles::<T>();
        let n = handles.len();
        for h in handles {
            self.retract(h);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Transfer {
        id: u32,
        streams: u32,
    }

    #[derive(Debug, PartialEq)]
    struct Cleanup {
        file: String,
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Transfer { id: 1, streams: 4 });
        assert_eq!(wm.get::<Transfer>(h).unwrap().id, 1);
        assert_eq!(wm.len(), 1);
    }

    #[test]
    fn wrong_type_get_is_none() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Transfer { id: 1, streams: 4 });
        assert!(wm.get::<Cleanup>(h).is_none());
    }

    #[test]
    fn retract_removes_and_is_idempotent() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Transfer { id: 1, streams: 4 });
        assert!(wm.retract(h));
        assert!(!wm.retract(h));
        assert!(wm.get::<Transfer>(h).is_none());
        assert_eq!(wm.count::<Transfer>(), 0);
    }

    #[test]
    fn update_mutates_and_bumps_version() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Transfer { id: 1, streams: 4 });
        assert_eq!(wm.version(h), Some(0));
        assert!(wm.update::<Transfer>(h, |t| t.streams = 8));
        assert_eq!(wm.get::<Transfer>(h).unwrap().streams, 8);
        assert_eq!(wm.version(h), Some(1));
    }

    #[test]
    fn update_wrong_type_fails_without_version_bump() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Transfer { id: 1, streams: 4 });
        assert!(!wm.update::<Cleanup>(h, |_| {}));
        assert_eq!(wm.version(h), Some(0));
    }

    #[test]
    fn iteration_is_insertion_ordered_per_type() {
        let mut wm = WorkingMemory::new();
        wm.insert(Transfer { id: 3, streams: 0 });
        wm.insert(Cleanup { file: "x".into() });
        wm.insert(Transfer { id: 1, streams: 0 });
        wm.insert(Transfer { id: 2, streams: 0 });
        let ids: Vec<u32> = wm.iter::<Transfer>().map(|(_, t)| t.id).collect();
        assert_eq!(ids, vec![3, 1, 2]);
        assert_eq!(wm.count::<Transfer>(), 3);
        assert_eq!(wm.count::<Cleanup>(), 1);
    }

    #[test]
    fn find_matches_predicate() {
        let mut wm = WorkingMemory::new();
        wm.insert(Transfer { id: 1, streams: 4 });
        let h2 = wm.insert(Transfer { id: 2, streams: 8 });
        let (h, t) = wm.find::<Transfer>(|t| t.streams == 8).unwrap();
        assert_eq!(h, h2);
        assert_eq!(t.id, 2);
        assert!(wm.find::<Transfer>(|t| t.id == 99).is_none());
    }

    #[test]
    fn generation_tracks_all_mutations() {
        let mut wm = WorkingMemory::new();
        let g0 = wm.generation();
        let h = wm.insert(Transfer { id: 1, streams: 0 });
        assert!(wm.generation() > g0);
        let g1 = wm.generation();
        wm.update::<Transfer>(h, |t| t.streams = 1);
        assert!(wm.generation() > g1);
        let g2 = wm.generation();
        wm.retract(h);
        assert!(wm.generation() > g2);
    }

    #[test]
    fn retract_all_clears_one_type_only() {
        let mut wm = WorkingMemory::new();
        wm.insert(Transfer { id: 1, streams: 0 });
        wm.insert(Transfer { id: 2, streams: 0 });
        wm.insert(Cleanup { file: "a".into() });
        assert_eq!(wm.retract_all::<Transfer>(), 2);
        assert_eq!(wm.count::<Transfer>(), 0);
        assert_eq!(wm.count::<Cleanup>(), 1);
    }

    #[test]
    fn type_generation_tracks_only_its_type() {
        let mut wm = WorkingMemory::new();
        assert_eq!(wm.type_generation_of::<Transfer>(), 0);
        let h = wm.insert(Transfer { id: 1, streams: 0 });
        let t1 = wm.type_generation_of::<Transfer>();
        assert!(t1 > 0);
        wm.insert(Cleanup { file: "a".into() });
        assert_eq!(
            wm.type_generation_of::<Transfer>(),
            t1,
            "mutating Cleanup must not dirty Transfer"
        );
        assert!(wm.type_generation_of::<Cleanup>() > t1);
        wm.update::<Transfer>(h, |t| t.streams = 2);
        let t2 = wm.type_generation_of::<Transfer>();
        assert!(t2 > t1);
        wm.retract(h);
        assert!(wm.type_generation_of::<Transfer>() > t2);
    }

    #[test]
    fn index_backfills_and_tracks_mutations() {
        let mut wm = WorkingMemory::new();
        let h1 = wm.insert(Cleanup { file: "a".into() });
        wm.register_index::<Cleanup, String>(|c| c.file.clone());
        // Back-filled.
        assert_eq!(
            wm.find_by::<Cleanup, String>(&"a".to_string()).unwrap().0,
            h1
        );
        // Maintained on insert.
        let h2 = wm.insert(Cleanup { file: "b".into() });
        assert_eq!(
            wm.find_by::<Cleanup, String>(&"b".to_string()).unwrap().0,
            h2
        );
        // Maintained on key-changing update.
        wm.update::<Cleanup>(h1, |c| c.file = "c".into());
        assert!(wm.find_by::<Cleanup, String>(&"a".to_string()).is_none());
        assert_eq!(
            wm.find_by::<Cleanup, String>(&"c".to_string()).unwrap().0,
            h1
        );
        // Maintained on retract.
        wm.retract(h2);
        assert!(wm.find_by::<Cleanup, String>(&"b".to_string()).is_none());
    }

    #[test]
    fn index_lookup_is_insertion_ordered() {
        let mut wm = WorkingMemory::new();
        wm.register_index::<Cleanup, String>(|c| c.file.clone());
        let h1 = wm.insert(Cleanup { file: "x".into() });
        let h2 = wm.insert(Cleanup { file: "x".into() });
        wm.insert(Cleanup { file: "y".into() });
        assert_eq!(
            wm.lookup_by::<Cleanup, String>(&"x".to_string()),
            vec![h1, h2]
        );
        // find_by returns the lowest handle, like a linear `find` would.
        assert_eq!(
            wm.find_by::<Cleanup, String>(&"x".to_string()).unwrap().0,
            h1
        );
        // Indexes on other types are untouched by Cleanup traffic.
        wm.register_index::<Transfer, u32>(|t| t.id);
        let ht = wm.insert(Transfer { id: 7, streams: 0 });
        assert_eq!(wm.find_by::<Transfer, u32>(&7).unwrap().0, ht);
    }

    #[test]
    #[should_panic(expected = "no index")]
    fn unregistered_index_lookup_panics() {
        let wm = WorkingMemory::new();
        wm.find_by::<Cleanup, String>(&"a".to_string());
    }

    #[test]
    fn handles_survive_other_retractions() {
        let mut wm = WorkingMemory::new();
        let h1 = wm.insert(Transfer { id: 1, streams: 0 });
        let h2 = wm.insert(Transfer { id: 2, streams: 0 });
        wm.retract(h1);
        assert!(wm.contains(h2));
        assert_eq!(wm.get::<Transfer>(h2).unwrap().id, 2);
    }
}
