//! Rule definition and builder.
//!
//! A [`Rule`] pairs a *matcher* (the `when` part: scan working memory,
//! produce zero or more matched fact tuples) with an *action* (the `then`
//! part: mutate working memory and/or the shared globals). Rules carry a
//! *salience* — higher fires first, mirroring Drools — and are generic over a
//! `Ctx` type standing in for Drools globals (the Policy Service passes its
//! configuration and response buffers through it).

use crate::memory::{FactHandle, WorkingMemory};

/// A matched fact tuple: the handles a rule instance binds to.
///
/// The engine keys refraction on `(rule, handles, versions-of-handles)`, so a
/// rule re-fires on a tuple only after one of its facts is updated.
pub type Match = Vec<FactHandle>;

type Matcher<Ctx> = Box<dyn Fn(&WorkingMemory, &Ctx) -> Vec<Match> + Send>;
type Action<Ctx> = Box<dyn FnMut(&mut WorkingMemory, &mut Ctx, &Match) + Send>;

/// A production rule.
pub struct Rule<Ctx> {
    name: String,
    salience: i32,
    matcher: Matcher<Ctx>,
    action: Action<Ctx>,
}

impl<Ctx> Rule<Ctx> {
    /// Start building a rule with the given name.
    #[allow(clippy::new_ret_no_self)] // `new` is the Drools-style builder entry
    pub fn new(name: impl Into<String>) -> RuleBuilder<Ctx> {
        RuleBuilder {
            name: name.into(),
            salience: 0,
            matcher: None,
            action: None,
        }
    }

    /// Rule name (diagnostics, firing log).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Firing priority; higher fires first.
    pub fn salience(&self) -> i32 {
        self.salience
    }

    pub(crate) fn matches(&self, wm: &WorkingMemory, ctx: &Ctx) -> Vec<Match> {
        (self.matcher)(wm, ctx)
    }

    pub(crate) fn fire(&mut self, wm: &mut WorkingMemory, ctx: &mut Ctx, m: &Match) {
        (self.action)(wm, ctx, m)
    }
}

impl<Ctx> std::fmt::Debug for Rule<Ctx> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("salience", &self.salience)
            .finish()
    }
}

/// Fluent builder returned by [`Rule::new`].
pub struct RuleBuilder<Ctx> {
    name: String,
    salience: i32,
    matcher: Option<Matcher<Ctx>>,
    action: Option<Action<Ctx>>,
}

impl<Ctx> RuleBuilder<Ctx> {
    /// Set the salience (default 0; higher fires first).
    pub fn salience(mut self, salience: i32) -> Self {
        self.salience = salience;
        self
    }

    /// Full matcher: return every fact tuple this rule should fire on.
    pub fn when(
        mut self,
        matcher: impl Fn(&WorkingMemory, &Ctx) -> Vec<Match> + Send + 'static,
    ) -> Self {
        self.matcher = Some(Box::new(matcher));
        self
    }

    /// Convenience matcher over all facts of one type passing a predicate:
    /// each matching fact becomes a single-handle tuple.
    pub fn when_each<T: crate::memory::Fact>(
        mut self,
        pred: impl Fn(&T, &Ctx) -> bool + Send + 'static,
    ) -> Self {
        self.matcher = Some(Box::new(move |wm, ctx| {
            wm.iter::<T>()
                .filter(|(_, t)| pred(t, ctx))
                .map(|(h, _)| vec![h])
                .collect()
        }));
        self
    }

    /// Matcher that fires once (empty tuple) when a condition over the whole
    /// memory holds. Refraction note: an empty tuple has no versions, so the
    /// rule will not re-fire until the engine's fired-set is reset — use for
    /// one-shot setup rules.
    pub fn when_once(mut self, pred: impl Fn(&WorkingMemory, &Ctx) -> bool + Send + 'static) -> Self {
        self.matcher = Some(Box::new(move |wm, ctx| {
            if pred(wm, ctx) {
                vec![vec![]]
            } else {
                vec![]
            }
        }));
        self
    }

    /// The action body; completes the rule.
    pub fn then(
        mut self,
        action: impl FnMut(&mut WorkingMemory, &mut Ctx, &Match) + Send + 'static,
    ) -> Rule<Ctx> {
        self.action = Some(Box::new(action));
        Rule {
            name: self.name,
            salience: self.salience,
            matcher: self.matcher.expect("rule needs a `when` clause"),
            action: self.action.expect("rule needs a `then` clause"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Num(i64);

    #[test]
    fn builder_produces_named_rule() {
        let r: Rule<()> = Rule::new("double-evens")
            .salience(5)
            .when_each::<Num>(|n, _| n.0 % 2 == 0)
            .then(|wm, _, m| {
                wm.update::<Num>(m[0], |n| n.0 *= 2);
            });
        assert_eq!(r.name(), "double-evens");
        assert_eq!(r.salience(), 5);
    }

    #[test]
    fn when_each_matches_per_fact() {
        let mut wm = WorkingMemory::new();
        wm.insert(Num(1));
        wm.insert(Num(2));
        wm.insert(Num(4));
        let r: Rule<()> = Rule::new("evens")
            .when_each::<Num>(|n, _| n.0 % 2 == 0)
            .then(|_, _, _| {});
        let ms = r.matches(&wm, &());
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn when_once_fires_zero_or_one() {
        let mut wm = WorkingMemory::new();
        let r: Rule<()> = Rule::new("any-big")
            .when_once(|wm, _| wm.iter::<Num>().any(|(_, n)| n.0 > 10))
            .then(|_, _, _| {});
        assert!(r.matches(&wm, &()).is_empty());
        wm.insert(Num(20));
        assert_eq!(r.matches(&wm, &()), vec![Vec::<FactHandle>::new()]);
    }

    #[test]
    fn ctx_is_visible_to_matcher() {
        let mut wm = WorkingMemory::new();
        wm.insert(Num(5));
        let r: Rule<i64> = Rule::new("above-threshold")
            .when_each::<Num>(|n, threshold| n.0 > *threshold)
            .then(|_, _, _| {});
        assert_eq!(r.matches(&wm, &3).len(), 1);
        assert_eq!(r.matches(&wm, &9).len(), 0);
    }

    #[test]
    #[should_panic(expected = "when")]
    fn missing_when_panics() {
        let _: Rule<()> = RuleBuilder {
            name: "broken".into(),
            salience: 0,
            matcher: None,
            action: None,
        }
        .then(|_, _, _| {});
    }

    #[test]
    fn fire_runs_action() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Num(3));
        let mut r: Rule<()> = Rule::new("inc")
            .when_each::<Num>(|_, _| true)
            .then(|wm, _, m| {
                wm.update::<Num>(m[0], |n| n.0 += 1);
            });
        let m = vec![h];
        r.fire(&mut wm, &mut (), &m);
        assert_eq!(wm.get::<Num>(h).unwrap().0, 4);
    }
}
