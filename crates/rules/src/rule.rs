//! Rule definition and builder.
//!
//! A [`Rule`] pairs a *matcher* (the `when` part: scan working memory,
//! produce zero or more matched fact tuples) with an *action* (the `then`
//! part: mutate working memory and/or the shared globals). Rules carry a
//! *salience* — higher fires first, mirroring Drools — and are generic over a
//! `Ctx` type standing in for Drools globals (the Policy Service passes its
//! configuration and response buffers through it).
//!
//! Rules additionally declare which fact types their matcher *reads* (the
//! [`Watch`] set). The incremental engine only re-evaluates a matcher when
//! one of its watched types has been mutated since the last evaluation;
//! `when_each::<T>` subscribes to `T` automatically, join rules built with
//! [`RuleBuilder::when`] declare reads via [`RuleBuilder::watches`], and
//! undeclared rules conservatively watch everything.

use crate::memory::{FactHandle, WorkingMemory};
use std::any::TypeId;
use std::sync::Arc;

/// A matched fact tuple: the handles a rule instance binds to.
///
/// The engine keys refraction on `(rule, handles, versions-of-handles)`, so a
/// rule re-fires on a tuple only after one of its facts is updated.
pub type Match = Vec<FactHandle>;

type Matcher<Ctx> = Box<dyn Fn(&WorkingMemory, &Ctx) -> Vec<Match> + Send>;
type Action<Ctx> = Box<dyn FnMut(&mut WorkingMemory, &mut Ctx, &Match) + Send>;
type EachProbe<Ctx> = Box<dyn Fn(&WorkingMemory, &Ctx, FactHandle) -> bool + Send>;

/// Delta-evaluation support for single-type predicate rules: the watched
/// type plus a per-handle re-probe of the `when_each` predicate. The engine
/// uses this to refresh a stale match cache by re-probing only the handles
/// that actually changed instead of re-scanning every fact of the type.
pub(crate) struct EachMatch<Ctx> {
    pub(crate) type_id: TypeId,
    pub(crate) probe: EachProbe<Ctx>,
}

/// Which fact types a rule's matcher reads.
///
/// This is the rule's subscription in the engine's dirty-set propagation: a
/// matcher is only re-evaluated when a watched type changed. `All` is the
/// conservative default for rules that never declared their reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Watch {
    /// Re-evaluate whenever *any* fact changes (no declaration).
    All,
    /// Re-evaluate only when one of these fact types changes.
    Types(Vec<TypeId>),
}

impl Watch {
    /// True when a memory at generation `now` may produce different matches
    /// than one seen at `valid_at`, as far as this watch set can tell.
    pub fn is_dirty(&self, wm: &WorkingMemory, valid_at: u64) -> bool {
        match self {
            Watch::All => wm.generation() > valid_at,
            Watch::Types(types) => types.iter().any(|t| wm.type_generation(*t) > valid_at),
        }
    }
}

/// A production rule.
pub struct Rule<Ctx> {
    name: Arc<str>,
    salience: i32,
    matcher: Matcher<Ctx>,
    action: Action<Ctx>,
    watch: Watch,
    each: Option<EachMatch<Ctx>>,
}

impl<Ctx> Rule<Ctx> {
    /// Start building a rule with the given name.
    #[allow(clippy::new_ret_no_self)] // `new` is the Drools-style builder entry
    pub fn new(name: impl Into<String>) -> RuleBuilder<Ctx> {
        RuleBuilder {
            name: name.into(),
            salience: 0,
            matcher: None,
            action: None,
            watched_types: None,
            each: None,
        }
    }

    /// Rule name (diagnostics, firing log).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Shared handle to the rule name — the engine's firing log stores these
    /// instead of allocating a fresh `String` per firing.
    pub fn name_arc(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// Firing priority; higher fires first.
    pub fn salience(&self) -> i32 {
        self.salience
    }

    /// The fact types this rule's matcher reads.
    pub fn watch(&self) -> &Watch {
        &self.watch
    }

    pub(crate) fn matches(&self, wm: &WorkingMemory, ctx: &Ctx) -> Vec<Match> {
        (self.matcher)(wm, ctx)
    }

    /// Delta-evaluation hook for `when_each` rules (None for join rules).
    pub(crate) fn each(&self) -> Option<&EachMatch<Ctx>> {
        self.each.as_ref()
    }

    pub(crate) fn fire(&mut self, wm: &mut WorkingMemory, ctx: &mut Ctx, m: &Match) {
        (self.action)(wm, ctx, m)
    }
}

impl<Ctx> std::fmt::Debug for Rule<Ctx> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("salience", &self.salience)
            .field("watch", &self.watch)
            .finish()
    }
}

/// Fluent builder returned by [`Rule::new`].
pub struct RuleBuilder<Ctx> {
    name: String,
    salience: i32,
    matcher: Option<Matcher<Ctx>>,
    action: Option<Action<Ctx>>,
    /// `None` = never declared (→ [`Watch::All`] unless `when_each` infers);
    /// `Some(types)` = explicit subscription list.
    watched_types: Option<Vec<TypeId>>,
    each: Option<EachMatch<Ctx>>,
}

impl<Ctx> RuleBuilder<Ctx> {
    /// Set the salience (default 0; higher fires first).
    pub fn salience(mut self, salience: i32) -> Self {
        self.salience = salience;
        self
    }

    /// Declare that the matcher reads facts of type `T`.
    ///
    /// Call once per fact type a [`RuleBuilder::when`] matcher inspects —
    /// including types it joins against but does not return in the match
    /// tuple. The engine then skips re-evaluating the matcher while all
    /// declared types are unchanged. Omitting the declaration is always
    /// safe (the rule watches everything); under-declaring is not.
    pub fn watches<T: crate::memory::Fact>(mut self) -> Self {
        let id = TypeId::of::<T>();
        let types = self.watched_types.get_or_insert_with(Vec::new);
        if !types.contains(&id) {
            types.push(id);
        }
        self
    }

    /// Full matcher: return every fact tuple this rule should fire on.
    pub fn when(
        mut self,
        matcher: impl Fn(&WorkingMemory, &Ctx) -> Vec<Match> + Send + 'static,
    ) -> Self {
        self.matcher = Some(Box::new(matcher));
        self
    }

    /// Convenience matcher over all facts of one type passing a predicate:
    /// each matching fact becomes a single-handle tuple. Automatically
    /// subscribes the rule to type `T` (dirty-set propagation).
    pub fn when_each<T: crate::memory::Fact>(
        mut self,
        pred: impl Fn(&T, &Ctx) -> bool + Send + Sync + 'static,
    ) -> Self {
        let pred = Arc::new(pred);
        let scan_pred = Arc::clone(&pred);
        self.matcher = Some(Box::new(move |wm, ctx| {
            wm.iter::<T>()
                .filter(|(_, t)| scan_pred(t, ctx))
                .map(|(h, _)| vec![h])
                .collect()
        }));
        // The same predicate, re-runnable for one handle: the engine's
        // delta path refreshes a stale cache by probing only changed facts.
        self.each = Some(EachMatch {
            type_id: TypeId::of::<T>(),
            probe: Box::new(move |wm, ctx, h| wm.get::<T>(h).is_some_and(|t| pred(t, ctx))),
        });
        self.watches::<T>()
    }

    /// Matcher that fires once (empty tuple) when a condition over the whole
    /// memory holds. Refraction note: an empty tuple has no versions, so the
    /// rule will not re-fire until the engine's fired-set is reset — use for
    /// one-shot setup rules.
    pub fn when_once(
        mut self,
        pred: impl Fn(&WorkingMemory, &Ctx) -> bool + Send + 'static,
    ) -> Self {
        self.matcher = Some(Box::new(
            move |wm, ctx| {
                if pred(wm, ctx) {
                    vec![vec![]]
                } else {
                    vec![]
                }
            },
        ));
        self
    }

    /// The action body; completes the rule.
    pub fn then(
        mut self,
        action: impl FnMut(&mut WorkingMemory, &mut Ctx, &Match) + Send + 'static,
    ) -> Rule<Ctx> {
        self.action = Some(Box::new(action));
        Rule {
            name: Arc::from(self.name.as_str()),
            salience: self.salience,
            matcher: self.matcher.expect("rule needs a `when` clause"),
            action: self.action.expect("rule needs a `then` clause"),
            watch: match self.watched_types {
                Some(types) => Watch::Types(types),
                None => Watch::All,
            },
            each: self.each,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Num(i64);

    #[derive(Debug)]
    struct Other(#[allow(dead_code)] i64);

    #[test]
    fn builder_produces_named_rule() {
        let r: Rule<()> = Rule::new("double-evens")
            .salience(5)
            .when_each::<Num>(|n, _| n.0 % 2 == 0)
            .then(|wm, _, m| {
                wm.update::<Num>(m[0], |n| n.0 *= 2);
            });
        assert_eq!(r.name(), "double-evens");
        assert_eq!(r.salience(), 5);
    }

    #[test]
    fn when_each_matches_per_fact() {
        let mut wm = WorkingMemory::new();
        wm.insert(Num(1));
        wm.insert(Num(2));
        wm.insert(Num(4));
        let r: Rule<()> = Rule::new("evens")
            .when_each::<Num>(|n, _| n.0 % 2 == 0)
            .then(|_, _, _| {});
        let ms = r.matches(&wm, &());
        assert_eq!(ms.len(), 2);
        for m in &ms {
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn when_once_fires_zero_or_one() {
        let mut wm = WorkingMemory::new();
        let r: Rule<()> = Rule::new("any-big")
            .when_once(|wm, _| wm.iter::<Num>().any(|(_, n)| n.0 > 10))
            .then(|_, _, _| {});
        assert!(r.matches(&wm, &()).is_empty());
        wm.insert(Num(20));
        assert_eq!(r.matches(&wm, &()), vec![Vec::<FactHandle>::new()]);
    }

    #[test]
    fn ctx_is_visible_to_matcher() {
        let mut wm = WorkingMemory::new();
        wm.insert(Num(5));
        let r: Rule<i64> = Rule::new("above-threshold")
            .when_each::<Num>(|n, threshold| n.0 > *threshold)
            .then(|_, _, _| {});
        assert_eq!(r.matches(&wm, &3).len(), 1);
        assert_eq!(r.matches(&wm, &9).len(), 0);
    }

    #[test]
    #[should_panic(expected = "when")]
    fn missing_when_panics() {
        let _: Rule<()> = RuleBuilder {
            name: "broken".into(),
            salience: 0,
            matcher: None,
            action: None,
            watched_types: None,
            each: None,
        }
        .then(|_, _, _| {});
    }

    #[test]
    fn fire_runs_action() {
        let mut wm = WorkingMemory::new();
        let h = wm.insert(Num(3));
        let mut r: Rule<()> = Rule::new("inc")
            .when_each::<Num>(|_, _| true)
            .then(|wm, _, m| {
                wm.update::<Num>(m[0], |n| n.0 += 1);
            });
        let m = vec![h];
        r.fire(&mut wm, &mut (), &m);
        assert_eq!(wm.get::<Num>(h).unwrap().0, 4);
    }

    #[test]
    fn when_each_auto_watches_its_type() {
        let r: Rule<()> = Rule::new("evens")
            .when_each::<Num>(|n, _| n.0 % 2 == 0)
            .then(|_, _, _| {});
        assert_eq!(r.watch(), &Watch::Types(vec![TypeId::of::<Num>()]));
    }

    #[test]
    fn undeclared_when_watches_all() {
        let r: Rule<()> = Rule::new("join").when(|_, _| vec![]).then(|_, _, _| {});
        assert_eq!(r.watch(), &Watch::All);
    }

    #[test]
    fn watches_declares_and_dedups_types() {
        let r: Rule<()> = Rule::new("join")
            .watches::<Num>()
            .watches::<Other>()
            .watches::<Num>()
            .when(|_, _| vec![])
            .then(|_, _, _| {});
        assert_eq!(
            r.watch(),
            &Watch::Types(vec![TypeId::of::<Num>(), TypeId::of::<Other>()])
        );
    }

    #[test]
    fn watch_dirtiness_is_per_type() {
        let mut wm = WorkingMemory::new();
        wm.insert(Num(1));
        let at = wm.generation();
        let watch_num = Watch::Types(vec![TypeId::of::<Num>()]);
        let watch_all = Watch::All;
        assert!(!watch_num.is_dirty(&wm, at));
        wm.insert(Other(1));
        assert!(
            !watch_num.is_dirty(&wm, at),
            "Other must not dirty Num watch"
        );
        assert!(watch_all.is_dirty(&wm, at));
        wm.insert(Num(2));
        assert!(watch_num.is_dirty(&wm, at));
    }
}
