//! # pwm-rules — a forward-chaining production rule engine
//!
//! The paper implements its Policy Service on the Drools rule engine; this
//! crate is the from-scratch Rust substitute. It provides the Drools
//! operational semantics the policy rules depend on:
//!
//! * a typed [`WorkingMemory`] of facts with insert / update / retract and
//!   per-fact version counters,
//! * [`Rule`]s with `when` matchers and `then` actions, carrying *salience*
//!   priorities, generic over a shared globals type `Ctx`,
//! * a [`Session`] that fires rules to quiescence with Drools-style
//!   *refraction* (a rule fires once per fact tuple until one of the facts
//!   is updated), salience-descending conflict resolution, and a firing
//!   budget guarding against divergent rule sets.
//!
//! Matching is *incremental*: each rule declares which fact types its
//! matcher reads ([`rule::Watch`]; `when_each` infers it, join rules use
//! [`RuleBuilder::watches`]), working memory tracks a per-type dirty
//! generation, and the session caches each rule's matches between firings —
//! re-evaluating a matcher only when a watched type actually changed. See
//! the [`engine`] module docs for the agenda design and its invariants.
//!
//! ```
//! use pwm_rules::{Rule, Session};
//!
//! #[derive(Debug)]
//! struct Transfer { streams: Option<u32> }
//!
//! struct Config { default_streams: u32 }
//!
//! let mut session: Session<Config> = Session::new();
//! session.wm.insert(Transfer { streams: None });
//! session.add_rule(
//!     Rule::new("assign default level of parallel streams")
//!         .when_each::<Transfer>(|t, _: &Config| t.streams.is_none())
//!         .then(|wm, cfg, m| {
//!             wm.update::<Transfer>(m[0], |t| t.streams = Some(cfg.default_streams));
//!         }),
//! );
//! let mut cfg = Config { default_streams: 4 };
//! let report = session.fire_all(&mut cfg);
//! assert_eq!(report.firings, 1);
//! ```

#![warn(missing_docs)]

pub mod engine;
#[cfg(feature = "legacy-facts")]
pub mod legacy;
pub mod memory;
#[cfg(test)]
mod naive;
pub mod query;
pub mod rule;

pub use engine::{FiringReport, RuleStats, Session};
#[cfg(feature = "legacy-facts")]
pub use legacy::LegacyWorkingMemory;
pub use memory::{Fact, FactHandle, FactId, WorkingMemory};
pub use query::{count_where, exists, group_by, max_by, select, sum_by};
pub use rule::{Match, Rule, RuleBuilder, Watch};
