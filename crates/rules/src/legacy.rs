//! The pre-arena fact store, preserved as a differential-test oracle.
//!
//! [`LegacyWorkingMemory`] is the original `BTreeMap<FactHandle, Box<dyn
//! Fact>>` implementation that [`crate::WorkingMemory`] replaced: every fact
//! behind its own heap allocation, every typed access paying a
//! `downcast_ref`, iteration hopping through per-type `BTreeSet`s. It is
//! deliberately kept byte-for-byte semantically identical to the store it
//! was — same handle numbering, same insertion-order iteration, same
//! generation/type-generation/changed-log behaviour — so the facts
//! differential suite (`tests/facts_differential.rs`) can drive both stores
//! through identical command sequences and fail loudly on any observable
//! divergence in the arena rewrite.
//!
//! Compiled only with the `legacy-facts` feature (on by default so the
//! differential suite runs in a stock `cargo test`). Production code must
//! not depend on this module.

use crate::memory::{Fact, FactHandle};
use std::any::{Any, TypeId};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::hash::Hash;

struct Slot {
    fact: Box<dyn Fact>,
    type_id: TypeId,
    version: u64,
}

/// Type-erased secondary index, maintained on every insert/update/retract.
trait ErasedIndex: Send {
    fn on_insert(&mut self, handle: FactHandle, fact: &dyn Fact);
    fn on_remove(&mut self, handle: FactHandle);
    fn on_update(&mut self, handle: FactHandle, fact: &dyn Fact);
    fn as_any(&self) -> &dyn Any;
}

/// Hash index from an extracted key to the handles bearing it.
struct KeyIndex<T: Fact, K: Eq + Hash + Clone + Send + 'static> {
    extract: fn(&T) -> K,
    map: HashMap<K, BTreeSet<FactHandle>>,
    back: HashMap<FactHandle, K>,
}

impl<T: Fact, K: Eq + Hash + Clone + Send + 'static> KeyIndex<T, K> {
    fn link(&mut self, handle: FactHandle, key: K) {
        self.map.entry(key.clone()).or_default().insert(handle);
        self.back.insert(handle, key);
    }

    fn unlink(&mut self, handle: FactHandle) {
        if let Some(key) = self.back.remove(&handle) {
            if let Some(set) = self.map.get_mut(&key) {
                set.remove(&handle);
                if set.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }
}

impl<T: Fact, K: Eq + Hash + Clone + Send + 'static> ErasedIndex for KeyIndex<T, K> {
    fn on_insert(&mut self, handle: FactHandle, fact: &dyn Fact) {
        let t = fact.as_any().downcast_ref::<T>().expect("index fact type");
        self.link(handle, (self.extract)(t));
    }

    fn on_remove(&mut self, handle: FactHandle) {
        self.unlink(handle);
    }

    fn on_update(&mut self, handle: FactHandle, fact: &dyn Fact) {
        let t = fact.as_any().downcast_ref::<T>().expect("index fact type");
        let key = (self.extract)(t);
        if self.back.get(&handle) == Some(&key) {
            return;
        }
        self.unlink(handle);
        self.link(handle, key);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Per-type log of recently mutated handles (see the arena store's
/// `TypeLog` — the semantics are identical and must stay so).
#[derive(Default)]
struct TypeLog {
    entries: Vec<(u64, FactHandle)>,
    floor: u64,
}

const TYPE_LOG_CAP: usize = 1024;

impl TypeLog {
    fn push(&mut self, gen: u64, handle: FactHandle) {
        if let Some(last) = self.entries.last_mut() {
            if last.1 == handle {
                last.0 = gen;
                return;
            }
        }
        if self.entries.len() >= TYPE_LOG_CAP {
            let drop = self.entries.len() / 2;
            self.floor = self.entries[drop - 1].0;
            self.entries.drain(..drop);
        }
        self.entries.push((gen, handle));
    }

    fn since(&self, gen: u64) -> Option<&[(u64, FactHandle)]> {
        if gen < self.floor {
            return None;
        }
        let start = self.entries.partition_point(|&(g, _)| g <= gen);
        Some(&self.entries[start..])
    }
}

/// The original boxed-fact store: the oracle the arena [`crate::WorkingMemory`]
/// is differentially tested against. API and observable behaviour are a
/// strict subset-match of the arena store (everything except [`crate::FactId`],
/// which has no legacy equivalent).
#[derive(Default)]
pub struct LegacyWorkingMemory {
    slots: BTreeMap<FactHandle, Slot>,
    by_type: HashMap<TypeId, BTreeSet<FactHandle>>,
    next_handle: u64,
    generation: u64,
    type_gen: HashMap<TypeId, u64>,
    indexes: HashMap<(TypeId, TypeId), Box<dyn ErasedIndex>>,
    type_log: HashMap<TypeId, TypeLog>,
}

impl fmt::Debug for LegacyWorkingMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LegacyWorkingMemory")
            .field("facts", &self.slots.len())
            .field("generation", &self.generation)
            .finish()
    }
}

impl LegacyWorkingMemory {
    /// Empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a fact, returning its handle.
    pub fn insert<T: Fact>(&mut self, fact: T) -> FactHandle {
        let handle = FactHandle(self.next_handle);
        self.next_handle += 1;
        let type_id = TypeId::of::<T>();
        for (_, idx) in self
            .indexes
            .iter_mut()
            .filter(|((ft, _), _)| *ft == type_id)
        {
            idx.on_insert(handle, &fact);
        }
        self.slots.insert(
            handle,
            Slot {
                fact: Box::new(fact),
                type_id,
                version: 0,
            },
        );
        self.by_type.entry(type_id).or_default().insert(handle);
        self.generation += 1;
        self.type_gen.insert(type_id, self.generation);
        self.type_log
            .entry(type_id)
            .or_default()
            .push(self.generation, handle);
        handle
    }

    /// Remove a fact. Returns `true` if it existed.
    pub fn retract(&mut self, handle: FactHandle) -> bool {
        match self.slots.remove(&handle) {
            Some(slot) => {
                if let Some(set) = self.by_type.get_mut(&slot.type_id) {
                    set.remove(&handle);
                }
                let type_id = slot.type_id;
                for (_, idx) in self
                    .indexes
                    .iter_mut()
                    .filter(|((ft, _), _)| *ft == type_id)
                {
                    idx.on_remove(handle);
                }
                self.generation += 1;
                self.type_gen.insert(type_id, self.generation);
                self.type_log
                    .entry(type_id)
                    .or_default()
                    .push(self.generation, handle);
                true
            }
            None => false,
        }
    }

    /// Immutable access to a fact of known type.
    pub fn get<T: Fact>(&self, handle: FactHandle) -> Option<&T> {
        // `as_ref()` is load-bearing: calling `as_any()` directly on the Box
        // would resolve the blanket `Fact` impl for `Box<dyn Fact>` itself
        // and downcasting would always fail.
        self.slots
            .get(&handle)
            .and_then(|s| s.fact.as_ref().as_any().downcast_ref::<T>())
    }

    /// Mutate a fact in place; bumps its version. Returns `false` if the
    /// handle is stale or the type is wrong.
    pub fn update<T: Fact>(&mut self, handle: FactHandle, f: impl FnOnce(&mut T)) -> bool {
        match self.slots.get_mut(&handle) {
            Some(slot) => match slot.fact.as_mut().as_any_mut().downcast_mut::<T>() {
                Some(value) => {
                    let type_id = TypeId::of::<T>();
                    f(value);
                    for (_, idx) in self
                        .indexes
                        .iter_mut()
                        .filter(|((ft, _), _)| *ft == type_id)
                    {
                        idx.on_update(handle, &*value);
                    }
                    slot.version += 1;
                    self.generation += 1;
                    self.type_gen.insert(type_id, self.generation);
                    self.type_log
                        .entry(type_id)
                        .or_default()
                        .push(self.generation, handle);
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Current version of a fact (None if retracted).
    pub fn version(&self, handle: FactHandle) -> Option<u64> {
        self.slots.get(&handle).map(|s| s.version)
    }

    /// Monotone counter over all mutations.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Generation at which facts of `type_id` were last mutated.
    pub fn type_generation(&self, type_id: TypeId) -> u64 {
        self.type_gen.get(&type_id).copied().unwrap_or(0)
    }

    /// Typed convenience wrapper over [`LegacyWorkingMemory::type_generation`].
    pub fn type_generation_of<T: Fact>(&self) -> u64 {
        self.type_generation(TypeId::of::<T>())
    }

    /// Iterate all facts of type `T` in handle (= insertion) order.
    pub fn iter<T: Fact>(&self) -> impl Iterator<Item = (FactHandle, &T)> {
        self.by_type
            .get(&TypeId::of::<T>())
            .into_iter()
            .flat_map(|set| set.iter())
            .filter_map(move |h| self.get::<T>(*h).map(|t| (*h, t)))
    }

    /// Handles of all facts of type `T`, insertion order.
    pub fn handles<T: Fact>(&self) -> Vec<FactHandle> {
        self.iter::<T>().map(|(h, _)| h).collect()
    }

    /// First fact of type `T` matching `pred`.
    pub fn find<T: Fact>(&self, pred: impl Fn(&T) -> bool) -> Option<(FactHandle, &T)> {
        self.iter::<T>().find(|(_, t)| pred(t))
    }

    /// Register a hash index over facts of type `T`, keyed by `extract`.
    pub fn register_index<T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &mut self,
        extract: fn(&T) -> K,
    ) {
        let mut index = KeyIndex::<T, K> {
            extract,
            map: HashMap::new(),
            back: HashMap::new(),
        };
        let existing: Vec<(FactHandle, K)> =
            self.iter::<T>().map(|(h, t)| (h, extract(t))).collect();
        for (h, key) in existing {
            index.link(h, key);
        }
        self.indexes
            .insert((TypeId::of::<T>(), TypeId::of::<K>()), Box::new(index));
    }

    fn key_index<T: Fact, K: Eq + Hash + Clone + Send + 'static>(&self) -> &KeyIndex<T, K> {
        self.indexes
            .get(&(TypeId::of::<T>(), TypeId::of::<K>()))
            .unwrap_or_else(|| {
                panic!(
                    "no index over {} keyed by {}; call register_index first",
                    std::any::type_name::<T>(),
                    std::any::type_name::<K>()
                )
            })
            .as_any()
            .downcast_ref::<KeyIndex<T, K>>()
            .expect("index shape matches its registration key")
    }

    /// Handles of facts of type `T` whose indexed key equals `key`.
    pub fn lookup_by<T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &self,
        key: &K,
    ) -> Vec<FactHandle> {
        self.key_index::<T, K>()
            .map
            .get(key)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Iterate facts of type `T` whose indexed key equals `key`.
    pub fn iter_by<'a, T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &'a self,
        key: &K,
    ) -> impl Iterator<Item = (FactHandle, &'a T)> + 'a {
        self.key_index::<T, K>()
            .map
            .get(key)
            .into_iter()
            .flat_map(|set| set.iter())
            .filter_map(move |h| self.get::<T>(*h).map(|t| (*h, t)))
    }

    /// Handles of facts of `type_id` mutated at generations strictly after
    /// `gen`, oldest first, or `None` if the per-type log has been
    /// compacted past `gen`.
    pub fn changed_since(&self, type_id: TypeId, gen: u64) -> Option<&[(u64, FactHandle)]> {
        match self.type_log.get(&type_id) {
            Some(log) => log.since(gen),
            None => Some(&[]),
        }
    }

    /// First (lowest-handle) fact of type `T` whose indexed key equals `key`.
    pub fn find_by<T: Fact, K: Eq + Hash + Clone + Send + 'static>(
        &self,
        key: &K,
    ) -> Option<(FactHandle, &T)> {
        let handle = *self.key_index::<T, K>().map.get(key)?.iter().next()?;
        Some((handle, self.get::<T>(handle).expect("indexed fact is live")))
    }

    /// Number of facts of type `T`.
    pub fn count<T: Fact>(&self) -> usize {
        self.by_type
            .get(&TypeId::of::<T>())
            .map(|s| s.len())
            .unwrap_or(0)
    }

    /// Total facts of all types.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no facts are stored.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// True if the handle refers to a live fact.
    pub fn contains(&self, handle: FactHandle) -> bool {
        self.slots.contains_key(&handle)
    }

    /// Retract every fact of type `T`; returns how many were removed.
    pub fn retract_all<T: Fact>(&mut self) -> usize {
        let handles = self.handles::<T>();
        let n = handles.len();
        for h in handles {
            self.retract(h);
        }
        n
    }
}
