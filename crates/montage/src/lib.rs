//! # pwm-montage — workload generators
//!
//! The workloads of the paper's evaluation and of the ablation benches:
//!
//! * [`montage`] — the Montage astronomy workflow (the paper's benchmark),
//!   sized so the no-clustering plan has exactly the paper's **89 data
//!   staging jobs**, with the augmentation knob that adds one extra
//!   WAN-staged file (10 MB – 1 GB in the experiments) per staging job;
//! * [`synthetic`] — pipelines, fork-joins, and seeded random layered DAGs
//!   for tests and secondary experiments;
//! * [`workloads`] — CyberShake-like (sharing-heavy) and Epigenomics-like
//!   (pipeline-parallel) shapes for cross-workload studies.

#![warn(missing_docs)]

pub mod montage;
pub mod synthetic;
pub mod workloads;

pub use montage::{montage_one_degree, montage_replicas, montage_workflow, MontageConfig};
pub use synthetic::{chain, fork_join, random_layered, single_source_replicas, RandomDagConfig};
pub use workloads::{cybershake_like, epigenomics_like, CyberShakeConfig, EpigenomicsConfig};
