//! Synthetic workload generators.
//!
//! Smaller, parameterized DAG shapes used by tests, examples, and ablation
//! benches: pipelines, fork-joins, and seeded random layered DAGs (the shape
//! family of the Bharathi et al. workflow generator the Pegasus group uses).

use pwm_sim::SimRng;
use pwm_workflow::{AbstractJob, AbstractWorkflow, ReplicaCatalog};

fn job(
    name: String,
    transformation: &str,
    runtime_s: f64,
    inputs: Vec<String>,
    outputs: Vec<String>,
) -> AbstractJob {
    AbstractJob {
        name,
        transformation: transformation.to_string(),
        runtime_s,
        inputs,
        outputs,
    }
}

/// A linear pipeline of `n` jobs, each consuming its predecessor's output.
/// The first job reads an external input of `input_bytes`.
pub fn chain(n: usize, input_bytes: u64) -> AbstractWorkflow {
    assert!(n >= 1);
    let mut wf = AbstractWorkflow::new(format!("chain-{n}"));
    wf.set_file_size("chain_in", input_bytes);
    for i in 0..n {
        let input = if i == 0 {
            "chain_in".to_string()
        } else {
            format!("link_{}", i - 1)
        };
        let output = format!("link_{i}");
        wf.set_file_size(&output, 1_000_000);
        wf.add_job(job(
            format!("stage_{i}"),
            "process",
            4.0,
            vec![input],
            vec![output],
        ));
    }
    wf
}

/// `width` independent workers fanning out of a splitter and joining into a
/// merger. Each worker reads one external input of `input_bytes`.
pub fn fork_join(width: usize, input_bytes: u64) -> AbstractWorkflow {
    assert!(width >= 1);
    let mut wf = AbstractWorkflow::new(format!("forkjoin-{width}"));
    wf.set_file_size("seed_in", 100_000);
    let splits: Vec<String> = (0..width).map(|i| format!("split_{i}")).collect();
    for s in &splits {
        wf.set_file_size(s, 100_000);
    }
    wf.add_job(job(
        "split".into(),
        "split",
        2.0,
        vec!["seed_in".into()],
        splits.clone(),
    ));
    let mut merged_inputs = Vec::new();
    for i in 0..width {
        let external = format!("work_in_{i}");
        let out = format!("work_out_{i}");
        wf.set_file_size(&external, input_bytes);
        wf.set_file_size(&out, 500_000);
        merged_inputs.push(out.clone());
        wf.add_job(job(
            format!("work_{i}"),
            "work",
            6.0,
            vec![format!("split_{i}"), external],
            vec![out],
        ));
    }
    wf.set_file_size("merged", 1_000_000);
    wf.add_job(job(
        "merge".into(),
        "merge",
        5.0,
        merged_inputs,
        vec!["merged".into()],
    ));
    wf
}

/// Parameters for [`random_layered`].
#[derive(Debug, Clone)]
pub struct RandomDagConfig {
    /// Number of levels.
    pub levels: usize,
    /// Jobs per level.
    pub width: usize,
    /// Probability of an edge between a job and each job of the previous
    /// level (at least one edge is always created).
    pub edge_prob: f64,
    /// Size of each level-0 external input.
    pub input_bytes: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            levels: 4,
            width: 8,
            edge_prob: 0.3,
            input_bytes: 5_000_000,
            seed: 0,
        }
    }
}

/// A seeded random layered DAG: `levels × width` jobs, edges only between
/// adjacent levels (acyclic by construction).
pub fn random_layered(config: &RandomDagConfig) -> AbstractWorkflow {
    assert!(config.levels >= 1 && config.width >= 1);
    let mut rng = SimRng::for_component(config.seed, "random-dag");
    let mut wf = AbstractWorkflow::new(format!(
        "random-{}x{}-s{}",
        config.levels, config.width, config.seed
    ));
    for level in 0..config.levels {
        for slot in 0..config.width {
            let name = format!("job_l{level}_s{slot}");
            let out = format!("out_l{level}_s{slot}");
            wf.set_file_size(&out, 1_000_000);
            let mut inputs = Vec::new();
            if level == 0 {
                let external = format!("in_s{slot}");
                wf.set_file_size(&external, config.input_bytes);
                inputs.push(external);
            } else {
                for parent_slot in 0..config.width {
                    if rng.chance(config.edge_prob) {
                        inputs.push(format!("out_l{}_s{parent_slot}", level - 1));
                    }
                }
                if inputs.is_empty() {
                    // Guarantee connectivity to the previous level.
                    let parent_slot = rng.uniform_u64(0, config.width as u64 - 1);
                    inputs.push(format!("out_l{}_s{parent_slot}", level - 1));
                }
            }
            let runtime = rng.uniform(2.0, 12.0);
            wf.add_job(job(name, "synthetic", runtime, inputs, vec![out]));
        }
    }
    wf
}

/// Register every external input of `workflow` on one source host.
pub fn single_source_replicas(
    workflow: &AbstractWorkflow,
    host_name: &str,
    host: pwm_net::HostId,
) -> ReplicaCatalog {
    let mut rc = ReplicaCatalog::new();
    for file in workflow.external_inputs().expect("valid workflow") {
        rc.insert(
            &file,
            pwm_core::Url::new("gsiftp", host_name, format!("/data/{file}")),
            host,
        );
    }
    rc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_a_path() {
        let wf = chain(5, 1_000);
        assert_eq!(wf.len(), 5);
        let levels = wf.validate().unwrap();
        assert_eq!(levels, vec![0, 1, 2, 3, 4]);
        assert_eq!(wf.external_inputs().unwrap().len(), 1);
    }

    #[test]
    fn fork_join_shape() {
        let wf = fork_join(6, 1_000);
        assert_eq!(wf.len(), 8); // split + 6 workers + merge
        let levels = wf.validate().unwrap();
        assert_eq!(*levels.iter().max().unwrap(), 2);
        // 1 seed + 6 worker externals.
        assert_eq!(wf.external_inputs().unwrap().len(), 7);
    }

    #[test]
    fn random_layered_is_acyclic_and_connected() {
        for seed in 0..5 {
            let wf = random_layered(&RandomDagConfig {
                seed,
                ..Default::default()
            });
            let levels = wf.validate().unwrap();
            assert_eq!(wf.len(), 32);
            // Every non-root level job depends on something above it.
            assert_eq!(*levels.iter().max().unwrap(), 3);
        }
    }

    #[test]
    fn random_layered_is_deterministic() {
        let cfg = RandomDagConfig {
            seed: 9,
            ..Default::default()
        };
        let a = random_layered(&cfg);
        let b = random_layered(&cfg);
        for (ja, jb) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(ja.inputs, jb.inputs);
            assert_eq!(ja.runtime_s, jb.runtime_s);
        }
    }

    #[test]
    fn single_source_replicas_cover_externals() {
        let wf = fork_join(3, 1_000);
        let rc = single_source_replicas(&wf, "src", pwm_net::HostId(0));
        assert_eq!(rc.len(), wf.external_inputs().unwrap().len());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn random_dags_always_validate(
            levels in 1usize..6,
            width in 1usize..10,
            edge_prob in 0.0f64..1.0,
            seed in 0u64..1000,
        ) {
            let wf = random_layered(&RandomDagConfig {
                levels,
                width,
                edge_prob,
                input_bytes: 1_000,
                seed,
            });
            prop_assert!(wf.validate().is_ok());
            prop_assert_eq!(wf.len(), levels * width);
        }

        #[test]
        fn chains_external_bytes_match(n in 1usize..20, bytes in 1u64..1_000_000) {
            let wf = chain(n, bytes);
            prop_assert_eq!(wf.external_input_bytes().unwrap(), bytes);
        }
    }
}
