//! The Montage astronomy workflow generator.
//!
//! Montage "is used to construct large image mosaics of the sky ... input
//! files are images re-projected onto a sphere, and overlap is calculated
//! for each input image ... the reprojected images are co-added into a final
//! mosaic". We generate the classic nine-transformation shape
//! (mProjectPP → mDiffFit → mConcatFit → mBgModel → mBackground → mImgtbl →
//! mAdd → mShrink → mJPEG) over an `r × c` tile grid with horizontal,
//! vertical, and diagonal overlaps.
//!
//! **Sizing.** The paper's 1-degree-square workflow has **89 data staging
//! jobs** with no clustering (one stage-in per compute job). A 4×5 grid with
//! diagonal overlaps gives 20 + 43 + 1 + 1 + 20 + 1 + 1 + 1 + 1 = 89 compute
//! jobs, each with at least one external input, reproducing that count
//! exactly ([`MontageConfig::default`]).
//!
//! **Augmentation.** `extra_file_bytes > 0` reproduces the paper's
//! augmented workflow: "we augmented the Montage 1 degree square workflow to
//! stage one additional data file for each data staging job", with sizes 10
//! MB – 1 GB in the experiments. Extra files are distinct per job and live
//! on the remote GridFTP host; the ordinary Montage inputs live on the local
//! Apache host ("Montage input image files were stored on the Obelix cluster
//! and staged in via an Apache web server").

use pwm_sim::SimRng;
use pwm_workflow::{AbstractJob, AbstractWorkflow, ReplicaCatalog};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct MontageConfig {
    /// Tile grid rows.
    pub rows: u32,
    /// Tile grid columns.
    pub cols: u32,
    /// Size of the one additional WAN-staged file per compute job
    /// (0 = unaugmented workflow).
    pub extra_file_bytes: u64,
    /// Seed for per-file size jitter.
    pub seed: u64,
}

impl Default for MontageConfig {
    /// The paper's 1-degree-square workflow: 89 compute jobs.
    fn default() -> Self {
        MontageConfig {
            rows: 4,
            cols: 5,
            extra_file_bytes: 0,
            seed: 0,
        }
    }
}

impl MontageConfig {
    /// Number of mProjectPP jobs (grid tiles).
    pub fn projections(&self) -> u32 {
        self.rows * self.cols
    }

    /// Number of mDiffFit jobs: horizontal + vertical + diagonal overlaps.
    pub fn diffs(&self) -> u32 {
        let (r, c) = (self.rows, self.cols);
        r * (c - 1) + (r - 1) * c + (r - 1) * (c - 1)
    }

    /// Total compute jobs in the generated workflow.
    pub fn total_jobs(&self) -> u32 {
        // proj + diff + concat + bgmodel + background + imgtbl + add +
        // shrink + jpeg
        self.projections() + self.diffs() + 1 + 1 + self.projections() + 1 + 1 + 1 + 1
    }
}

/// Mean runtimes (seconds) per transformation, in the "several seconds"
/// regime the paper describes for mProjectPP, with the long-tail steps
/// (mConcatFit, mBgModel, mAdd) matching published Montage profiles.
fn runtime_for(transformation: &str) -> f64 {
    match transformation {
        "mProjectPP" => 8.0,
        "mDiffFit" => 3.0,
        "mConcatFit" => 25.0,
        "mBgModel" => 20.0,
        "mBackground" => 2.0,
        "mImgtbl" => 3.0,
        "mAdd" => 40.0,
        "mShrink" => 10.0,
        "mJPEG" => 2.0,
        _ => 5.0,
    }
}

/// Generate the Montage workflow.
pub fn montage_workflow(config: &MontageConfig) -> AbstractWorkflow {
    assert!(
        config.rows >= 2 && config.cols >= 2,
        "grid must be at least 2×2"
    );
    let mut wf = AbstractWorkflow::new(format!(
        "montage-{}x{}{}",
        config.rows,
        config.cols,
        if config.extra_file_bytes > 0 {
            "-aug"
        } else {
            ""
        }
    ));
    let mut rng = SimRng::for_component(config.seed, "montage-sizes");
    let mut set_size = |wf: &mut AbstractWorkflow, file: &str, mean: f64, jitter: f64| {
        let bytes = (mean * rng.jitter(jitter)).max(1.0) as u64;
        wf.set_file_size(file, bytes);
    };

    let tile = |i: u32, j: u32| format!("{i:02}_{j:02}");
    let add_compute = |wf: &mut AbstractWorkflow,
                       name: String,
                       transformation: &str,
                       mut inputs: Vec<String>,
                       outputs: Vec<String>| {
        // Every compute job reads a small per-job control file from the
        // local Apache server, so every job has an external input and the
        // no-clustering plan has exactly one stage-in job per compute job —
        // the paper's 89.
        let control = format!("params_{name}.tbl");
        wf.set_file_size(&control, 10_000);
        inputs.push(control);
        // The augmentation: one additional (distinct) WAN-staged file per
        // data staging job.
        if config.extra_file_bytes > 0 {
            let extra = format!("extra_{name}.dat");
            wf.set_file_size(&extra, config.extra_file_bytes);
            inputs.push(extra);
        }
        wf.add_job(AbstractJob {
            name: name.clone(),
            transformation: transformation.to_string(),
            runtime_s: runtime_for(transformation),
            inputs,
            outputs,
        });
    };

    // 1. mProjectPP per tile: raw 2MASS image → reprojected image.
    for i in 0..config.rows {
        for j in 0..config.cols {
            let t = tile(i, j);
            let raw = format!("2mass_{t}.fits");
            let proj = format!("p_{t}.fits");
            let area = format!("p_area_{t}.fits");
            // "the average size of 2 MBytes for stage-in files for the most
            // data-intensive Montage job (mProjectPP)"
            set_size(&mut wf, &raw, 2.0e6, 0.15);
            set_size(&mut wf, &proj, 4.0e6, 0.1);
            set_size(&mut wf, &area, 4.0e6, 0.1);
            add_compute(
                &mut wf,
                format!("mProjectPP_{t}"),
                "mProjectPP",
                vec![raw],
                vec![proj, area],
            );
        }
    }

    // 2. mDiffFit per overlapping tile pair (horizontal, vertical, diagonal).
    let mut pairs: Vec<(String, String)> = Vec::new();
    for i in 0..config.rows {
        for j in 0..config.cols {
            if j + 1 < config.cols {
                pairs.push((tile(i, j), tile(i, j + 1)));
            }
            if i + 1 < config.rows {
                pairs.push((tile(i, j), tile(i + 1, j)));
            }
            if i + 1 < config.rows && j + 1 < config.cols {
                pairs.push((tile(i, j), tile(i + 1, j + 1)));
            }
        }
    }
    let mut fit_files = Vec::new();
    for (k, (a, b)) in pairs.iter().enumerate() {
        let fit = format!("fit_{k:03}.txt");
        set_size(&mut wf, &fit, 10_000.0, 0.2);
        fit_files.push(fit.clone());
        add_compute(
            &mut wf,
            format!("mDiffFit_{k:03}"),
            "mDiffFit",
            vec![format!("p_{a}.fits"), format!("p_{b}.fits")],
            vec![fit],
        );
    }

    // 3. mConcatFit merges every fit.
    set_size(&mut wf, "fits.tbl", 50_000.0, 0.1);
    add_compute(
        &mut wf,
        "mConcatFit".to_string(),
        "mConcatFit",
        fit_files,
        vec!["fits.tbl".to_string()],
    );

    // 4. mBgModel computes background corrections.
    set_size(&mut wf, "corrections.tbl", 20_000.0, 0.1);
    add_compute(
        &mut wf,
        "mBgModel".to_string(),
        "mBgModel",
        vec!["fits.tbl".to_string()],
        vec!["corrections.tbl".to_string()],
    );

    // 5. mBackground per tile: corrected image.
    let mut corrected = Vec::new();
    for i in 0..config.rows {
        for j in 0..config.cols {
            let t = tile(i, j);
            let c = format!("c_{t}.fits");
            set_size(&mut wf, &c, 4.0e6, 0.1);
            corrected.push(c.clone());
            add_compute(
                &mut wf,
                format!("mBackground_{t}"),
                "mBackground",
                vec![format!("p_{t}.fits"), "corrections.tbl".to_string()],
                vec![c],
            );
        }
    }

    // 6. mImgtbl indexes the corrected images.
    set_size(&mut wf, "images.tbl", 60_000.0, 0.1);
    add_compute(
        &mut wf,
        "mImgtbl".to_string(),
        "mImgtbl",
        corrected.clone(),
        vec!["images.tbl".to_string()],
    );

    // 7. mAdd co-adds into the mosaic.
    set_size(&mut wf, "mosaic.fits", 160.0e6, 0.05);
    let mut add_inputs = corrected;
    add_inputs.push("images.tbl".to_string());
    add_compute(
        &mut wf,
        "mAdd".to_string(),
        "mAdd",
        add_inputs,
        vec!["mosaic.fits".to_string()],
    );

    // 8. mShrink and 9. mJPEG finish the pipeline.
    set_size(&mut wf, "shrunken.fits", 20.0e6, 0.05);
    add_compute(
        &mut wf,
        "mShrink".to_string(),
        "mShrink",
        vec!["mosaic.fits".to_string()],
        vec!["shrunken.fits".to_string()],
    );
    set_size(&mut wf, "mosaic.jpg", 2.0e6, 0.05);
    add_compute(
        &mut wf,
        "mJPEG".to_string(),
        "mJPEG",
        vec!["shrunken.fits".to_string()],
        vec!["mosaic.jpg".to_string()],
    );

    wf
}

/// The paper's augmented 1-degree workflow: 89 compute jobs, one extra
/// WAN-staged file of `extra_file_bytes` per staging job.
pub fn montage_one_degree(extra_file_bytes: u64, seed: u64) -> AbstractWorkflow {
    montage_workflow(&MontageConfig {
        extra_file_bytes,
        seed,
        ..Default::default()
    })
}

/// Register replicas for every external input of a Montage workflow:
/// `extra_*` files on the remote GridFTP host (the FutureGrid VM), all other
/// inputs (raw images, control files) on the local Apache host.
pub fn montage_replicas(
    workflow: &AbstractWorkflow,
    apache: (&str, pwm_net::HostId),
    gridftp: (&str, pwm_net::HostId),
) -> ReplicaCatalog {
    let mut rc = ReplicaCatalog::new();
    for file in workflow.external_inputs().expect("valid workflow") {
        if file.starts_with("extra_") {
            rc.insert(
                &file,
                pwm_core::Url::new("gsiftp", gridftp.0, format!("/data/{file}")),
                gridftp.1,
            );
        } else {
            rc.insert(
                &file,
                pwm_core::Url::new("http", apache.0, format!("/montage/{file}")),
                apache.1,
            );
        }
    }
    rc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_has_89_compute_jobs() {
        let cfg = MontageConfig::default();
        assert_eq!(cfg.projections(), 20);
        assert_eq!(cfg.diffs(), 43);
        assert_eq!(cfg.total_jobs(), 89);
        let wf = montage_workflow(&cfg);
        assert_eq!(wf.len(), 89);
    }

    #[test]
    fn workflow_validates_as_a_dag() {
        let wf = montage_one_degree(0, 1);
        let levels = wf.validate().unwrap();
        // Pipeline depth: proj(0) → diff(1) → concat(2) → bgmodel(3) →
        // background(4) → imgtbl(5) → add(6) → shrink(7) → jpeg(8).
        assert_eq!(*levels.iter().max().unwrap(), 8);
    }

    #[test]
    fn every_job_has_an_external_input() {
        // This is what makes the no-clustering plan have one stage-in per
        // compute job — the paper's 89 staging jobs.
        let wf = montage_one_degree(0, 1);
        let producers = wf.producers().unwrap();
        for job in wf.jobs() {
            let has_external = job
                .inputs
                .iter()
                .any(|f| !producers.contains_key(f.as_str()));
            assert!(has_external, "job {} has no external input", job.name);
        }
    }

    #[test]
    fn augmentation_adds_one_distinct_extra_file_per_job() {
        let wf = montage_one_degree(100_000_000, 1);
        let mut extra_count = 0;
        let mut seen = std::collections::BTreeSet::new();
        for job in wf.jobs() {
            let extras: Vec<&String> = job
                .inputs
                .iter()
                .filter(|f| f.starts_with("extra_"))
                .collect();
            assert_eq!(extras.len(), 1, "job {} extras {:?}", job.name, extras);
            assert!(seen.insert(extras[0].clone()), "duplicate extra file");
            assert_eq!(wf.file_size(extras[0]), Some(100_000_000));
            extra_count += 1;
        }
        assert_eq!(extra_count, 89);
    }

    #[test]
    fn unaugmented_has_no_extra_files() {
        let wf = montage_one_degree(0, 1);
        for job in wf.jobs() {
            assert!(job.inputs.iter().all(|f| !f.starts_with("extra_")));
        }
    }

    #[test]
    fn raw_images_average_two_megabytes() {
        let wf = montage_one_degree(0, 7);
        let sizes: Vec<u64> = wf
            .external_inputs()
            .unwrap()
            .iter()
            .filter(|f| f.starts_with("2mass_"))
            .map(|f| wf.file_size(f).unwrap())
            .collect();
        assert_eq!(sizes.len(), 20);
        let mean = sizes.iter().sum::<u64>() as f64 / sizes.len() as f64;
        assert!((1.6e6..2.4e6).contains(&mean), "mean raw size {mean}");
    }

    #[test]
    fn size_jitter_is_deterministic_per_seed() {
        let a = montage_one_degree(0, 5);
        let b = montage_one_degree(0, 5);
        let c = montage_one_degree(0, 6);
        let size = |wf: &AbstractWorkflow| wf.file_size("2mass_00_00.fits").unwrap();
        assert_eq!(size(&a), size(&b));
        assert_ne!(size(&a), size(&c));
    }

    #[test]
    fn replicas_split_by_source_host() {
        let wf = montage_one_degree(10_000_000, 1);
        let rc = montage_replicas(
            &wf,
            ("apache-isi", pwm_net::HostId(1)),
            ("gridftp-vm", pwm_net::HostId(0)),
        );
        let extras = rc.lookup("extra_mAdd.dat").unwrap();
        assert_eq!(extras.url.scheme, "gsiftp");
        assert_eq!(extras.host, pwm_net::HostId(0));
        let raw = rc.lookup("2mass_00_00.fits").unwrap();
        assert_eq!(raw.url.scheme, "http");
        assert_eq!(raw.host, pwm_net::HostId(1));
        // Every external input has a replica.
        assert_eq!(rc.len(), wf.external_inputs().unwrap().len());
    }

    #[test]
    fn bigger_grids_scale_job_counts() {
        let cfg = MontageConfig {
            rows: 5,
            cols: 5,
            ..Default::default()
        };
        assert_eq!(cfg.total_jobs(), 25 + (20 + 20 + 16) + 2 + 25 + 4);
        let wf = montage_workflow(&cfg);
        assert_eq!(wf.len() as u32, cfg.total_jobs());
    }

    #[test]
    #[should_panic(expected = "at least 2×2")]
    fn degenerate_grid_rejected() {
        montage_workflow(&MontageConfig {
            rows: 1,
            cols: 5,
            ..Default::default()
        });
    }
}
