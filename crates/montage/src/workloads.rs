//! Additional realistic workflow shapes.
//!
//! The paper motivates the Policy Service with "scientific applications in a
//! number of domains"; the Pegasus group's workflow characterization
//! (Bharathi et al.) describes the canonical shapes. Beyond Montage we
//! provide two of them for cross-workload experiments:
//!
//! * **CyberShake-like** (earthquake hazard): a handful of huge
//!   strain-green-tensor inputs shared by thousands of small seismogram
//!   jobs — a *sharing-heavy* staging pattern (the dedup rules shine here);
//! * **Epigenomics-like** (DNA methylation): long independent lanes of
//!   sequential filtering/mapping stages — a *pipeline-parallel* pattern
//!   with staging only at the head of each lane.

use pwm_sim::SimRng;
use pwm_workflow::{AbstractJob, AbstractWorkflow};

/// Parameters for [`cybershake_like`].
#[derive(Debug, Clone)]
pub struct CyberShakeConfig {
    /// Rupture variations (pairs of seismogram + peak-value jobs).
    pub variations: u32,
    /// Shared strain-green-tensor files (each consumed by *every*
    /// seismogram job).
    pub sgt_files: u32,
    /// Size of each shared SGT file in bytes.
    pub sgt_bytes: u64,
    /// Seed for runtime jitter.
    pub seed: u64,
}

impl Default for CyberShakeConfig {
    fn default() -> Self {
        CyberShakeConfig {
            variations: 40,
            sgt_files: 2,
            sgt_bytes: 500_000_000,
            seed: 0,
        }
    }
}

/// Generate a CyberShake-like workflow: `sgt_files` huge shared inputs,
/// `variations` × (ExtractSGT → SeismogramSynthesis → PeakValCalc) chains,
/// and a final ZipSeis collector.
pub fn cybershake_like(config: &CyberShakeConfig) -> AbstractWorkflow {
    assert!(config.variations >= 1 && config.sgt_files >= 1);
    let mut rng = SimRng::for_component(config.seed, "cybershake");
    let mut wf = AbstractWorkflow::new(format!("cybershake-{}v", config.variations));

    let sgt_names: Vec<String> = (0..config.sgt_files)
        .map(|i| format!("sgt_{i}.bin"))
        .collect();
    for name in &sgt_names {
        wf.set_file_size(name, config.sgt_bytes);
    }

    let mut peaks = Vec::new();
    for v in 0..config.variations {
        let seis = format!("seismogram_{v:04}.grm");
        let peak = format!("peak_{v:04}.bsa");
        wf.set_file_size(&seis, 200_000);
        wf.set_file_size(&peak, 1_000);
        // Every synthesis job reads every shared SGT file: the
        // sharing-heavy pattern.
        let mut inputs = sgt_names.clone();
        let rupture = format!("rupture_{v:04}.txt");
        wf.set_file_size(&rupture, 10_000);
        inputs.push(rupture);
        wf.add_job(AbstractJob {
            name: format!("SeismogramSynthesis_{v:04}"),
            transformation: "SeismogramSynthesis".into(),
            runtime_s: rng.normal_clamped(25.0, 5.0, 5.0),
            inputs,
            outputs: vec![seis.clone()],
        });
        wf.add_job(AbstractJob {
            name: format!("PeakValCalcOkaya_{v:04}"),
            transformation: "PeakValCalcOkaya".into(),
            runtime_s: rng.normal_clamped(1.0, 0.3, 0.2),
            inputs: vec![seis],
            outputs: vec![peak.clone()],
        });
        peaks.push(peak);
    }
    wf.set_file_size("hazard.zip", 5_000_000);
    wf.add_job(AbstractJob {
        name: "ZipSeis".into(),
        transformation: "ZipSeis".into(),
        runtime_s: 10.0,
        inputs: peaks,
        outputs: vec!["hazard.zip".into()],
    });
    wf
}

/// Parameters for [`epigenomics_like`].
#[derive(Debug, Clone)]
pub struct EpigenomicsConfig {
    /// Independent sequencing lanes.
    pub lanes: u32,
    /// Chunks each lane's read file is split into.
    pub chunks_per_lane: u32,
    /// Size of each lane's raw read file.
    pub lane_bytes: u64,
    /// Seed for runtime jitter.
    pub seed: u64,
}

impl Default for EpigenomicsConfig {
    fn default() -> Self {
        EpigenomicsConfig {
            lanes: 4,
            chunks_per_lane: 8,
            lane_bytes: 400_000_000,
            seed: 0,
        }
    }
}

/// Generate an Epigenomics-like workflow: per lane, a fastqSplit fans into
/// `chunks_per_lane` chains of filterContams → sol2sanger → fastq2bfq → map,
/// re-joined by mapMerge; a global mapMerge and maqIndex finish.
pub fn epigenomics_like(config: &EpigenomicsConfig) -> AbstractWorkflow {
    assert!(config.lanes >= 1 && config.chunks_per_lane >= 1);
    let mut rng = SimRng::for_component(config.seed, "epigenomics");
    let mut wf = AbstractWorkflow::new(format!(
        "epigenomics-{}x{}",
        config.lanes, config.chunks_per_lane
    ));
    let chunk_bytes = config.lane_bytes / config.chunks_per_lane as u64;

    let mut lane_merges = Vec::new();
    for lane in 0..config.lanes {
        let raw = format!("lane_{lane}.fastq");
        wf.set_file_size(&raw, config.lane_bytes);
        let chunk_names: Vec<String> = (0..config.chunks_per_lane)
            .map(|c| format!("l{lane}_chunk_{c}.fastq"))
            .collect();
        for name in &chunk_names {
            wf.set_file_size(name, chunk_bytes);
        }
        wf.add_job(AbstractJob {
            name: format!("fastqSplit_{lane}"),
            transformation: "fastqSplit".into(),
            runtime_s: rng.normal_clamped(35.0, 8.0, 5.0),
            inputs: vec![raw],
            outputs: chunk_names.clone(),
        });

        let mut maps = Vec::new();
        for (c, chunk) in chunk_names.iter().enumerate() {
            let stages = [
                ("filterContams", 2.5),
                ("sol2sanger", 1.0),
                ("fastq2bfq", 1.5),
                ("map", 110.0),
            ];
            let mut input = chunk.clone();
            for (stage, mean_rt) in stages {
                let output = format!("l{lane}_c{c}_{stage}.out");
                wf.set_file_size(&output, chunk_bytes / 2);
                wf.add_job(AbstractJob {
                    name: format!("{stage}_{lane}_{c}"),
                    transformation: stage.into(),
                    runtime_s: rng.normal_clamped(mean_rt, mean_rt * 0.2, 0.2),
                    inputs: vec![input.clone()],
                    outputs: vec![output.clone()],
                });
                input = output;
            }
            maps.push(input);
        }
        let merged = format!("lane_{lane}.map");
        wf.set_file_size(&merged, config.lane_bytes / 4);
        wf.add_job(AbstractJob {
            name: format!("mapMerge_{lane}"),
            transformation: "mapMerge".into(),
            runtime_s: rng.normal_clamped(12.0, 3.0, 2.0),
            inputs: maps,
            outputs: vec![merged.clone()],
        });
        lane_merges.push(merged);
    }

    wf.set_file_size("all.map", config.lane_bytes);
    wf.add_job(AbstractJob {
        name: "mapMergeGlobal".into(),
        transformation: "mapMerge".into(),
        runtime_s: 30.0,
        inputs: lane_merges,
        outputs: vec!["all.map".into()],
    });
    wf.set_file_size("all.map.idx", 50_000_000);
    wf.add_job(AbstractJob {
        name: "maqIndex".into(),
        transformation: "maqIndex".into(),
        runtime_s: 45.0,
        inputs: vec!["all.map".into()],
        outputs: vec!["all.map.idx".into()],
    });
    wf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cybershake_validates_and_has_expected_shape() {
        let cfg = CyberShakeConfig::default();
        let wf = cybershake_like(&cfg);
        let levels = wf.validate().unwrap();
        // 2 jobs per variation + zip.
        assert_eq!(wf.len() as u32, cfg.variations * 2 + 1);
        assert_eq!(*levels.iter().max().unwrap(), 2);
        // The SGT files are the external inputs, shared by all synthesis
        // jobs.
        let externals = wf.external_inputs().unwrap();
        assert!(externals.contains("sgt_0.bin"));
        let consumers = wf.consumers();
        assert_eq!(consumers["sgt_0.bin"].len() as u32, cfg.variations);
    }

    #[test]
    fn cybershake_is_sharing_heavy() {
        // Unique external bytes are tiny compared to what naive per-job
        // staging would copy: the dedup rules save a factor of ~variations.
        let cfg = CyberShakeConfig::default();
        let wf = cybershake_like(&cfg);
        let unique: u64 = wf.external_input_bytes().unwrap();
        let naive: u64 = wf
            .jobs()
            .iter()
            .flat_map(|j| j.inputs.iter())
            .filter(|f| f.starts_with("sgt_"))
            .map(|f| wf.file_size(f).unwrap())
            .sum();
        assert!(naive >= unique * cfg.variations as u64 / 2);
    }

    #[test]
    fn epigenomics_validates_and_is_deep() {
        let cfg = EpigenomicsConfig::default();
        let wf = epigenomics_like(&cfg);
        let levels = wf.validate().unwrap();
        // split → 4 chain stages → lane merge → global merge → index = 8 levels.
        assert_eq!(*levels.iter().max().unwrap(), 7);
        // Only the raw lane files are external.
        let externals = wf.external_inputs().unwrap();
        assert_eq!(externals.len() as u32, cfg.lanes);
    }

    #[test]
    fn epigenomics_job_count() {
        let cfg = EpigenomicsConfig {
            lanes: 2,
            chunks_per_lane: 3,
            ..Default::default()
        };
        let wf = epigenomics_like(&cfg);
        // per lane: 1 split + 3 chunks × 4 stages + 1 merge = 14; ×2 + 2 global.
        assert_eq!(wf.len(), 2 * 14 + 2);
    }

    #[test]
    fn generators_are_deterministic() {
        let a = cybershake_like(&CyberShakeConfig::default());
        let b = cybershake_like(&CyberShakeConfig::default());
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x.runtime_s, y.runtime_s);
        }
        let a = epigenomics_like(&EpigenomicsConfig::default());
        let b = epigenomics_like(&EpigenomicsConfig::default());
        for (x, y) in a.jobs().iter().zip(b.jobs()) {
            assert_eq!(x.runtime_s, y.runtime_s);
        }
    }

    #[test]
    #[should_panic]
    fn zero_variations_rejected() {
        cybershake_like(&CyberShakeConfig {
            variations: 0,
            ..Default::default()
        });
    }
}
