//! The crash scenario: a mid-run Policy Service death with cold vs warm
//! recovery, under the paper's Montage workload.
//!
//! The primary policy service runs with durability enabled (WAL +
//! snapshots) and a seeded [`CrashPoint`] injected into its durability
//! sink: at the chosen append the sink freezes, modeling the process dying
//! with only the on-disk log surviving (possibly with a torn tail). A
//! service outage window then makes the primary transport fail, forcing
//! the executor onto the backup replica. The two recovery modes differ
//! only in what the backup knows:
//!
//! * **cold** — the backup starts with empty policy memory (the seed
//!   repo's original failover semantics): staged files may be re-staged,
//!   host-pair ledgers restart empty.
//! * **warm** — the backup replays the primary's log just before its first
//!   request ([`FailoverTransport::with_warm_recovery`] +
//!   `PolicyController::recover_session`), inheriting dedup memory and
//!   allocation ledgers up to the crash point.
//!
//! [`run_crash`] runs both modes on the same seed and reports makespans,
//! staged bytes, policy-skip counts, and the recovery invariants;
//! [`CrashReport::violations`] lists any invariant breaches (the `repro
//! crash` subcommand exits nonzero if it is non-empty).

use pwm_core::chaos::{ChaosTransport, ServiceFault, SharedSimClock};
use pwm_core::transport::InProcessTransport;
use pwm_core::{
    read_recovery, AllocationPolicy, CrashPoint, DurabilityConfig, FailoverTransport,
    MemorySnapshot, PolicyConfig, PolicyController, WorkflowId, DEFAULT_SESSION,
};
use pwm_montage::{montage_replicas, montage_workflow, MontageConfig};
use pwm_net::{paper_testbed, Network, StreamModel};
use pwm_sim::{FaultPlan, SimDuration, SimRng, SimTime};
use pwm_workflow::{plan, ComputeSite, ExecutorConfig, PlannerConfig, RunStats, WorkflowExecutor};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Everything that parameterizes a crash run.
#[derive(Debug, Clone)]
pub struct CrashConfig {
    /// Extra WAN-staged bytes per staging job (as in the paper setup).
    pub extra_file_bytes: u64,
    /// Default/fallback streams per transfer.
    pub default_streams: u32,
    /// Greedy host-pair threshold.
    pub threshold: u32,
    /// The seeded crash point lands at a WAL append in
    /// `[1, max_crash_append]`.
    pub max_crash_append: u64,
    /// Snapshot/compaction cadence of the primary's durability sink.
    pub snapshot_every: u64,
    /// When the primary process "dies" (its transport starts failing).
    pub outage_start: SimTime,
    /// How long the primary stays dead. Failover is sticky, so anything
    /// covering a few policy calls is enough to move traffic for good.
    pub outage_duration: SimDuration,
    /// Transient transfer-failure probability (retried with backoff).
    pub transfer_failure_prob: f64,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            extra_file_bytes: crate::mb(10),
            default_streams: 4,
            threshold: 50,
            max_crash_append: 60,
            snapshot_every: 16,
            outage_start: SimTime::from_secs(90),
            outage_duration: SimDuration::from_secs(100_000),
            transfer_failure_prob: 0.0,
        }
    }
}

/// What one recovery mode observed.
#[derive(Debug, Clone)]
pub struct CrashRunReport {
    /// The workflow run statistics.
    pub stats: RunStats,
    /// Failovers performed by the replica chain.
    pub failovers: u64,
    /// Warm mode: staged files the backup knew immediately after replaying
    /// the primary's log (`None` in cold mode).
    pub recovered_staged_files: Option<usize>,
    /// Warm mode: WAL records replayed on top of the recovered snapshot.
    pub recovered_records: Option<usize>,
    /// Warm mode: the backup's full policy memory right after the replay,
    /// before it served a single request. Its per-pair `allocated` is the
    /// inherited baseline: streams of transfers the dead primary granted
    /// whose completions were consumed by the primary while it still
    /// lived, so the backup never sees their releases.
    pub recovered_snapshot: Option<MemorySnapshot>,
    /// Backup replica's policy memory after the run.
    pub backup_snapshot: MemorySnapshot,
}

/// Cold vs warm comparison for one seed.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// The seeded crash point injected into the primary's durability sink.
    pub crash: CrashPoint,
    /// Run with an empty (cold) backup.
    pub cold: CrashRunReport,
    /// Run with a log-shipped (warm) backup.
    pub warm: CrashRunReport,
    /// The host-pair threshold both services enforced.
    pub threshold: u32,
    /// Upper bound on legitimate peak allocation *on top of the recovered
    /// allocation baseline*: the greedy policy can cross the threshold
    /// once by up to `default_streams - 1` and then hands a 1-stream
    /// starvation grant to each concurrently running staging job (the
    /// executor caps those at `staging_job_limit`). A warm backup starts
    /// from the baseline its replayed ledger carries (see
    /// [`CrashRunReport::recovered_snapshot`]); a cold backup's baseline
    /// is zero.
    pub grant_bound: u32,
}

impl CrashReport {
    /// Recovery invariants that must hold; each breach is one line.
    pub fn violations(&self) -> Vec<String> {
        let mut v = Vec::new();
        if !self.cold.stats.success {
            v.push("cold run did not complete".into());
        }
        if !self.warm.stats.success {
            v.push("warm run did not complete".into());
        }
        for (label, run) in [("cold", &self.cold), ("warm", &self.warm)] {
            if run.failovers == 0 {
                v.push(format!("{label} run never failed over to the backup"));
            }
            for hp in &run.backup_snapshot.host_pairs {
                // Streams the backup inherited from the replayed log whose
                // releases went to the dead primary: legitimate carry-over,
                // not new grants.
                let baseline = run
                    .recovered_snapshot
                    .as_ref()
                    .and_then(|s| {
                        s.host_pairs
                            .iter()
                            .find(|r| r.src_host == hp.src_host && r.dst_host == hp.dst_host)
                    })
                    .map_or(0, |r| r.allocated);
                if hp.peak_allocated > baseline + self.grant_bound {
                    v.push(format!(
                        "{label} backup over-granted {}->{}: peak {} > bound {} \
                         (recovered baseline {} + threshold {} + starvation allowance)",
                        hp.src_host,
                        hp.dst_host,
                        hp.peak_allocated,
                        baseline + self.grant_bound,
                        baseline,
                        self.threshold
                    ));
                }
            }
        }
        if self.warm.recovered_records.is_none() {
            v.push("warm recovery hook never ran".into());
        }
        // Warm recovery retains dedup/ledger memory, so the warm run can
        // never need *more* policy-skipped work re-executed than cold.
        if self.warm.stats.transfers_skipped < self.cold.stats.transfers_skipped {
            v.push(format!(
                "warm run skipped fewer duplicate transfers ({}) than cold ({})",
                self.warm.stats.transfers_skipped, self.cold.stats.transfers_skipped
            ));
        }
        v
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "pwm-crash-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn run_once(cfg: &CrashConfig, seed: u64, crash: CrashPoint, warm: bool) -> CrashRunReport {
    let (topo, gridftp, apache, nfs) = paper_testbed();
    let wan = topo
        .links()
        .find(|(_, l)| l.name == "wan-tacc-isi")
        .map(|(id, _)| id)
        .expect("paper testbed has the WAN link");
    let site = ComputeSite {
        name: "obelix".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: nfs,
        storage_host_name: "obelix-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    let workflow = montage_workflow(&MontageConfig {
        extra_file_bytes: cfg.extra_file_bytes,
        seed,
        ..Default::default()
    });
    let replicas = montage_replicas(&workflow, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let planner_cfg = PlannerConfig {
        clustering_factor: None,
        cleanup: true,
        stage_out: false,
        output_site: None,
        priority: None,
    };
    let executable = plan(&workflow, &site, &replicas, &planner_cfg).expect("montage plan");

    let policy = PolicyConfig::default()
        .with_default_streams(cfg.default_streams)
        .with_threshold(cfg.threshold)
        .with_allocation(AllocationPolicy::Greedy);

    // Primary: durable session with the crash point armed. The WAL dir is
    // per-run so cold and warm replay identical logs independently.
    let dir = scratch_dir(if warm { "warm" } else { "cold" });
    let primary = PolicyController::new(policy.clone());
    primary
        .create_durable_session(
            DEFAULT_SESSION,
            policy.clone(),
            DurabilityConfig::new(&dir)
                .with_snapshot_every(cfg.snapshot_every)
                .with_crash(crash),
        )
        .expect("durable primary session");

    // The primary "process death": its transport fails for the outage
    // window, driving sticky failover to the backup.
    let mut outage = FaultPlan::new();
    outage.add(cfg.outage_start, cfg.outage_duration, ServiceFault::Outage);
    let clock = SharedSimClock::new();
    let chaotic = ChaosTransport::new(
        Box::new(InProcessTransport::new(primary.clone(), DEFAULT_SESSION)),
        clock.clone(),
        outage,
    );

    let backup = PolicyController::new(policy);
    let recovered: Arc<Mutex<Option<(MemorySnapshot, usize)>>> = Arc::new(Mutex::new(None));
    let chain = FailoverTransport::new(vec![
        Box::new(chaotic),
        Box::new(InProcessTransport::new(backup.clone(), DEFAULT_SESSION)),
    ]);
    let chain = if warm {
        let hook_backup = backup.clone();
        let hook_dir = dir.clone();
        let hook_recovered = recovered.clone();
        chain.with_warm_recovery(move |_ix| {
            let records = read_recovery(&hook_dir)
                .map(|r| r.records.len())
                .unwrap_or(0);
            if hook_backup
                .recover_session(DEFAULT_SESSION, &hook_dir)
                .is_ok()
            {
                if let Ok(snap) = hook_backup.snapshot(DEFAULT_SESSION) {
                    *hook_recovered.lock().unwrap() = Some((snap, records));
                }
            }
        })
    } else {
        chain
    };
    let probe = chain.probe();

    let exec_cfg = ExecutorConfig {
        seed,
        transfer_failure_prob: cfg.transfer_failure_prob,
        fallback_streams: cfg.default_streams,
        policy_call_latency: SimDuration::from_millis(75),
        clock: Some(clock),
        workflow_id: WorkflowId(seed),
        watch_link: Some(wan),
        ..ExecutorConfig::default()
    };
    let executor = WorkflowExecutor::new(
        &executable,
        &site,
        network_with(topo, seed),
        Box::new(chain),
        exec_cfg,
    );
    let (stats, _network) = executor.run();
    let backup_snapshot = backup.snapshot(DEFAULT_SESSION).expect("backup snapshot");
    std::fs::remove_dir_all(&dir).ok();
    let rec = recovered.lock().unwrap().take();
    CrashRunReport {
        stats,
        failovers: probe.failovers(),
        recovered_staged_files: rec.as_ref().map(|(s, _)| s.staged_files),
        recovered_records: rec.as_ref().map(|(_, r)| *r),
        recovered_snapshot: rec.map(|(s, _)| s),
        backup_snapshot,
    }
}

fn network_with(topo: pwm_net::Topology, seed: u64) -> Network {
    Network::with_seed(topo, StreamModel::default(), seed)
}

/// Run the crash scenario: same seed and crash point, cold then warm.
pub fn run_crash(cfg: &CrashConfig, seed: u64) -> CrashReport {
    let mut rng = SimRng::for_component(seed, "crash-point");
    let crash = CrashPoint::seeded(&mut rng, cfg.max_crash_append);
    let cold = run_once(cfg, seed, crash, false);
    let warm = run_once(cfg, seed, crash, true);
    let staging_job_limit = ExecutorConfig::default().staging_job_limit as u32;
    CrashReport {
        crash,
        cold,
        warm,
        threshold: cfg.threshold,
        grant_bound: cfg.threshold + cfg.default_streams.saturating_sub(1) + staging_job_limit,
    }
}

/// Render the cold/warm comparison as an aligned text table.
pub fn render_crash(report: &CrashReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("crash point: {}\n", report.crash));
    out.push_str(&format!(
        "{:<10} {:>12} {:>14} {:>9} {:>10} {:>16} {:>12}\n",
        "recovery",
        "makespan[s]",
        "bytes_staged",
        "skipped",
        "failovers",
        "recovered_files",
        "wal_records"
    ));
    for (label, run) in [("cold", &report.cold), ("warm", &report.warm)] {
        out.push_str(&format!(
            "{:<10} {:>12.1} {:>14.0} {:>9} {:>10} {:>16} {:>12}\n",
            label,
            run.stats.makespan_secs(),
            run.stats.bytes_staged,
            run.stats.transfers_skipped,
            run.failovers,
            run.recovered_staged_files
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
            run.recovered_records
                .map(|n| n.to_string())
                .unwrap_or_else(|| "-".into()),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small crash configuration so debug-mode tests stay quick.
    fn small() -> CrashConfig {
        CrashConfig {
            extra_file_bytes: crate::mb(2),
            max_crash_append: 20,
            snapshot_every: 8,
            outage_start: SimTime::from_secs(30),
            ..CrashConfig::default()
        }
    }

    #[test]
    fn crash_scenario_holds_its_invariants() {
        let report = run_crash(&small(), 7);
        assert!(
            report.violations().is_empty(),
            "violations: {:?}",
            report.violations()
        );
        assert!(report.warm.recovered_records.is_some());
        let rendered = render_crash(&report);
        assert!(rendered.contains("warm"));
    }

    #[test]
    fn crash_scenario_is_deterministic_per_seed() {
        let a = run_crash(&small(), 11);
        let b = run_crash(&small(), 11);
        assert_eq!(a.crash, b.crash);
        assert_eq!(a.cold.stats.makespan, b.cold.stats.makespan);
        assert_eq!(a.warm.stats.makespan, b.warm.stats.makespan);
        assert_eq!(a.warm.recovered_records, b.warm.recovered_records);
    }
}
