//! Event-queue micro-benchmark: heap vs ladder on the operations the
//! network engine's hot loop is made of, at the 100k pending-event
//! population the netbench 100k scenario sustains. Promoted from the
//! `#[ignore]`d `heap_micro` probes in pwm-sim so the comparison runs as
//! one reportable suite (`netbench --micro`).
//!
//! Each probe runs both queue implementations through the *same*
//! deterministic op sequence with static dispatch (generics, not the
//! `DynQueue` enum) so the numbers isolate data-structure cost from
//! engine overhead. Probes:
//!
//! * `pop_push` — pop the earliest event, schedule a replacement a short
//!   pseudo-random delay out (the completion→replacement churn cycle).
//! * `pop_push_far` — same, with replacements spread over a wide horizon
//!   (deep heap sifts; ladder rung placements).
//! * `reschedule` — move a random pending event to a new far-future time
//!   (the completion-ETA respin on every rate change).
//! * `cancel_schedule` — cancel a random pending event and schedule a
//!   replacement (the cancel-heavy pattern reschedule replaced in PR 7).

use pwm_obs::JsonValue;
use pwm_sim::{EventQueue, LadderQueue, QueueKind, SimDuration, SimQueue, SimTime};
use std::time::Instant;

/// Pending-event population every probe sustains.
const POPULATION: usize = 100_000;

/// Deterministic op-mix generator (same constants as netbench's Lcg).
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

/// One (queue, op) measurement.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Which implementation ran.
    pub queue: QueueKind,
    /// Probe name.
    pub op: &'static str,
    /// Operations in the timed window.
    pub rounds: u64,
    /// Wall-clock seconds for the window.
    pub wall_secs: f64,
    /// Operations per wall-clock second.
    pub ops_per_sec: f64,
}

impl MicroResult {
    /// Nanoseconds per operation.
    pub fn ns_per_op(&self) -> f64 {
        self.wall_secs / self.rounds as f64 * 1e9
    }
}

fn measure<Q: SimQueue<u32>>(
    queue: QueueKind,
    op: &'static str,
    rounds: u64,
    q: &mut Q,
    mut body: impl FnMut(&mut Q),
) -> MicroResult {
    let started = Instant::now();
    for _ in 0..rounds {
        body(q);
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    MicroResult {
        queue,
        op,
        rounds,
        wall_secs,
        ops_per_sec: rounds as f64 / wall_secs,
    }
}

/// Fill `q` with [`POPULATION`] events spread over ~600 simulated seconds
/// and return their handles.
fn populate<Q: SimQueue<u32>>(q: &mut Q, rng: &mut Lcg) -> Vec<pwm_sim::EventHandle> {
    (0..POPULATION as u32)
        .map(|i| {
            let t = SimTime::from_micros(1 + rng.next() % 600_000_000);
            q.schedule_at(t, i)
        })
        .collect()
}

fn run_probes<Q: SimQueue<u32>>(
    queue: QueueKind,
    rounds: u64,
    make: impl Fn() -> Q,
) -> Vec<MicroResult> {
    let mut out = Vec::new();

    // pop_push: replacements land a short delay out (≤ 2 simulated
    // seconds), the near-future half of the engine's churn.
    {
        let mut rng = Lcg::new(42);
        let mut q = make();
        populate(&mut q, &mut rng);
        out.push(measure(queue, "pop_push", rounds, &mut q, |q| {
            let (t, v) = q.pop().expect("population never drains");
            q.schedule_at(t + SimDuration::from_micros(1 + rng.next() % 2_000_000), v);
        }));
    }

    // pop_push_far: replacements spread over the full 600 s horizon.
    {
        let mut rng = Lcg::new(42);
        let mut q = make();
        populate(&mut q, &mut rng);
        out.push(measure(queue, "pop_push_far", rounds, &mut q, |q| {
            let (t, v) = q.pop().expect("population never drains");
            q.schedule_at(
                t + SimDuration::from_micros(1 + rng.next() % 600_000_000),
                v,
            );
        }));
    }

    // reschedule: respin a random pending event to a fresh far time.
    {
        let mut rng = Lcg::new(7);
        let mut q = make();
        let handles = populate(&mut q, &mut rng);
        out.push(measure(queue, "reschedule", rounds, &mut q, |q| {
            let k = (rng.next() as usize) % POPULATION;
            let t = SimTime::from_micros(1 + rng.next() % 600_000_000);
            assert!(q.reschedule(handles[k], t));
        }));
    }

    // cancel_schedule: the pre-reschedule churn pattern.
    {
        let mut rng = Lcg::new(7);
        let mut q = make();
        let mut handles = populate(&mut q, &mut rng);
        out.push(measure(queue, "cancel_schedule", rounds, &mut q, |q| {
            let k = (rng.next() as usize) % POPULATION;
            assert!(q.cancel(handles[k]));
            let t = SimTime::from_micros(1 + rng.next() % 600_000_000);
            handles[k] = q.schedule_at(t, k as u32);
        }));
    }

    out
}

/// Run every probe on every queue kind. `rounds` operations per probe
/// (the `--micro` default is 1M; tests use a small budget).
pub fn run_suite(rounds: u64) -> Vec<MicroResult> {
    let mut results = run_probes(QueueKind::Heap, rounds, EventQueue::<u32>::new);
    results.extend(run_probes(
        QueueKind::Ladder,
        rounds,
        LadderQueue::<u32>::new,
    ));
    results
}

/// Render micro-bench results as a JSON document (the `--micro` output).
pub fn report_json(results: &[MicroResult]) -> JsonValue {
    JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("queuebench".into())),
        (
            "units".into(),
            JsonValue::Str("ops_per_sec: queue operations per wall-clock second".into()),
        ),
        ("population".into(), JsonValue::Int(POPULATION as i64)),
        (
            "results".into(),
            JsonValue::Arr(
                results
                    .iter()
                    .map(|r| {
                        JsonValue::Obj(vec![
                            ("queue".into(), JsonValue::Str(r.queue.name().into())),
                            ("op".into(), JsonValue::Str(r.op.into())),
                            ("rounds".into(), JsonValue::Int(r.rounds as i64)),
                            ("wall_secs".into(), JsonValue::Float(r.wall_secs)),
                            ("ops_per_sec".into(), JsonValue::Float(r.ops_per_sec)),
                            ("ns_per_op".into(), JsonValue::Float(r.ns_per_op())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_every_probe_on_every_queue() {
        let results = run_suite(2_000);
        assert_eq!(results.len(), 8, "4 probes × 2 queues");
        for r in &results {
            assert!(
                r.ops_per_sec > 0.0,
                "{:?} {} measured nothing",
                r.queue,
                r.op
            );
        }
        let doc = report_json(&results);
        let parsed = JsonValue::parse(&doc.render()).expect("queuebench JSON must parse");
        assert_eq!(
            parsed
                .get("results")
                .and_then(|r| r.as_arr())
                .map(|a| a.len()),
            Some(8)
        );
    }
}
