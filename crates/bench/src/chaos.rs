//! The chaos scenario: the paper's Montage experiment run under a
//! deterministic fault plan.
//!
//! Three fault classes are injected, each derived from the run seed so the
//! whole scenario is a pure function of `(config, seed)`:
//!
//! * **link flaps** — short full outages of the TACC→ISI WAN link
//!   (capacity → 0, in-flight transfers stall and resume),
//! * **link degradations** — longer windows where the WAN runs at a
//!   fraction of its capacity (in-flight flows re-share),
//! * **policy-service faults** — one replica-crash outage window plus
//!   seeded advice-timeout glitches, driving either
//!   [`FailoverTransport`] recovery (with a backup replica) or the
//!   executor's default-stream fallback (without one).
//!
//! [`run_chaos`] reports makespan, recovery statistics, and a fault-event
//! fingerprint that two same-seed runs must reproduce exactly;
//! [`chaos_ablation`] reruns the same seed under each fault class alone to
//! attribute the makespan inflation.

use pwm_core::chaos::{ChaosTransport, ServiceFault, SharedSimClock};
use pwm_core::transport::{InProcessTransport, PolicyTransport};
use pwm_core::{
    AllocationPolicy, FailoverTransport, MemorySnapshot, PolicyConfig, PolicyController,
    WorkflowId, DEFAULT_SESSION,
};
use pwm_montage::{montage_replicas, montage_workflow, MontageConfig};
use pwm_net::fault::{LinkFault, LinkFaultKind};
use pwm_net::{paper_testbed, Network, StreamModel};
use pwm_sim::{seeded_windows, FaultPlan, QueueKind, SimDuration, SimRng, SimTime};
use pwm_workflow::{plan, ComputeSite, ExecutorConfig, PlannerConfig, RunStats, WorkflowExecutor};

/// Everything that parameterizes a chaos run (the faults themselves are
/// derived from these knobs plus the run seed).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Extra WAN-staged bytes per staging job (as in the paper setup).
    pub extra_file_bytes: u64,
    /// Default/fallback streams per transfer.
    pub default_streams: u32,
    /// Greedy host-pair threshold.
    pub threshold: u32,
    /// Inject link faults (flaps + degradations) on the WAN bottleneck.
    pub link_faults: bool,
    /// Inject policy-service faults (outage + timeout glitches).
    pub service_faults: bool,
    /// Number of WAN flaps (short full outages), seeded over the horizon.
    pub flaps: usize,
    /// Flap duration range.
    pub flap_duration: (SimDuration, SimDuration),
    /// Number of WAN degradation windows, seeded over the horizon.
    pub degradations: usize,
    /// Degradation duration range.
    pub degrade_duration: (SimDuration, SimDuration),
    /// WAN capacity multiplier while degraded.
    pub degrade_factor: f64,
    /// Window over which seeded link faults are placed.
    pub fault_horizon: SimDuration,
    /// Replica-crash outage start.
    pub outage_start: SimTime,
    /// Replica-crash outage duration.
    pub outage_duration: SimDuration,
    /// Seeded short advice-timeout glitches on the primary replica.
    pub timeout_glitches: usize,
    /// Policy replicas: 1 = primary only (outages exercise the executor's
    /// default-stream fallback), 2 = primary + backup (outages exercise
    /// failover).
    pub replicas: usize,
    /// Transient transfer-failure probability (retried with backoff).
    pub transfer_failure_prob: f64,
    /// Probability a failed transfer is fatal (job fails immediately).
    pub fatal_failure_prob: f64,
    /// Event-queue implementation for both the network and the executor —
    /// chaos runs must be reproducible under either.
    pub queue: QueueKind,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            extra_file_bytes: crate::mb(10),
            default_streams: 4,
            threshold: 50,
            link_faults: true,
            service_faults: true,
            flaps: 3,
            flap_duration: (SimDuration::from_secs(5), SimDuration::from_secs(20)),
            degradations: 2,
            degrade_duration: (SimDuration::from_secs(30), SimDuration::from_secs(60)),
            degrade_factor: 0.35,
            fault_horizon: SimDuration::from_secs(400),
            outage_start: SimTime::from_secs(90),
            outage_duration: SimDuration::from_secs(120),
            timeout_glitches: 2,
            replicas: 2,
            transfer_failure_prob: 0.05,
            fatal_failure_prob: 0.0,
            queue: QueueKind::default(),
        }
    }
}

/// What a chaos run observed.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The workflow run statistics.
    pub stats: RunStats,
    /// Deterministic fingerprint of every scheduled fault (link plan then
    /// service plan, one line per event). Two same-seed runs must produce
    /// identical fingerprints.
    pub fault_events: Vec<String>,
    /// Policy calls failed by an active service-fault window.
    pub injected_service_failures: u64,
    /// Policy calls that passed through the chaos transport.
    pub service_calls_passed: u64,
    /// Failovers performed by the replica chain (0 without a backup).
    pub failovers: u64,
    /// Primary replica's policy memory after the run. May retain stale
    /// in-progress entries for work whose completion was reported to the
    /// backup after a failover (advisory degradation, not a leak).
    pub primary_snapshot: MemorySnapshot,
    /// Backup replica's policy memory after the run (`None` with 1
    /// replica). The post-failover active replica: its ledgers must drain.
    pub backup_snapshot: Option<MemorySnapshot>,
}

impl ChaosReport {
    /// Makespan in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.stats.makespan_secs()
    }
}

/// Derive the link fault plan for `(cfg, seed)`.
fn link_plan(cfg: &ChaosConfig, seed: u64, wan: pwm_net::LinkId) -> FaultPlan<LinkFault> {
    let mut plan = FaultPlan::new();
    if !cfg.link_faults {
        return plan;
    }
    let mut rng = SimRng::for_component(seed, "chaos-link-flaps");
    for w in seeded_windows(
        &mut rng,
        cfg.flaps,
        cfg.fault_horizon,
        cfg.flap_duration.0,
        cfg.flap_duration.1,
    ) {
        plan.add(
            w.start,
            w.duration,
            LinkFault {
                link: wan,
                kind: LinkFaultKind::Down,
            },
        );
    }
    let mut rng = SimRng::for_component(seed, "chaos-link-degrade");
    for w in seeded_windows(
        &mut rng,
        cfg.degradations,
        cfg.fault_horizon,
        cfg.degrade_duration.0,
        cfg.degrade_duration.1,
    ) {
        plan.add(
            w.start,
            w.duration,
            LinkFault {
                link: wan,
                kind: LinkFaultKind::Degrade(cfg.degrade_factor),
            },
        );
    }
    plan
}

/// Derive the policy-service fault plan for `(cfg, seed)`.
fn service_plan(cfg: &ChaosConfig, seed: u64) -> FaultPlan<ServiceFault> {
    let mut plan = FaultPlan::new();
    if !cfg.service_faults {
        return plan;
    }
    plan.add(cfg.outage_start, cfg.outage_duration, ServiceFault::Outage);
    let mut rng = SimRng::for_component(seed, "chaos-service-timeouts");
    for w in seeded_windows(
        &mut rng,
        cfg.timeout_glitches,
        cfg.fault_horizon,
        SimDuration::from_secs(1),
        SimDuration::from_secs(3),
    ) {
        plan.add(w.start, w.duration, ServiceFault::Timeout);
    }
    plan
}

/// Run the chaos scenario once.
pub fn run_chaos(cfg: &ChaosConfig, seed: u64) -> ChaosReport {
    let (topo, gridftp, apache, nfs) = paper_testbed();
    let wan = topo
        .links()
        .find(|(_, l)| l.name == "wan-tacc-isi")
        .map(|(id, _)| id)
        .expect("paper testbed has the WAN link");
    let site = ComputeSite {
        name: "obelix".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: nfs,
        storage_host_name: "obelix-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    let workflow = montage_workflow(&MontageConfig {
        extra_file_bytes: cfg.extra_file_bytes,
        seed,
        ..Default::default()
    });
    let replicas = montage_replicas(&workflow, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let planner_cfg = PlannerConfig {
        clustering_factor: None,
        cleanup: true,
        stage_out: false,
        output_site: None,
        priority: None,
    };
    let executable = plan(&workflow, &site, &replicas, &planner_cfg).expect("montage plan");

    let links = link_plan(cfg, seed, wan);
    let services = service_plan(cfg, seed);
    let mut fault_events = links.describe();
    fault_events.extend(services.describe());

    let mut network = Network::with_seed_queue(topo, StreamModel::default(), seed, cfg.queue);
    network.set_fault_plan(links);

    let policy = PolicyConfig::default()
        .with_default_streams(cfg.default_streams)
        .with_threshold(cfg.threshold)
        .with_allocation(AllocationPolicy::Greedy);
    let clock = SharedSimClock::new();
    let primary_controller = PolicyController::new(policy.clone());
    let chaotic = ChaosTransport::new(
        Box::new(InProcessTransport::new(
            primary_controller.clone(),
            DEFAULT_SESSION,
        )),
        clock.clone(),
        services,
    );
    let chaos_probe = chaotic.probe();
    let backup_controller = (cfg.replicas > 1).then(|| PolicyController::new(policy));
    let (transport, failover_probe): (Box<dyn PolicyTransport>, _) = match &backup_controller {
        Some(backup) => {
            let chain = FailoverTransport::new(vec![
                Box::new(chaotic),
                Box::new(InProcessTransport::new(backup.clone(), DEFAULT_SESSION)),
            ]);
            let probe = chain.probe();
            (Box::new(chain), Some(probe))
        }
        None => (Box::new(chaotic), None),
    };

    let exec_cfg = ExecutorConfig {
        seed,
        transfer_failure_prob: cfg.transfer_failure_prob,
        fatal_failure_prob: cfg.fatal_failure_prob,
        fallback_streams: cfg.default_streams,
        policy_call_latency: SimDuration::from_millis(75),
        clock: Some(clock),
        workflow_id: WorkflowId(seed),
        watch_link: Some(wan),
        queue: cfg.queue,
        ..ExecutorConfig::default()
    };
    let executor = WorkflowExecutor::new(&executable, &site, network, transport, exec_cfg);
    let (stats, _network) = executor.run();

    ChaosReport {
        stats,
        fault_events,
        injected_service_failures: chaos_probe.injected_failures(),
        service_calls_passed: chaos_probe.calls_passed(),
        failovers: failover_probe.map(|p| p.failovers()).unwrap_or(0),
        primary_snapshot: primary_controller
            .snapshot(DEFAULT_SESSION)
            .expect("primary snapshot"),
        backup_snapshot: backup_controller
            .map(|c| c.snapshot(DEFAULT_SESSION).expect("backup snapshot")),
    }
}

/// One row of the chaos ablation table.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Fault classes active in this row.
    pub label: &'static str,
    /// Makespan in seconds.
    pub makespan_secs: f64,
    /// Makespan divided by the fault-free makespan.
    pub inflation: f64,
    /// Transfer retries performed.
    pub retries: u64,
    /// Replica failovers.
    pub failovers: u64,
    /// Policy calls failed by injection.
    pub injected: u64,
    /// Whether the workflow completed successfully.
    pub success: bool,
}

/// Rerun `seed` with each fault class toggled: none, link-only,
/// service-only, both. The first row is the fault-free baseline.
pub fn chaos_ablation(cfg: &ChaosConfig, seed: u64) -> Vec<ChaosRow> {
    let variants: [(&'static str, bool, bool); 4] = [
        ("none", false, false),
        ("link", true, false),
        ("service", false, true),
        ("link+service", true, true),
    ];
    let mut rows = Vec::new();
    let mut baseline = None;
    for (label, link, service) in variants {
        let mut v = cfg.clone();
        v.link_faults = link;
        v.service_faults = service;
        let report = run_chaos(&v, seed);
        let makespan = report.makespan_secs();
        let base = *baseline.get_or_insert(makespan);
        rows.push(ChaosRow {
            label,
            makespan_secs: makespan,
            inflation: if base > 0.0 { makespan / base } else { 1.0 },
            retries: report.stats.transfer_retries,
            failovers: report.failovers,
            injected: report.injected_service_failures,
            success: report.stats.success,
        });
    }
    rows
}

/// Render the ablation as an aligned text table.
pub fn render_ablation(rows: &[ChaosRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>12} {:>10} {:>9} {:>10} {:>9} {:>8}\n",
        "faults", "makespan[s]", "inflation", "retries", "failovers", "injected", "success"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>12.1} {:>9.2}x {:>9} {:>10} {:>9} {:>8}\n",
            r.label, r.makespan_secs, r.inflation, r.retries, r.failovers, r.injected, r.success
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small chaos configuration so debug-mode tests stay quick.
    fn small() -> ChaosConfig {
        ChaosConfig {
            extra_file_bytes: crate::mb(2),
            flaps: 2,
            degradations: 1,
            fault_horizon: SimDuration::from_secs(150),
            outage_start: SimTime::from_secs(30),
            outage_duration: SimDuration::from_secs(45),
            timeout_glitches: 1,
            transfer_failure_prob: 0.0,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn chaos_run_completes_and_reports_injections() {
        let report = run_chaos(&small(), 3);
        assert!(report.stats.success, "chaos must not break the workflow");
        assert!(!report.fault_events.is_empty());
        assert!(report.makespan_secs() > 0.0);
    }

    #[test]
    fn fault_free_variant_matches_shape_of_paper_run() {
        let mut cfg = small();
        cfg.link_faults = false;
        cfg.service_faults = false;
        let report = run_chaos(&cfg, 3);
        assert!(report.stats.success);
        assert!(report.fault_events.is_empty());
        assert_eq!(report.injected_service_failures, 0);
        assert_eq!(report.failovers, 0);
    }

    #[test]
    fn ablation_has_a_baseline_first_row() {
        let rows = chaos_ablation(&small(), 5);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].label, "none");
        assert!((rows[0].inflation - 1.0).abs() < 1e-9);
        assert!(rows.iter().all(|r| r.success));
        let rendered = render_ablation(&rows);
        assert!(rendered.contains("link+service"));
    }
}
