//! The experiment runner shared by the Criterion benches, the `repro`
//! binary, and the integration tests.
//!
//! One experiment point = the paper's experimental setup (Section V):
//! augmented 1-degree Montage (89 staging jobs) on the paper testbed
//! topology, no clustering, staging-job limit 20, 5 retries, cleanup
//! enabled, with a selectable staging policy — run over ≥ 5 seeds and
//! summarized as mean ± stddev, exactly as the paper's error bars.

use pwm_core::transport::{InProcessTransport, NoPolicyTransport, PolicyTransport};
use pwm_core::{
    AllocationPolicy, PolicyConfig, PolicyController, PriorityAlgorithm, SharedSimClock,
    WorkflowId, DEFAULT_SESSION,
};
use pwm_montage::{montage_replicas, montage_workflow, MontageConfig};
use pwm_net::{paper_testbed, LinkId, Network, StreamModel};
use pwm_obs::Obs;
use pwm_sim::{QueueKind, SimDuration, Summary};
use pwm_workflow::{plan, ComputeSite, ExecutorConfig, PlannerConfig, RunStats, WorkflowExecutor};

/// Which staging policy governs the run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyMode {
    /// Default Pegasus, no policy service: every transfer uses a fixed
    /// number of streams (4 in the paper's no-policy runs) and no callout
    /// latency is paid.
    NoPolicy,
    /// The greedy allocation policy with the given host-pair threshold.
    Greedy {
        /// Maximum streams between a host pair.
        threshold: u32,
    },
    /// The balanced allocation policy.
    Balanced {
        /// Maximum streams between a host pair.
        threshold: u32,
        /// Workflow clustering factor (per-cluster share = threshold / k).
        cluster_factor: u32,
    },
}

impl PolicyMode {
    /// Short label for tables ("no-policy", "greedy-50"...).
    pub fn label(&self) -> String {
        match self {
            PolicyMode::NoPolicy => "no-policy".to_string(),
            PolicyMode::Greedy { threshold } => format!("greedy-{threshold}"),
            PolicyMode::Balanced {
                threshold,
                cluster_factor,
            } => format!("balanced-{threshold}/{cluster_factor}"),
        }
    }
}

/// A full experiment-point description.
#[derive(Debug, Clone)]
pub struct MontageExperiment {
    /// Extra WAN-staged bytes per staging job (the x-family of Fig. 5, the
    /// fixed size of Figs. 6–9).
    pub extra_file_bytes: u64,
    /// Default streams per transfer (the x-axis of every figure).
    pub default_streams: u32,
    /// Policy under test.
    pub mode: PolicyMode,
    /// Pegasus task clustering factor (`None` = the paper's no-clustering
    /// configuration).
    pub clustering_factor: Option<u32>,
    /// Structure-based priority annotation (ablation).
    pub priority: Option<PriorityAlgorithm>,
    /// Injected transfer failure probability (failure-handling ablation).
    pub transfer_failure_prob: f64,
    /// Staging-job limit (paper: 20).
    pub staging_job_limit: usize,
    /// Policy callout round-trip latency (paper notes this overhead).
    pub policy_call_latency: SimDuration,
    /// Event-queue implementation for the network engine. Both ship exact
    /// `(time, seq)` ordering, so runs are bit-identical across kinds; the
    /// knob exists so the determinism suite can prove that, and so a run
    /// can be pinned to the heap oracle when bisecting a queue suspicion.
    pub queue: QueueKind,
}

impl MontageExperiment {
    /// The paper's baseline configuration for a given extra-file size,
    /// default streams, and policy.
    pub fn paper_setup(extra_file_bytes: u64, default_streams: u32, mode: PolicyMode) -> Self {
        MontageExperiment {
            extra_file_bytes,
            default_streams,
            mode,
            clustering_factor: None,
            priority: None,
            transfer_failure_prob: 0.0,
            staging_job_limit: 20,
            policy_call_latency: SimDuration::from_millis(75),
            queue: QueueKind::default(),
        }
    }

    /// Run one seed; returns the run statistics.
    pub fn run_once(&self, seed: u64) -> RunStats {
        self.run_once_detailed(seed).0
    }

    /// Run one seed with full span tracing: the executor, the network, and
    /// the policy service all share one [`Obs`] handle, so the returned
    /// tracer holds the whole run as a nested flame timeline (job spans →
    /// advice RPCs → transfer spans → flow segments → retries). All span
    /// timestamps are sim time, so the same seed exports an identical trace.
    pub fn run_once_traced(&self, seed: u64) -> (RunStats, Obs) {
        let obs = Obs::new();
        let (stats, _, _) = self.run_inner(seed, Some(obs.clone()));
        (stats, obs)
    }

    /// Run one seed, additionally returning the post-run [`Network`] (with a
    /// utilization timeline recorded on the WAN bottleneck) and the WAN link
    /// id.
    pub fn run_once_detailed(&self, seed: u64) -> (RunStats, Network, Option<LinkId>) {
        self.run_inner(seed, None)
    }

    fn run_inner(&self, seed: u64, obs: Option<Obs>) -> (RunStats, Network, Option<LinkId>) {
        let (topo, gridftp, apache, nfs) = paper_testbed();
        let wan: Option<LinkId> = topo
            .links()
            .find(|(_, l)| l.name == "wan-tacc-isi")
            .map(|(id, _)| id);
        let site = ComputeSite {
            name: "obelix".into(),
            nodes: 9,
            cores_per_node: 6,
            storage_host: nfs,
            storage_host_name: "obelix-nfs".into(),
            scratch_dir: "/scratch".into(),
        };
        let workflow = montage_workflow(&MontageConfig {
            extra_file_bytes: self.extra_file_bytes,
            seed,
            ..Default::default()
        });
        let replicas = montage_replicas(&workflow, ("apache-isi", apache), ("gridftp-vm", gridftp));
        let planner_cfg = PlannerConfig {
            clustering_factor: self.clustering_factor,
            cleanup: true,
            stage_out: false,
            output_site: None,
            priority: self.priority,
        };
        let executable =
            plan(&workflow, &site, &replicas, &planner_cfg).expect("montage plan must succeed");

        let network = Network::with_seed_queue(topo, StreamModel::default(), seed, self.queue);
        // Traced runs share one Obs across executor, network, and policy
        // service; the shared clock lets the service stamp its evaluation
        // instants with the executor's virtual time.
        let clock = obs.as_ref().map(|_| SharedSimClock::new());
        let attach = |controller: &PolicyController| {
            if let (Some(obs), Some(clock)) = (&obs, &clock) {
                controller
                    .attach_obs(DEFAULT_SESSION, obs.clone())
                    .expect("default session exists");
                controller
                    .set_sim_clock(DEFAULT_SESSION, clock.clone())
                    .expect("default session exists");
            }
        };
        let (transport, latency): (Box<dyn PolicyTransport>, SimDuration) = match self.mode {
            PolicyMode::NoPolicy => (
                Box::new(NoPolicyTransport::new(self.default_streams)),
                SimDuration::ZERO,
            ),
            PolicyMode::Greedy { threshold } => {
                let config = PolicyConfig::default()
                    .with_default_streams(self.default_streams)
                    .with_threshold(threshold)
                    .with_allocation(AllocationPolicy::Greedy);
                let controller = PolicyController::new(config);
                attach(&controller);
                (
                    Box::new(InProcessTransport::new(controller, DEFAULT_SESSION)),
                    self.policy_call_latency,
                )
            }
            PolicyMode::Balanced {
                threshold,
                cluster_factor,
            } => {
                let config = PolicyConfig::default()
                    .with_default_streams(self.default_streams)
                    .with_threshold(threshold)
                    .with_cluster_factor(cluster_factor)
                    .with_allocation(AllocationPolicy::Balanced);
                let controller = PolicyController::new(config);
                attach(&controller);
                (
                    Box::new(InProcessTransport::new(controller, DEFAULT_SESSION)),
                    self.policy_call_latency,
                )
            }
        };

        let exec_cfg = ExecutorConfig {
            seed,
            staging_job_limit: self.staging_job_limit,
            retries: 5,
            runtime_jitter: 0.15,
            policy_call_latency: latency,
            job_init_overhead: SimDuration::from_secs(2),
            inter_transfer_gap: SimDuration::from_millis(100),
            cleanup_duration: SimDuration::from_millis(500),
            transfer_failure_prob: self.transfer_failure_prob,
            workflow_id: WorkflowId(seed),
            watch_link: wan,
            watch_timeline: true,
            cleanup_job_limit: None,
            clock,
            obs,
            ..ExecutorConfig::default()
        };
        let executor = WorkflowExecutor::new(&executable, &site, network, transport, exec_cfg);
        let (stats, network) = executor.run();
        (stats, network, wan)
    }

    /// Run several seeds; returns the makespan summary (seconds) and the
    /// individual run stats, ordered like `seeds`. Each run owns its entire
    /// simulated world, so seeds are embarrassingly parallel; instead of one
    /// thread per seed, a bounded pool of `available_parallelism` workers
    /// drains a crossbeam job channel, keeping large seed sweeps from
    /// oversubscribing the host. Results are identical to a sequential run.
    pub fn run_seeds(&self, seeds: &[u64]) -> (Summary, Vec<RunStats>) {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(seeds.len().max(1));
        let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, u64)>();
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, RunStats)>();
        let mut runs: Vec<Option<RunStats>> = (0..seeds.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let rx = job_rx.clone();
                let tx = res_tx.clone();
                scope.spawn(move || {
                    while let Ok((index, seed)) = rx.recv() {
                        tx.send((index, self.run_once(seed)))
                            .expect("result channel closed before the sweep finished");
                    }
                });
            }
            drop(job_rx);
            drop(res_tx);
            for (index, &seed) in seeds.iter().enumerate() {
                job_tx
                    .send((index, seed))
                    .expect("worker pool hung up early");
            }
            drop(job_tx);
            for (index, stats) in res_rx.iter() {
                runs[index] = Some(stats);
            }
        });
        let runs: Vec<RunStats> = runs
            .into_iter()
            .map(|r| r.expect("seed run panicked"))
            .collect();
        let makespans: Vec<f64> = runs.iter().map(|r| r.makespan_secs()).collect();
        (Summary::of(&makespans), runs)
    }
}

/// The default seed set (the paper runs each point "at least 5 times").
pub fn default_seeds(n: usize) -> Vec<u64> {
    (1..=n as u64).collect()
}

/// Megabytes → bytes, for readable experiment tables.
pub const fn mb(n: u64) -> u64 {
    n * 1_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unaugmented_run_completes() {
        let exp = MontageExperiment::paper_setup(0, 4, PolicyMode::Greedy { threshold: 50 });
        let stats = exp.run_once(1);
        assert!(stats.success);
        assert_eq!(stats.staging_jobs, 89, "the paper's 89 data staging jobs");
        assert_eq!(stats.compute_jobs, 89);
        assert!(stats.cleanup_jobs > 0);
    }

    #[test]
    fn augmented_run_stages_the_extra_bytes() {
        let exp = MontageExperiment::paper_setup(mb(10), 4, PolicyMode::Greedy { threshold: 50 });
        let stats = exp.run_once(1);
        assert!(stats.success);
        // 89 × 10 MB extra + the ordinary Montage inputs.
        assert!(
            stats.bytes_staged > 890.0e6,
            "bytes staged {} below the 890 MB of extras",
            stats.bytes_staged
        );
    }

    #[test]
    fn run_seeds_orders_results_like_the_input_seeds() {
        let exp = MontageExperiment::paper_setup(0, 4, PolicyMode::Greedy { threshold: 50 });
        // More seeds than workers on small runners, so the pool must queue.
        let seeds = [3, 1, 2, 5, 4];
        let (summary, runs) = exp.run_seeds(&seeds);
        assert_eq!(runs.len(), seeds.len());
        for (&seed, run) in seeds.iter().zip(&runs) {
            let solo = exp.run_once(seed);
            assert_eq!(run.makespan, solo.makespan, "seed {seed} out of order");
        }
        assert!(summary.mean > 0.0);
    }

    #[test]
    fn no_policy_mode_runs_without_callouts() {
        let exp = MontageExperiment::paper_setup(0, 4, PolicyMode::NoPolicy);
        let stats = exp.run_once(1);
        assert!(stats.success);
        assert_eq!(stats.transfers_skipped, 0);
    }

    #[test]
    fn table_iv_peak_streams_hold_in_simulation() {
        // Threshold 50, default 8: the WAN must never carry more than 63
        // policy-allocated streams (Table IV's cell).
        let exp = MontageExperiment::paper_setup(mb(100), 8, PolicyMode::Greedy { threshold: 50 });
        let stats = exp.run_once(2);
        assert!(stats.success);
        let peak = stats.peak_wan_streams.unwrap();
        assert!(peak <= 63, "WAN peak {peak} exceeded Table IV's 63");
        assert!(peak >= 40, "WAN peak {peak} suspiciously low");
    }

    #[test]
    fn seeds_reproduce_exactly() {
        let exp = MontageExperiment::paper_setup(mb(10), 6, PolicyMode::Greedy { threshold: 50 });
        let a = exp.run_once(3);
        let b = exp.run_once(3);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.policy_calls, b.policy_calls);
    }

    #[test]
    fn traced_run_exports_a_full_flame_timeline() {
        let exp = MontageExperiment::paper_setup(mb(1), 4, PolicyMode::Greedy { threshold: 50 });
        let (stats, obs) = exp.run_once_traced(1);
        assert!(stats.success);
        let trace = obs.tracer.chrome_trace_json();
        let events = pwm_obs::validate_chrome_trace(&trace).expect("valid Chrome trace");
        assert!(events > 100, "a Montage run should export many spans");
        // Every instrumented layer contributes its own category row.
        for cat in [
            "stage_in",
            "compute",
            "cleanup",
            "transfer",
            "net",
            "policy_rpc",
            "policy",
        ] {
            assert!(
                trace.contains(&format!("\"cat\":\"{cat}\"")),
                "missing category {cat}"
            );
        }
        // The shared registry carries policy- and workflow-layer counters.
        let metrics = obs.registry.render_prometheus();
        assert!(metrics.contains("pwm_policy_transfer_requests_total"));
        assert!(metrics.contains("pwm_workflow_jobs_total"));
    }

    #[test]
    fn traced_run_is_deterministic() {
        let exp = MontageExperiment::paper_setup(0, 4, PolicyMode::Greedy { threshold: 50 });
        let mk = || exp.run_once_traced(7).1.tracer.chrome_trace_json();
        assert_eq!(mk(), mk(), "same seed must export an identical trace");
    }

    #[test]
    fn summary_collects_all_seeds() {
        let exp = MontageExperiment::paper_setup(0, 4, PolicyMode::NoPolicy);
        let (summary, runs) = exp.run_seeds(&[1, 2, 3]);
        assert_eq!(summary.n, 3);
        assert_eq!(runs.len(), 3);
        assert!(summary.mean > 0.0);
    }
}
