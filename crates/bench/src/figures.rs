//! Figure definitions: the exact parameter grids of Figures 5–9.
//!
//! Each function returns the figure's series as `(series label, points)`,
//! where a point is `(default streams per transfer, makespan summary)` —
//! the same axes the paper plots.

use crate::experiment::{default_seeds, mb, MontageExperiment, PolicyMode};
use pwm_sim::Summary;

/// Default-streams sweep common to all figures.
pub const DEFAULT_STREAMS: [u32; 5] = [4, 6, 8, 10, 12];
/// The greedy thresholds compared in Figures 6–9.
pub const THRESHOLDS: [u32; 3] = [50, 100, 200];
/// The extra-file sizes of Figure 5 (bytes); 0 = unaugmented.
pub fn fig5_sizes() -> [u64; 5] {
    [0, mb(10), mb(100), mb(500), mb(1000)]
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// `(default streams, makespan seconds)` points.
    pub points: Vec<(u32, Summary)>,
}

/// A whole figure.
#[derive(Debug, Clone)]
pub struct Figure {
    /// "Fig. 5" ... "Fig. 9".
    pub name: String,
    /// What the figure shows.
    pub caption: String,
    /// All series.
    pub series: Vec<Series>,
}

fn sweep(extra_bytes: u64, mode: PolicyMode, seeds: &[u64]) -> Series {
    let points = DEFAULT_STREAMS
        .iter()
        .map(|&d| {
            let exp = MontageExperiment::paper_setup(extra_bytes, d, mode);
            let (summary, _) = exp.run_seeds(seeds);
            (d, summary)
        })
        .collect();
    Series {
        label: mode.label(),
        points,
    }
}

/// The single no-policy point (the paper plots it at 4 streams/transfer:
/// "the single point for the no-policy case, where default Pegasus runs
/// with 4 streams per transfer").
fn no_policy_point(extra_bytes: u64, seeds: &[u64]) -> Series {
    let exp = MontageExperiment::paper_setup(extra_bytes, 4, PolicyMode::NoPolicy);
    let (summary, _) = exp.run_seeds(seeds);
    Series {
        label: "no-policy".to_string(),
        points: vec![(4, summary)],
    }
}

/// Fig. 5: threshold fixed at 50, extra-file size varied 0 → 1 GB.
pub fn fig5(seeds_per_point: usize) -> Figure {
    let seeds = default_seeds(seeds_per_point);
    let series = fig5_sizes()
        .iter()
        .map(|&bytes| {
            let mut s = sweep(bytes, PolicyMode::Greedy { threshold: 50 }, &seeds);
            s.label = if bytes == 0 {
                "no extra data".to_string()
            } else {
                format!("{} MB extra", bytes / 1_000_000)
            };
            s
        })
        .collect();
    Figure {
        name: "Fig. 5".into(),
        caption: "Workflow execution time vs default streams per transfer; greedy \
                  threshold 50; extra staged file size varied"
            .into(),
        series,
    }
}

fn threshold_comparison_figure(name: &str, extra_bytes: u64, seeds_per_point: usize) -> Figure {
    let seeds = default_seeds(seeds_per_point);
    let mut series: Vec<Series> = THRESHOLDS
        .iter()
        .map(|&t| sweep(extra_bytes, PolicyMode::Greedy { threshold: t }, &seeds))
        .collect();
    series.push(no_policy_point(extra_bytes, &seeds));
    Figure {
        name: name.into(),
        caption: format!(
            "Workflow performance with additional {} MB files; greedy thresholds \
             50/100/200 vs default Pegasus (no policy, 4 streams)",
            extra_bytes / 1_000_000
        ),
        series,
    }
}

/// Fig. 6: 10 MB extra files.
pub fn fig6(seeds_per_point: usize) -> Figure {
    threshold_comparison_figure("Fig. 6", mb(10), seeds_per_point)
}

/// Fig. 7: 100 MB extra files.
pub fn fig7(seeds_per_point: usize) -> Figure {
    threshold_comparison_figure("Fig. 7", mb(100), seeds_per_point)
}

/// Fig. 8: 500 MB extra files.
pub fn fig8(seeds_per_point: usize) -> Figure {
    threshold_comparison_figure("Fig. 8", mb(500), seeds_per_point)
}

/// Fig. 9: 1 GB extra files.
pub fn fig9(seeds_per_point: usize) -> Figure {
    threshold_comparison_figure("Fig. 9", mb(1000), seeds_per_point)
}

/// Extension figure (the paper's future work: "much more extensive
/// performance evaluation of ... the balanced allocation"): greedy vs
/// balanced at matched thresholds on the clustered workflow, 100 MB extras.
pub fn fig_balanced(seeds_per_point: usize) -> Figure {
    let seeds = default_seeds(seeds_per_point);
    let cluster_factor = 4;
    let mut series = Vec::new();
    for (label, mode) in [
        ("greedy-48", PolicyMode::Greedy { threshold: 48 }),
        (
            "balanced-48/4",
            PolicyMode::Balanced {
                threshold: 48,
                cluster_factor,
            },
        ),
    ] {
        let points = DEFAULT_STREAMS
            .iter()
            .map(|&d| {
                let mut exp = MontageExperiment::paper_setup(mb(100), d, mode);
                exp.clustering_factor = Some(cluster_factor);
                let (summary, _) = exp.run_seeds(&seeds);
                (d, summary)
            })
            .collect();
        series.push(Series {
            label: label.to_string(),
            points,
        });
    }
    Figure {
        name: "Ext. Fig. B".into(),
        caption: "Greedy vs balanced allocation at matched thresholds; clustered \
                  Montage (factor 4), 100 MB extras"
            .into(),
        series,
    }
}

/// Render a figure as CSV (one row per series × x, plotting-ready).
pub fn render_csv(figure: &Figure) -> String {
    let mut out = String::from("figure,series,default_streams,mean_s,stddev_s,n\n");
    for series in &figure.series {
        for (x, s) in &series.points {
            out.push_str(&format!(
                "{},{},{},{:.3},{:.3},{}\n",
                figure.name, series.label, x, s.mean, s.stddev, s.n
            ));
        }
    }
    out
}

/// Render a figure as an aligned text table (series × default streams).
pub fn render(figure: &Figure) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}: {}\n", figure.name, figure.caption));
    out.push_str(&format!("{:<18}", "series \\ streams"));
    for d in DEFAULT_STREAMS {
        out.push_str(&format!("{:>16}", d));
    }
    out.push('\n');
    for series in &figure.series {
        out.push_str(&format!("{:<18}", series.label));
        let mut by_x: std::collections::BTreeMap<u32, &Summary> = Default::default();
        for (x, s) in &series.points {
            by_x.insert(*x, s);
        }
        for d in DEFAULT_STREAMS {
            match by_x.get(&d) {
                Some(s) => out.push_str(&format!("{:>9.0}±{:<6.0}", s.mean, s.stddev)),
                None => out.push_str(&format!("{:>16}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

/// Look up a series point (for shape assertions).
pub fn point(figure: &Figure, label: &str, streams: u32) -> Option<Summary> {
    figure
        .series
        .iter()
        .find(|s| s.label == label)?
        .points
        .iter()
        .find(|(x, _)| *x == streams)
        .map(|(_, s)| *s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_has_three_thresholds_and_no_policy() {
        // 1 seed to keep unit tests quick; integration tests use more.
        let f = fig6(1);
        assert_eq!(f.series.len(), 4);
        let labels: Vec<&str> = f.series.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"greedy-50"));
        assert!(labels.contains(&"no-policy"));
        // Threshold series sweep all 5 stream counts; no-policy is a point.
        assert_eq!(f.series[0].points.len(), 5);
        assert_eq!(f.series[3].points.len(), 1);
    }

    #[test]
    fn render_contains_all_series() {
        let f = fig6(1);
        let text = render(&f);
        for s in &f.series {
            assert!(text.contains(&s.label));
        }
    }

    #[test]
    fn point_lookup_works() {
        let f = fig6(1);
        assert!(point(&f, "greedy-50", 8).is_some());
        assert!(point(&f, "greedy-50", 99).is_none());
        assert!(point(&f, "nonexistent", 8).is_none());
        assert!(point(&f, "no-policy", 4).is_some());
    }
}
