//! Table IV: "Maximum streams for simultaneous transfers".
//!
//! The analytic table comes straight from the greedy-grant arithmetic with
//! 20 concurrent staging jobs; [`table4_via_service`] additionally drives the
//! full Policy Service (rules, memory, ledgers) to the same numbers, and the
//! simulation-level check lives in the `fig*` experiments' peak-stream
//! instrumentation.

use pwm_core::{
    greedy_total_for_concurrent_jobs, no_policy_total, AllocationPolicy, PolicyConfig,
    PolicyService, TransferSpec, Url, WorkflowId,
};

/// The default-streams columns of Table IV.
pub const DEFAULTS: [u32; 5] = [4, 6, 8, 10, 12];
/// The greedy-threshold rows of Table IV.
pub const THRESHOLDS: [u32; 3] = [50, 100, 200];
/// Concurrent staging jobs in the table's scenario (the local job limit).
pub const CONCURRENT_JOBS: u32 = 20;

/// The paper's printed Table IV, for verification: rows are (no-policy,
/// 50, 100, 200), columns are defaults (4, 6, 8, 10, 12).
pub const PAPER_TABLE: [[u32; 5]; 4] = [
    [80, 80, 80, 80, 80],
    [57, 61, 63, 65, 65],
    [80, 103, 107, 110, 111],
    [80, 120, 160, 200, 203],
];

/// One computed row of the table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table4Row {
    /// Row label ("no policy" or the threshold).
    pub label: String,
    /// Maximum streams per default-streams column.
    pub max_streams: Vec<u32>,
}

/// Compute the table analytically from the grant arithmetic.
pub fn table4_analytic() -> Vec<Table4Row> {
    let mut rows = Vec::new();
    rows.push(Table4Row {
        label: "no policy".to_string(),
        max_streams: DEFAULTS
            .iter()
            // The paper's no-policy runs always use 4 streams per transfer,
            // hence the constant 80 row.
            .map(|_| no_policy_total(CONCURRENT_JOBS, 4))
            .collect(),
    });
    for threshold in THRESHOLDS {
        rows.push(Table4Row {
            label: format!("greedy {threshold}"),
            max_streams: DEFAULTS
                .iter()
                .map(|&d| greedy_total_for_concurrent_jobs(CONCURRENT_JOBS, d, threshold))
                .collect(),
        });
    }
    rows
}

/// Compute the table by driving the full Policy Service: 20 staging jobs
/// each submit one transfer, nothing completes, and the host-pair ledger's
/// peak is read back.
pub fn table4_via_service() -> Vec<Table4Row> {
    let mut rows = Vec::new();
    rows.push(Table4Row {
        label: "no policy".to_string(),
        max_streams: DEFAULTS
            .iter()
            .map(|_| no_policy_total(CONCURRENT_JOBS, 4))
            .collect(),
    });
    for threshold in THRESHOLDS {
        let mut max_streams = Vec::new();
        for &default in DEFAULTS.iter() {
            let mut service = PolicyService::new(
                PolicyConfig::default()
                    .with_default_streams(default)
                    .with_threshold(threshold)
                    .with_allocation(AllocationPolicy::Greedy),
            );
            for job in 0..CONCURRENT_JOBS {
                service.evaluate_transfers(vec![TransferSpec {
                    source: Url::new("gsiftp", "tacc", format!("/data/f{job}.dat")),
                    dest: Url::new("file", "isi", format!("/scratch/f{job}.dat")),
                    bytes: 1,
                    requested_streams: None,
                    workflow: WorkflowId(job as u64),
                    cluster: None,
                    priority: None,
                }]);
            }
            max_streams.push(service.peak_allocated("tacc", "isi"));
        }
        rows.push(Table4Row {
            label: format!("greedy {threshold}"),
            max_streams,
        });
    }
    rows
}

/// Render the table as aligned text matching the paper's layout.
pub fn render(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    out.push_str("TABLE IV: MAXIMUM STREAMS FOR SIMULTANEOUS TRANSFERS\n");
    out.push_str(&format!("{:<14}", "threshold"));
    for d in DEFAULTS {
        out.push_str(&format!("{d:>8}"));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&format!("{:<14}", row.label));
        for v in &row.max_streams {
            out.push_str(&format!("{v:>8}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn as_matrix(rows: &[Table4Row]) -> Vec<Vec<u32>> {
        rows.iter().map(|r| r.max_streams.clone()).collect()
    }

    #[test]
    fn analytic_matches_the_paper_exactly() {
        let rows = table4_analytic();
        let matrix = as_matrix(&rows);
        for (computed, paper) in matrix.iter().zip(PAPER_TABLE.iter()) {
            assert_eq!(computed.as_slice(), paper.as_slice());
        }
    }

    #[test]
    fn service_matches_the_paper_exactly() {
        let rows = table4_via_service();
        let matrix = as_matrix(&rows);
        for (computed, paper) in matrix.iter().zip(PAPER_TABLE.iter()) {
            assert_eq!(computed.as_slice(), paper.as_slice());
        }
    }

    #[test]
    fn render_contains_key_cells() {
        let text = render(&table4_analytic());
        assert!(text.contains("no policy"));
        assert!(text.contains("greedy 50"));
        assert!(text.contains("63")); // threshold 50, default 8
        assert!(text.contains("203")); // threshold 200, default 12
    }
}
