//! Policy Service front-end throughput benchmark (`svcbench` bin).
//!
//! Drives the event-driven REST server end to end — keep-alive HTTP,
//! pipelined advice windows, the batched `evaluate_transfer_groups` path,
//! and the sharded policy service — and measures sustained advice requests
//! per wall-clock second over a grid of (shards × pipeline depth) cells.
//! The `noreuse` cell is the baseline: a single unsharded shard, one
//! request per round-trip, and a fresh TCP connection per request —
//! exactly how the pre-change client talked to the thread-per-connection
//! server (one connect per advice call, no keep-alive, no pipelining).
//! The keep-alive `depth1` cell isolates what connection reuse alone
//! buys; the deeper cells add pipelining and server-side batching. The
//! headline numbers in `BENCH_svc.json` are the best cell's req/s and its
//! speedup over the baseline, measured in the same run; DESIGN.md §10
//! explains how to read them.
//!
//! Workload: `sessions` logical workflow sessions (distinct workflow ids
//! and staged files across 64 host pairs, so a sharded service spreads
//! them over its ring). A warmup pass stages every session's file once;
//! the measured phase then cycles advice requests over all sessions —
//! steady-state duplicate-suppression traffic, the hot path of the paper's
//! shared-staging scenario — from `connections` concurrent client threads,
//! each pipelining `depth` requests per window. No durability in any cell:
//! the bench measures the advice path, not fsync.

use pwm_core::{
    PolicyConfig, PolicyController, PolicyTransport, TransferOutcome, TransferSpec, Url, WorkflowId,
};
use pwm_obs::{global_logger, HistogramSnapshot, JsonValue};
use pwm_rest::{PolicyRestClient, PolicyRestServer, ServerLimits};
use std::time::{Duration, Instant};

/// Distinct (source host, dest host) pairs the workload spreads over; the
/// shard ring hashes these, so every shard owns a slice of the traffic.
const HOST_PAIRS: usize = 64;

/// One grid cell: a shard count and a pipeline depth over a fixed workload.
#[derive(Debug, Clone)]
pub struct SvcbenchScenario {
    /// Cell name as it appears in `BENCH_svc.json`.
    pub label: String,
    /// Policy-service shards (1 = plain unsharded service).
    pub shards: u16,
    /// Requests pipelined per window (1 = one request per round-trip).
    pub depth: usize,
    /// Concurrent client threads, each with its own keep-alive connection.
    pub connections: usize,
    /// Reuse connections (keep-alive)? `false` reproduces the pre-change
    /// client: one TCP connect per request. Only the baseline cell sets it.
    pub keepalive: bool,
    /// Logical workflow sessions (distinct dedup streams) kept concurrent.
    pub sessions: usize,
    /// Advice requests to issue in the measured phase.
    pub requests: u64,
}

/// The full grid: shards × depth, all over the same 10k-session workload.
/// The first cell is the baseline the speedups are computed against.
pub fn standard_suite() -> Vec<SvcbenchScenario> {
    let mut cells = vec![SvcbenchScenario {
        label: "shards1-depth1-noreuse".into(),
        shards: 1,
        depth: 1,
        connections: 4,
        keepalive: false,
        sessions: 10_000,
        requests: 20_000,
    }];
    for &shards in &[1u16, 4] {
        for &depth in &[1usize, 8, 32] {
            cells.push(SvcbenchScenario {
                label: format!("shards{shards}-depth{depth}"),
                shards,
                depth,
                connections: 4,
                keepalive: true,
                sessions: 10_000,
                // Deeper pipelines are faster; give them more requests so
                // every cell's timed window stays meaningful.
                requests: 30_000 + 30_000 * depth.min(8) as u64,
            });
        }
    }
    cells
}

/// The CI smoke grid: tiny workload, three cells — enough to assert the
/// batched path is actually faster than request-per-round-trip.
pub fn smoke_suite() -> Vec<SvcbenchScenario> {
    [(1u16, 1usize, false), (1, 16, true), (2, 16, true)]
        .iter()
        .map(|&(shards, depth, keepalive)| SvcbenchScenario {
            label: if keepalive {
                format!("shards{shards}-depth{depth}")
            } else {
                format!("shards{shards}-depth{depth}-noreuse")
            },
            shards,
            depth,
            connections: 2,
            keepalive,
            sessions: 500,
            requests: if keepalive { 6_000 } else { 3_000 },
        })
        .collect()
}

/// What one cell measured.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The configuration that produced this result.
    pub scenario: SvcbenchScenario,
    /// Requests actually issued (rounded to whole windows per thread).
    pub requests: u64,
    /// Wall-clock seconds for the measured phase.
    pub wall_secs: f64,
    /// Advice requests per wall-clock second — the headline throughput.
    pub req_per_sec: f64,
    /// Amortized per-request latency distribution in microseconds
    /// (window round-trip time divided by its depth).
    pub latency: HistogramSnapshot,
}

impl CellResult {
    /// Latency quantile in microseconds.
    pub fn latency_us(&self, q: f64) -> u64 {
        self.latency.quantile(q).unwrap_or(0)
    }
}

/// The logical session `j`'s transfer spec: a stable file and host pair,
/// so the first request stages it and every later one is a duplicate.
fn session_spec(j: usize) -> TransferSpec {
    let p = j % HOST_PAIRS;
    TransferSpec {
        source: Url::new("gsiftp", format!("gridftp-{p}"), format!("/data/s{j}.dat")),
        dest: Url::new("file", format!("scratch-{p}"), format!("/scratch/s{j}.dat")),
        bytes: 1_000_000,
        requested_streams: None,
        workflow: WorkflowId(j as u64),
        cluster: None,
        priority: None,
    }
}

/// Run one grid cell: start a fresh server with the right shard count,
/// stage every session once (warmup), then hammer the advice path.
pub fn run_cell(s: &SvcbenchScenario) -> CellResult {
    let session = "svc";
    let config = PolicyConfig::default().with_default_streams(4);
    let controller = PolicyController::new(config.clone());
    if s.shards <= 1 {
        controller.create_session(session, config);
    } else {
        controller.create_sharded_session(session, config, s.shards);
    }
    let server = PolicyRestServer::start_with_limits(
        controller,
        ServerLimits {
            read_timeout: Duration::from_secs(30),
            max_body: 16 << 20,
        },
    )
    .expect("bind svcbench server");
    let addr = server.addr();

    // Warmup: stage every logical session's file once, in big pipelined
    // windows, and report each staging complete. This populates the dedup
    // working set ("concurrent sessions" = staged resources the measured
    // phase dedups against) and warms the keep-alive path. Reporting
    // completion matters: an unreported transfer stays InProgress in
    // policy memory forever, and a workload that never completes anything
    // measures unbounded memory growth, not steady-state advice.
    {
        let mut client = PolicyRestClient::new(addr, session);
        let specs: Vec<Vec<TransferSpec>> =
            (0..s.sessions).map(|j| vec![session_spec(j)]).collect();
        for chunk in specs.chunks(256) {
            let advice = client
                .evaluate_transfers_pipelined(chunk)
                .expect("warmup window");
            let outcomes: Vec<TransferOutcome> = advice
                .iter()
                .flatten()
                .filter(|a| a.should_execute())
                .map(|a| TransferOutcome {
                    id: a.id,
                    success: true,
                })
                .collect();
            if !outcomes.is_empty() {
                client.report_transfers(outcomes).expect("warmup report");
            }
        }
    }

    // Measured phase: `connections` threads, each cycling its slice of the
    // sessions in pipelined windows of `depth`. The load generator works
    // like wrk: each session's request is rendered to wire bytes once and
    // replayed, and responses are split on the HTTP framing without
    // decoding advice bodies (the warmup already validated those) — the
    // client must not spend its share of the core re-serializing JSON the
    // server is being benchmarked on.
    let windows_per_thread = (s.requests as usize / s.connections / s.depth).max(1);
    let started = Instant::now();
    let mut threads = Vec::new();
    for t in 0..s.connections {
        let sessions = s.sessions;
        let connections = s.connections;
        let depth = s.depth;
        let keepalive = s.keepalive;
        threads.push(std::thread::spawn(move || {
            use std::io::{Read, Write};
            // Pre-render this thread's slice: sessions congruent to
            // t mod connections.
            let wire: Vec<Vec<u8>> = (0..sessions)
                .skip(t)
                .step_by(connections.max(1))
                .map(|j| {
                    let body = serde_json::to_vec(&pwm_rest::TransferRequestEnvelope {
                        transfers: vec![session_spec(j)],
                    })
                    .expect("render request body");
                    pwm_rest::http::render_request(
                        pwm_rest::WireFormat::Json,
                        pwm_rest::Method::Post,
                        &format!("/sessions/{session}/transfers"),
                        &body,
                        keepalive,
                    )
                })
                .collect();
            let mut latency = HistogramSnapshot::new();
            let mut cursor = 0usize;
            let mut rbuf: Vec<u8> = Vec::with_capacity(16 * 1024);
            let mut chunk = [0u8; 16 * 1024];
            if !keepalive {
                // Pre-change client behavior: a fresh TCP connection per
                // request, one request per round-trip, `Connection: close`.
                for _ in 0..windows_per_thread * depth {
                    let req = &wire[cursor % wire.len()];
                    cursor += 1;
                    let t0 = Instant::now();
                    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
                    stream.set_nodelay(true).ok();
                    stream.write_all(req).expect("write request");
                    rbuf.clear();
                    loop {
                        if let Some((status, _body, _consumed)) =
                            pwm_rest::http::try_parse_response(&rbuf).expect("parse response")
                        {
                            assert_eq!(status, 200, "advice request failed");
                            break;
                        }
                        let n = stream.read(&mut chunk).expect("read response");
                        assert!(n > 0, "server closed before responding");
                        rbuf.extend_from_slice(&chunk[..n]);
                    }
                    latency.record(t0.elapsed().as_micros() as u64);
                }
                return latency;
            }
            let mut stream = std::net::TcpStream::connect(addr).expect("connect");
            stream.set_nodelay(true).ok();
            let mut window = Vec::new();
            for _ in 0..windows_per_thread {
                window.clear();
                for _ in 0..depth {
                    window.extend_from_slice(&wire[cursor % wire.len()]);
                    cursor += 1;
                }
                let t0 = Instant::now();
                stream.write_all(&window).expect("write window");
                let mut answered = 0usize;
                rbuf.clear();
                while answered < depth {
                    while let Some((status, _body, consumed)) =
                        pwm_rest::http::try_parse_response(&rbuf).expect("parse response")
                    {
                        assert_eq!(status, 200, "advice request failed");
                        rbuf.drain(..consumed);
                        answered += 1;
                        if answered == depth {
                            break;
                        }
                    }
                    if answered == depth {
                        break;
                    }
                    let n = stream.read(&mut chunk).expect("read responses");
                    assert!(n > 0, "server closed mid-window");
                    rbuf.extend_from_slice(&chunk[..n]);
                }
                let us = t0.elapsed().as_micros() as u64;
                latency.record(us / depth as u64);
            }
            latency
        }));
    }
    let mut latency = HistogramSnapshot::new();
    for t in threads {
        latency.merge(&t.join().expect("client thread"));
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let requests = (windows_per_thread * s.depth * s.connections) as u64;
    drop(server);
    CellResult {
        scenario: s.clone(),
        requests,
        wall_secs,
        req_per_sec: requests as f64 / wall_secs,
        latency,
    }
}

/// Run a suite and log per-cell progress. The `(shards=1, depth=1)` cell
/// must be present — it is the speedup baseline.
pub fn run_suite(suite: &[SvcbenchScenario]) -> Vec<CellResult> {
    let log = global_logger();
    let mut results = Vec::with_capacity(suite.len());
    for s in suite {
        log.info(&format!(
            "svcbench: {} — {} sessions, {} conns, {} reqs",
            s.label, s.sessions, s.connections, s.requests
        ));
        let r = run_cell(s);
        log.info(&format!(
            "svcbench: {}: {:.0} req/s (p50 {}µs, p99 {}µs, {} reqs in {:.2}s)",
            s.label,
            r.req_per_sec,
            r.latency_us(0.50),
            r.latency_us(0.99),
            r.requests,
            r.wall_secs,
        ));
        results.push(r);
    }
    results
}

/// The baseline cell of a result set: single shard, one request per
/// round-trip, and — when such a cell exists — no connection reuse (the
/// pre-change client). Falls back to a keep-alive depth-1 cell so partial
/// grids still report speedups against *something* unbatched.
pub fn baseline(results: &[CellResult]) -> Option<&CellResult> {
    let depth1 = |r: &&CellResult| r.scenario.shards == 1 && r.scenario.depth == 1;
    results
        .iter()
        .find(|r| depth1(r) && !r.scenario.keepalive)
        .or_else(|| results.iter().find(depth1))
}

/// The highest-throughput cell.
pub fn best(results: &[CellResult]) -> Option<&CellResult> {
    results
        .iter()
        .max_by(|a, b| a.req_per_sec.total_cmp(&b.req_per_sec))
}

/// Render a result set as the `BENCH_svc.json` document.
pub fn report_json(results: &[CellResult]) -> JsonValue {
    let base_rps = baseline(results).map(|r| r.req_per_sec).unwrap_or(f64::NAN);
    let cells = results
        .iter()
        .map(|r| {
            JsonValue::Obj(vec![
                ("label".into(), JsonValue::Str(r.scenario.label.clone())),
                ("shards".into(), JsonValue::Int(r.scenario.shards as i64)),
                ("depth".into(), JsonValue::Int(r.scenario.depth as i64)),
                (
                    "connections".into(),
                    JsonValue::Int(r.scenario.connections as i64),
                ),
                ("keepalive".into(), JsonValue::Bool(r.scenario.keepalive)),
                (
                    "concurrent_sessions".into(),
                    JsonValue::Int(r.scenario.sessions as i64),
                ),
                ("requests".into(), JsonValue::Int(r.requests as i64)),
                ("wall_secs".into(), JsonValue::Float(r.wall_secs)),
                ("req_per_sec".into(), JsonValue::Float(r.req_per_sec)),
                (
                    "latency_us_p50".into(),
                    JsonValue::Int(r.latency_us(0.50) as i64),
                ),
                (
                    "latency_us_p95".into(),
                    JsonValue::Int(r.latency_us(0.95) as i64),
                ),
                (
                    "latency_us_p99".into(),
                    JsonValue::Int(r.latency_us(0.99) as i64),
                ),
                (
                    "speedup_vs_baseline".into(),
                    JsonValue::Float(r.req_per_sec / base_rps),
                ),
            ])
        })
        .collect();
    let best_cell = best(results);
    JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("svcbench".into())),
        (
            "units".into(),
            JsonValue::Str(
                "req_per_sec: advice requests per wall-clock second; latency_us_*: amortized per-request round-trip"
                    .into(),
            ),
        ),
        (
            "baseline".into(),
            JsonValue::Str(
                baseline(results)
                    .map(|r| {
                        if r.scenario.keepalive {
                            format!("{} (unsharded, one request per round-trip)", r.scenario.label)
                        } else {
                            format!(
                                "{} (unsharded, one request per round-trip, fresh TCP connection per request — the pre-change client)",
                                r.scenario.label
                            )
                        }
                    })
                    .unwrap_or_default(),
            ),
        ),
        (
            "best_label".into(),
            JsonValue::Str(best_cell.map(|r| r.scenario.label.clone()).unwrap_or_default()),
        ),
        (
            "best_req_per_sec".into(),
            JsonValue::Float(best_cell.map(|r| r.req_per_sec).unwrap_or(0.0)),
        ),
        (
            "best_speedup_vs_baseline".into(),
            JsonValue::Float(best_cell.map(|r| r.req_per_sec / base_rps).unwrap_or(0.0)),
        ),
        ("cells".into(), JsonValue::Arr(cells)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_cell_runs_and_reports() {
        let s = SvcbenchScenario {
            label: "tiny".into(),
            shards: 2,
            depth: 4,
            connections: 2,
            keepalive: true,
            sessions: 40,
            requests: 160,
        };
        let r = run_cell(&s);
        assert!(r.requests >= 80);
        assert!(r.req_per_sec > 0.0);
        let doc = report_json(&[r]);
        let text = doc.render();
        JsonValue::parse(&text).expect("svcbench JSON must parse");
    }

    #[test]
    fn baseline_and_best_are_found() {
        let mk = |label: &str, shards: u16, depth: usize, keepalive: bool, rps: f64| CellResult {
            scenario: SvcbenchScenario {
                label: label.into(),
                shards,
                depth,
                connections: 1,
                keepalive,
                sessions: 1,
                requests: 1,
            },
            requests: 1,
            wall_secs: 1.0,
            req_per_sec: rps,
            latency: HistogramSnapshot::new(),
        };
        let results = vec![
            mk("shards1-depth1-noreuse", 1, 1, false, 60.0),
            mk("shards1-depth1", 1, 1, true, 100.0),
            mk("shards4-depth32", 4, 32, true, 900.0),
        ];
        assert_eq!(
            baseline(&results).unwrap().scenario.label,
            "shards1-depth1-noreuse"
        );
        assert_eq!(best(&results).unwrap().scenario.label, "shards4-depth32");
        // Without a no-reuse cell the keep-alive depth-1 cell is the fallback.
        assert_eq!(
            baseline(&results[1..]).unwrap().scenario.label,
            "shards1-depth1"
        );
    }
}
