//! Calibration probe: prints per-configuration staging detail (peak WAN
//! streams, staging window, goodput) used to tune the stream model so the
//! figure shapes match the paper. Not part of the reproduction output.

use pwm_bench::{mb, MontageExperiment, PolicyMode};
use pwm_obs::global_logger;

fn main() {
    let log = global_logger();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let size_mb: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(100);
    log.info(&format!("calibrating with {size_mb} MB extra files"));
    for (label, mode, streams) in [
        ("no-policy @4", PolicyMode::NoPolicy, 4),
        ("greedy-50 @4", PolicyMode::Greedy { threshold: 50 }, 4),
        ("greedy-50 @8", PolicyMode::Greedy { threshold: 50 }, 8),
        ("greedy-100 @8", PolicyMode::Greedy { threshold: 100 }, 8),
        ("greedy-200 @8", PolicyMode::Greedy { threshold: 200 }, 8),
        ("greedy-200 @12", PolicyMode::Greedy { threshold: 200 }, 12),
    ] {
        log.debug(&format!("running {label}"));
        let exp = MontageExperiment::paper_setup(mb(size_mb), streams, mode);
        let stats = exp.run_once(1);
        let wan_transfers: Vec<_> = stats.transfers.iter().filter(|t| t.bytes > 1.0e6).collect();
        let goodput: f64 = if wan_transfers.is_empty() {
            0.0
        } else {
            let start = wan_transfers.iter().map(|t| t.requested_at).min().unwrap();
            let end = wan_transfers.iter().map(|t| t.completed_at).max().unwrap();
            let bytes: f64 = wan_transfers.iter().map(|t| t.bytes).sum();
            bytes / end.since(start).as_secs_f64()
        };
        println!(
            "{label:<16} makespan {:>8.0}s  peakWAN {:>4}  wan-goodput {:>6.3} MB/s  retries {}",
            stats.makespan_secs(),
            stats.peak_wan_streams.unwrap_or(0),
            goodput / 1e6,
            stats.transfer_retries,
        );
    }
}
