//! Storage-backend frontier benchmark — see `pwm_bench::storagebench`.
//!
//! ```text
//! storagebench [smoke] [--out PATH]
//! ```
//!
//! Runs the makespan-versus-dollar-cost frontier for one staging-heavy
//! workflow: three fixed-backend comparators (NFS / parallel FS / object
//! store, pinned via a single registered profile) against three
//! policy-picked runs (greedy-cheapest, latency-floor, budget-capped) over
//! the full backend trio. `smoke` runs the reduced CI scenario. Progress
//! goes to stderr; the machine-readable JSON report is printed to stdout
//! and, with `--out`, also written to PATH (conventionally
//! `BENCH_storage.json`).
//!
//! Exit is nonzero when any figure-shape invariant is violated: a failed
//! run, inconsistent cost accounting (component sums, metered bytes ≠
//! staged bytes), a non-monotone Pareto frontier, or no policy run beating
//! the worst fixed backend on cost at equal-or-better makespan.

use pwm_bench::storagebench::{
    check_invariants, report_json, run_suite, smoke_scenario, standard_scenario,
};
use pwm_obs::global_logger;

fn main() {
    let log = global_logger();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "smoke" => smoke = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = Some(p.clone()),
                    None => {
                        log.error("--out requires a path argument");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                log.error(&format!("unknown argument: {other}"));
                eprintln!("usage: storagebench [smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scenario = if smoke {
        smoke_scenario()
    } else {
        standard_scenario()
    };
    log.info(&format!(
        "storagebench: scenario {}{}",
        scenario.label,
        if smoke { " (smoke)" } else { "" }
    ));
    let points = run_suite(&scenario);
    let doc = report_json(&scenario, &points);
    let text = doc.render();
    println!("{text}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            log.error(&format!("failed to write {path}: {e}"));
            std::process::exit(1);
        }
        log.info(&format!("storagebench: report written to {path}"));
    }

    let violations = check_invariants(&points);
    if !violations.is_empty() {
        for v in &violations {
            log.error(&format!("storagebench: invariant violated: {v}"));
        }
        std::process::exit(1);
    }
}
