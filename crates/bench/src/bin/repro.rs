//! Reproduce the paper's tables and figures as text.
//!
//! ```text
//! repro table4            # Table IV (analytic + via the full service)
//! repro fig5 [seeds]      # Fig. 5 (threshold 50, sizes 0..1 GB)
//! repro fig6..fig9        # threshold comparisons at 10/100/500/1000 MB
//! repro all [seeds]       # everything (default 5 seeds per point)
//! repro shapes [seeds]    # the headline shape comparisons only (fast)
//! repro storage           # storage-backend makespan-vs-cost frontier
//! repro resilience        # fault-intensity ladder: policy-guided vs naive recovery
//! repro chaos [seed]      # fault-injection scenario + per-fault-class ablation
//! repro crash [seed]      # mid-run policy-service crash: cold vs warm recovery
//! repro --trace <out.json> [seed]   # traced paper-setup run → Chrome-trace JSON
//! repro validate-trace <path>       # check a Chrome-trace export (CI gate)
//! repro scrape-metrics              # run + scrape /metrics over HTTP (CI gate)
//! ```
//!
//! Progress and diagnostics go to stderr through the `pwm-obs` leveled
//! logger (`PWM_LOG=error|warn|info|debug`); result tables stay on stdout.

use pwm_bench::{
    chaos_ablation, fig5, fig6, fig7, fig8, fig9, fig_balanced, point, render_ablation,
    render_crash, render_csv, render_figure, render_table4, run_chaos, run_crash, table4_analytic,
    table4_via_service, ChaosConfig, CrashConfig, Figure,
};
use pwm_obs::global_logger;

fn main() {
    let log = global_logger();
    let args: Vec<String> = std::env::args().skip(1).collect();

    // `repro --trace <out.json> [seed]`: one traced run, exported and exit.
    if let Some(ix) = args.iter().position(|a| a == "--trace") {
        let Some(path) = args.get(ix + 1) else {
            log.error("--trace requires an output path");
            std::process::exit(2);
        };
        let seed: u64 = args.get(ix + 2).and_then(|s| s.parse().ok()).unwrap_or(1);
        traced_run(path, seed);
        return;
    }

    let what = args.first().map(String::as_str).unwrap_or("all");
    let seeds: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5).max(1);

    match what {
        "table4" => table4(),
        "fig5" => figure(fig5(seeds)),
        "fig6" => figure(fig6(seeds)),
        "fig7" => figure(fig7(seeds)),
        "fig8" => figure(fig8(seeds)),
        "fig9" => figure(fig9(seeds)),
        "figb" => figure(fig_balanced(seeds)),
        "timeline" => timeline(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100)),
        "chaos" => chaos(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7)),
        "crash" => crash(args.get(1).and_then(|s| s.parse().ok()).unwrap_or(7)),
        "shapes" => shapes(seeds),
        "storage" => storage(),
        "resilience" => resilience(),
        "validate-trace" => {
            let Some(path) = args.get(1) else {
                log.error("validate-trace requires a path");
                std::process::exit(2);
            };
            validate_trace(path);
        }
        "scrape-metrics" => scrape_metrics(),
        "all" => {
            table4();
            for (name, f) in [
                ("fig5", fig5(seeds)),
                ("fig6", fig6(seeds)),
                ("fig7", fig7(seeds)),
                ("fig8", fig8(seeds)),
                ("fig9", fig9(seeds)),
                ("figb", fig_balanced(seeds)),
            ] {
                log.info(&format!("rendering {name} ({seeds} seeds per point)"));
                figure(f);
            }
        }
        "csv" => {
            // Plotting-ready CSV for every figure on stdout.
            for f in [
                fig5(seeds),
                fig6(seeds),
                fig7(seeds),
                fig8(seeds),
                fig9(seeds),
                fig_balanced(seeds),
            ] {
                print!("{}", render_csv(&f));
            }
        }
        other => {
            log.error(&format!(
                "unknown target {other:?}; try table4|fig5..fig9|figb|csv|shapes|storage|resilience|chaos|crash|validate-trace|scrape-metrics|all [seeds]"
            ));
            std::process::exit(2);
        }
    }
}

/// One traced paper-setup run (greedy-50 @8 streams, 100 MB extras),
/// exported as Chrome-trace JSON for Perfetto / `chrome://tracing`.
fn traced_run(path: &str, seed: u64) {
    use pwm_bench::{mb, MontageExperiment, PolicyMode};
    let log = global_logger();
    log.info(&format!(
        "traced run: greedy-50 @8 streams, 100 MB extras, seed {seed}"
    ));
    let exp = MontageExperiment::paper_setup(mb(100), 8, PolicyMode::Greedy { threshold: 50 });
    let (stats, obs) = exp.run_once_traced(seed);
    let trace = obs.tracer.chrome_trace_json();
    let events = match pwm_obs::validate_chrome_trace(&trace) {
        Ok(n) => n,
        Err(e) => {
            log.error(&format!("exported trace failed validation: {e}"));
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(path, &trace) {
        log.error(&format!("cannot write {path}: {e}"));
        std::process::exit(1);
    }
    log.info(&format!("wrote {events} events to {path}"));
    log.debug(&format!(
        "metrics after run:\n{}",
        obs.registry.render_prometheus()
    ));
    println!(
        "trace {path} events {events} makespan_s {:.0} success {}",
        stats.makespan_secs(),
        stats.success
    );
}

/// Validate a Chrome-trace export on disk; nonzero exit on failure.
fn validate_trace(path: &str) {
    let log = global_logger();
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            log.error(&format!("cannot read {path}: {e}"));
            std::process::exit(1);
        }
    };
    match pwm_obs::validate_chrome_trace(&text) {
        Ok(events) => println!("valid {path} events {events}"),
        Err(e) => {
            log.error(&format!("invalid trace {path}: {e}"));
            std::process::exit(1);
        }
    }
}

/// Drive a few policy calls through the REST stack and scrape `/metrics`;
/// nonzero exit when the scrape fails or lacks the expected families.
fn scrape_metrics() {
    use pwm_core::{PolicyConfig, PolicyController, PolicyTransport, DEFAULT_SESSION};
    use pwm_rest::{PolicyRestClient, PolicyRestServer};
    let log = global_logger();
    let controller = PolicyController::new(PolicyConfig::default());
    let server = match PolicyRestServer::start(controller) {
        Ok(s) => s,
        Err(e) => {
            log.error(&format!("cannot start REST server: {e}"));
            std::process::exit(1);
        }
    };
    let mut client = PolicyRestClient::new(server.addr(), DEFAULT_SESSION);
    let spec = pwm_core::TransferSpec {
        source: pwm_core::Url::new("gsiftp", "gridftp-vm", "/data/f1"),
        dest: pwm_core::Url::new("file", "obelix-nfs", "/scratch/f1"),
        bytes: 1_000_000,
        requested_streams: None,
        workflow: pwm_core::WorkflowId(1),
        cluster: None,
        priority: None,
    };
    if let Err(e) = client.evaluate_transfers(vec![spec]) {
        log.error(&format!("policy call failed: {e}"));
        std::process::exit(1);
    }
    let text = match client.metrics() {
        Ok(t) => t,
        Err(e) => {
            log.error(&format!("/metrics scrape failed: {e}"));
            std::process::exit(1);
        }
    };
    if !text.contains("pwm_policy_transfer_requests_total{session=\"default\"} 1") {
        log.error(&format!("scrape missing expected counter:\n{text}"));
        std::process::exit(1);
    }
    log.info("scrape ok");
    print!("{text}");
}

/// WAN utilization timeline for one greedy-50 run at the given extra size.
fn timeline(extra_mb: u64) {
    use pwm_bench::{mb, MontageExperiment, PolicyMode};
    let exp = MontageExperiment::paper_setup(mb(extra_mb), 8, PolicyMode::Greedy { threshold: 50 });
    let (stats, network, wan) = exp.run_once_detailed(1);
    let wan = wan.expect("paper testbed has a WAN link");
    let tl = network.timeline(wan).expect("timeline recorded");
    println!(
        "WAN utilization, greedy-50 @8 streams, {} MB extras ({} samples, makespan {:.0}s):",
        extra_mb,
        tl.samples().len(),
        stats.makespan_secs()
    );
    println!(
        "  mean throughput {:.2} MB/s   peak streams {}   turbulent fraction {:.0}%",
        tl.mean_throughput() / 1e6,
        tl.peak_streams(),
        tl.turbulent_fraction(0.2) * 100.0
    );
    // Coarse time series: decade buckets of the run.
    let n = tl.samples().len().max(1);
    let per = (n / 10).max(1);
    println!(
        "  {:<12}{:>10}{:>14}{:>12}",
        "t(s)", "streams", "thru(MB/s)", "turb"
    );
    for chunk in tl.samples().chunks(per) {
        let t = chunk[0].at.as_secs_f64();
        let streams = chunk.iter().map(|s| s.streams).max().unwrap_or(0);
        let thru = chunk.iter().map(|s| s.throughput).sum::<f64>() / chunk.len() as f64;
        let turb = chunk.iter().map(|s| s.turbulence).sum::<f64>() / chunk.len() as f64;
        println!(
            "  {:<12.0}{:>10}{:>14.2}{:>12.2}",
            t,
            streams,
            thru / 1e6,
            turb
        );
    }
    println!();
}

/// Chaos scenario: one full fault-injected run plus the per-class ablation.
fn chaos(seed: u64) {
    let cfg = ChaosConfig::default();
    let report = run_chaos(&cfg, seed);
    println!(
        "Chaos scenario, seed {seed}: Montage under WAN flaps/degradations and a policy-service outage"
    );
    println!("  injected faults:");
    for ev in &report.fault_events {
        println!("    {ev}");
    }
    println!(
        "  outcome: success={} makespan {:.0}s  transfer retries {}  failovers {}",
        report.stats.success,
        report.makespan_secs(),
        report.stats.transfer_retries,
        report.failovers
    );
    println!(
        "  policy service: {} calls passed, {} failures injected; final scratch {:.0} bytes",
        report.service_calls_passed,
        report.injected_service_failures,
        report.stats.final_scratch_bytes
    );
    println!();
    println!("Ablation (same seed, fault classes toggled; inflation vs fault-free):");
    print!("{}", render_ablation(&chaos_ablation(&cfg, seed)));
    println!();
}

/// Crash scenario: mid-run policy-service death, cold vs warm recovery.
/// Exits nonzero if any recovery invariant is violated (CI gate).
fn crash(seed: u64) {
    let cfg = CrashConfig::default();
    let report = run_crash(&cfg, seed);
    println!(
        "Crash scenario, seed {seed}: primary policy service dies mid-run; \
         backup takes over cold (empty memory) vs warm (log-shipped)"
    );
    print!("{}", render_crash(&report));
    let violations = report.violations();
    if violations.is_empty() {
        println!("recovery invariants: all hold");
        println!();
    } else {
        let log = global_logger();
        for v in &violations {
            log.error(&format!("recovery invariant violated: {v}"));
        }
        std::process::exit(1);
    }
}

fn table4() {
    println!("{}", render_table4(&table4_analytic()));
    println!(
        "(verified identical when driven through the full Policy Service: {})",
        table4_via_service() == table4_analytic()
    );
    println!();
}

fn figure(f: Figure) {
    println!("{}", render_figure(&f));
    headline(&f);
    println!();
}

/// Print the paper's headline comparisons for a threshold-comparison figure.
fn headline(f: &Figure) {
    let (Some(g50), Some(np)) = (point(f, "greedy-50", 8), point(f, "no-policy", 4)) else {
        return;
    };
    let g200 = point(f, "greedy-200", 8);
    println!(
        "  greedy-50 @8 vs no-policy: {:+.1}%  (negative = policy faster)",
        (g50.mean / np.mean - 1.0) * 100.0
    );
    if let Some(g200) = g200 {
        println!(
            "  greedy-200 @8 vs greedy-50 @8: {:+.1}%  (positive = 200 slower)",
            (g200.mean / g50.mean - 1.0) * 100.0
        );
    }
}

/// The storage-backend makespan-vs-cost frontier as a text table (the
/// `storagebench` bin emits the JSON form).
fn resilience() {
    use pwm_bench::{resilience_invariants, resilience_standard, run_resiliencebench, speedup_at};
    let s = resilience_standard();
    let cells = run_resiliencebench(&s);
    println!("== resilience ladder: {} ==", s.label);
    println!(
        "  {:<10} {:<14} {:>12} {:>8} {:>14}",
        "intensity", "mode", "makespan", "success", "deterministic"
    );
    for c in &cells {
        println!(
            "  {:<10} {:<14} {:>11.2}s {:>8} {:>14}",
            c.intensity,
            c.mode(),
            c.stats.makespan_secs(),
            c.stats.success,
            c.deterministic
        );
    }
    for rung in ["calm", "rough", "turbulent"] {
        if let Some(ratio) = speedup_at(&cells, rung) {
            println!("  speedup[{rung}]: {ratio:.2}x (naive / policy-guided)");
        }
    }
    let violations = resilience_invariants(&s, &cells);
    for v in &violations {
        global_logger().error(&format!("invariant violated: {v}"));
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}

fn storage() {
    use pwm_bench::{check_invariants, pareto_frontier, run_storagebench, storagebench_standard};
    let s = storagebench_standard();
    let points = run_storagebench(&s);
    let frontier = pareto_frontier(&points);
    println!("== storage frontier: {} ==", s.label);
    println!(
        "  {:<24} {:>12} {:>12}  frontier",
        "run", "makespan", "dollars"
    );
    for (i, p) in points.iter().enumerate() {
        println!(
            "  {:<24} {:>11.2}s {:>12.6}  {}",
            p.label,
            p.makespan_secs,
            p.dollars,
            if frontier.contains(&i) { "*" } else { "" }
        );
    }
    let violations = check_invariants(&points);
    for v in &violations {
        global_logger().error(&format!("invariant violated: {v}"));
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}

/// Quick shape check across the four sizes at default 8 streams.
fn shapes(seeds: usize) {
    for (name, f) in [
        ("fig6 (10MB)", fig6(seeds)),
        ("fig7 (100MB)", fig7(seeds)),
        ("fig8 (500MB)", fig8(seeds)),
        ("fig9 (1GB)", fig9(seeds)),
    ] {
        println!("== {name} ==");
        for label in ["greedy-50", "greedy-100", "greedy-200"] {
            if let Some(s) = point(&f, label, 8) {
                println!("  {label:<12} @8  {:>10.0}s ±{:.0}", s.mean, s.stddev);
            }
        }
        if let Some(s) = point(&f, "no-policy", 4) {
            println!(
                "  {:<12} @4  {:>10.0}s ±{:.0}",
                "no-policy", s.mean, s.stddev
            );
        }
        headline(&f);
        println!();
    }
}
