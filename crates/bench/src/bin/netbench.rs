//! Allocator throughput benchmark — see `pwm_bench::netbench`.
//!
//! ```text
//! netbench [smoke] [--only LABEL] [--queue heap|ladder] [--out PATH]
//!          [--min-events-per-sec N] [--micro [ROUNDS]]
//! ```
//!
//! Runs the standard scenario suite (100 / 1k / 10k / 100k concurrent
//! flows, plus turbulent and shared-backbone honesty checks), comparing the
//! incremental component-local allocator against the pre-change
//! full-recompute baseline (skipped where `steps_full == 0`; at 100k flows
//! only the absolute incremental throughput is meaningful). `smoke` runs
//! only the 1k-flow configuration with reduced step budgets (the CI job).
//! `--min-events-per-sec N` makes the run exit nonzero if any scenario's
//! *incremental* events/s falls below N — the CI floor against
//! order-of-magnitude engine regressions. Every turbulent scenario is
//! additionally checked for rate-write suppression (unchanged writes ≈ 0);
//! a failure there exits nonzero too. Progress goes to stderr through the
//! `pwm-obs` leveled logger (`PWM_LOG=debug` for more); the
//! machine-readable JSON report is printed to stdout and, with `--out`,
//! also written to PATH (conventionally `BENCH_net.json`).
//!
//! The suite carries every scenario twice — once per event-queue
//! implementation (ladder rows keep the full-recompute baseline; heap rows
//! are incremental-only twins). `--queue heap|ladder` keeps only one side
//! of that head-to-head. `--micro [ROUNDS]` skips the scenario suite
//! entirely and runs the queue micro-benchmark (`pwm_bench::queuebench`,
//! default 1M rounds per probe) — per-operation heap-vs-ladder costs at
//! the 100k pending-event population.

use pwm_bench::netbench::{
    report_json, run_scenario, smoke_suite, standard_suite, write_suppression_ok,
};
use pwm_bench::queuebench;
use pwm_obs::global_logger;
use pwm_sim::QueueKind;

fn main() {
    let log = global_logger();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut min_events_per_sec: Option<f64> = None;
    let mut only: Option<String> = None;
    let mut queue: Option<QueueKind> = None;
    let mut micro: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "smoke" => smoke = true,
            "--queue" => {
                i += 1;
                match args.get(i).and_then(|v| QueueKind::parse(v)) {
                    Some(k) => queue = Some(k),
                    None => {
                        log.error("--queue requires `heap` or `ladder`");
                        std::process::exit(2);
                    }
                }
            }
            "--micro" => {
                // Optional round count; any non-numeric next token belongs
                // to another flag.
                micro = Some(match args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) {
                    Some(n) if n > 0 => {
                        i += 1;
                        n
                    }
                    _ => 1_000_000,
                });
            }
            "--only" => {
                i += 1;
                match args.get(i) {
                    Some(l) => only = Some(l.clone()),
                    None => {
                        log.error("--only requires a scenario label");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = Some(p.clone()),
                    None => {
                        log.error("--out requires a path argument");
                        std::process::exit(2);
                    }
                }
            }
            "--min-events-per-sec" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(n) if n >= 0.0 => min_events_per_sec = Some(n),
                    _ => {
                        log.error("--min-events-per-sec requires a non-negative number");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                log.error(&format!("unknown argument: {other}"));
                eprintln!(
                    "usage: netbench [smoke] [--only LABEL] [--queue heap|ladder] \
                     [--out PATH] [--min-events-per-sec N] [--micro [ROUNDS]]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(rounds) = micro {
        log.info(&format!(
            "netbench: queue micro-benchmark, {rounds} rounds per probe"
        ));
        let mut results = queuebench::run_suite(rounds);
        if let Some(k) = queue {
            results.retain(|r| r.queue == k);
        }
        for r in &results {
            log.info(&format!(
                "queuebench: {:>6} {:<16} {:>12.0} ops/s ({:.1} ns/op)",
                r.queue.name(),
                r.op,
                r.ops_per_sec,
                r.ns_per_op(),
            ));
        }
        let text = queuebench::report_json(&results).render();
        println!("{text}");
        if let Some(path) = out {
            if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
                log.error(&format!("failed to write {path}: {e}"));
                std::process::exit(1);
            }
            log.info(&format!("netbench: micro report written to {path}"));
        }
        return;
    }

    let mut suite = if smoke {
        smoke_suite()
    } else {
        standard_suite()
    };
    if let Some(label) = &only {
        suite.retain(|s| &s.label == label);
        if suite.is_empty() {
            log.error(&format!("--only {label}: no such scenario in the suite"));
            std::process::exit(2);
        }
    }
    if let Some(k) = queue {
        suite.retain(|s| s.queue == k);
        if suite.is_empty() {
            log.error(&format!("--queue {}: nothing left to run", k.name()));
            std::process::exit(2);
        }
    }
    log.info(&format!(
        "netbench: running {} scenario(s){}",
        suite.len(),
        if smoke { " (smoke)" } else { "" }
    ));
    let reports: Vec<_> = suite.iter().map(run_scenario).collect();
    let doc = report_json(&reports);
    let text = doc.render();
    println!("{text}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            log.error(&format!("failed to write {path}: {e}"));
            std::process::exit(1);
        }
        log.info(&format!("netbench: report written to {path}"));
    }

    let mut failed = false;
    if let Some(floor) = min_events_per_sec {
        for r in &reports {
            if r.incremental.events_per_sec < floor {
                log.error(&format!(
                    "netbench: {} incremental {:.0} events/s is below the floor of {:.0}",
                    r.scenario.label, r.incremental.events_per_sec, floor
                ));
                failed = true;
            }
        }
    }
    for r in reports.iter().filter(|r| r.scenario.turbulent) {
        if !write_suppression_ok(&r.incremental) {
            log.error(&format!(
                "netbench: {} wrote {} unchanged rates over {} events \
                 (expected ≲ 1 per event; rate-write suppression regressed)",
                r.scenario.label, r.incremental.stats.unchanged_writes, r.incremental.events,
            ));
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
