//! Allocator throughput benchmark — see `pwm_bench::netbench`.
//!
//! ```text
//! netbench [smoke] [--out PATH]
//! ```
//!
//! Runs the standard scenario suite (100 / 1k / 10k concurrent flows, plus
//! turbulent and shared-backbone honesty checks), comparing the incremental
//! component-local allocator against the pre-change full-recompute baseline.
//! `smoke` runs only the 1k-flow configuration with reduced step budgets
//! (the CI job). Progress goes to stderr through the `pwm-obs` leveled
//! logger (`PWM_LOG=debug` for more); the machine-readable JSON report is
//! printed to stdout and, with `--out`, also written to PATH
//! (conventionally `BENCH_net.json`).

use pwm_bench::netbench::{report_json, run_scenario, smoke_suite, standard_suite};
use pwm_obs::global_logger;

fn main() {
    let log = global_logger();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "smoke" => smoke = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = Some(p.clone()),
                    None => {
                        log.error("--out requires a path argument");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                log.error(&format!("unknown argument: {other}"));
                eprintln!("usage: netbench [smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let suite = if smoke {
        smoke_suite()
    } else {
        standard_suite()
    };
    log.info(&format!(
        "netbench: running {} scenario(s){}",
        suite.len(),
        if smoke { " (smoke)" } else { "" }
    ));
    let reports: Vec<_> = suite.iter().map(run_scenario).collect();
    let doc = report_json(&reports);
    let text = doc.render();
    println!("{text}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            log.error(&format!("failed to write {path}: {e}"));
            std::process::exit(1);
        }
        log.info(&format!("netbench: report written to {path}"));
    }
}
