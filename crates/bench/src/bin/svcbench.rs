//! Policy Service front-end throughput benchmark — see `pwm_bench::svcbench`.
//!
//! ```text
//! svcbench [smoke] [--out PATH] [--min-speedup X]
//! ```
//!
//! Runs the (shards × pipeline depth) grid against the live event-driven
//! REST server, 10k concurrent logical sessions per cell, and reports
//! advice requests per second plus amortized per-request latency
//! percentiles. `smoke` runs a reduced three-cell grid (the CI job).
//! With `--min-speedup X` the process exits 1 if the best cell's speedup
//! over the unsharded request-per-round-trip baseline falls below X — CI
//! uses this to assert the batched path actually pays for itself.
//! Progress goes to stderr through the `pwm-obs` leveled logger; the JSON
//! report is printed to stdout and, with `--out`, also written to PATH
//! (conventionally `BENCH_svc.json`).

use pwm_bench::svcbench::{baseline, best, report_json, run_suite, smoke_suite, standard_suite};
use pwm_obs::global_logger;

fn main() {
    let log = global_logger();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut min_speedup: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "smoke" => smoke = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = Some(p.clone()),
                    None => {
                        log.error("--out requires a path argument");
                        std::process::exit(2);
                    }
                }
            }
            "--min-speedup" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<f64>().ok()) {
                    Some(x) => min_speedup = Some(x),
                    None => {
                        log.error("--min-speedup requires a numeric argument");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                log.error(&format!("unknown argument: {other}"));
                eprintln!("usage: svcbench [smoke] [--out PATH] [--min-speedup X]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let suite = if smoke {
        smoke_suite()
    } else {
        standard_suite()
    };
    log.info(&format!(
        "svcbench: running {} cell(s){}",
        suite.len(),
        if smoke { " (smoke)" } else { "" }
    ));
    let results = run_suite(&suite);
    let doc = report_json(&results);
    let text = doc.render();
    println!("{text}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            log.error(&format!("failed to write {path}: {e}"));
            std::process::exit(1);
        }
        log.info(&format!("svcbench: report written to {path}"));
    }
    if let Some(min) = min_speedup {
        let base = baseline(&results)
            .map(|r| r.req_per_sec)
            .unwrap_or(f64::NAN);
        let speedup = best(&results).map(|r| r.req_per_sec / base).unwrap_or(0.0);
        if speedup.is_nan() || speedup < min {
            log.error(&format!(
                "svcbench: best speedup {speedup:.2}x below required {min:.2}x"
            ));
            std::process::exit(1);
        }
        log.info(&format!(
            "svcbench: best speedup {speedup:.2}x ≥ required {min:.2}x"
        ));
    }
}
