//! Network-model calibration probe (not part of the reproduction output).
//!
//! Replays the figure workload's staging pattern (89 × 100 MB WAN transfers,
//! 20 concurrent) directly against the network engine at several per-flow
//! stream counts, reporting aggregate goodput and peak streams; `netprobe
//! turb` samples the WAN turbulence level over time. Used to calibrate the
//! `StreamModel` defaults documented in DESIGN.md.

use pwm_net::{paper_testbed, FlowSpec, Network, StreamModel};
use pwm_obs::global_logger;
use pwm_sim::SimTime;

fn main() {
    let log = global_logger();
    if std::env::args().nth(1).as_deref() == Some("turb") {
        turbulence_sample();
        return;
    }
    // 20 concurrent flows, replenished to 89 total, varying streams each.
    for streams in [3u32, 4, 5, 8, 10] {
        log.debug(&format!("probing {streams} streams/flow"));
        let (topo, g, _a, n) = paper_testbed();
        let wan = topo
            .links()
            .find(|(_, l)| l.name == "wan-tacc-isi")
            .map(|(id, _)| id)
            .unwrap();
        let mut net = Network::new(topo, StreamModel::default());
        let bytes = 100.0e6;
        let total = 89u64;
        let mut started = 0u64;
        let mut done = 0u64;
        for _ in 0..20 {
            net.start_flow(
                net.now(),
                FlowSpec {
                    src: g,
                    dst: n,
                    bytes,
                    streams,
                    tag: started,
                },
            );
            started += 1;
        }
        let mut last = SimTime::ZERO;
        while done < total {
            let t = net.next_wakeup().expect("wakeup");
            net.advance(t);
            let recs = net.take_completed();
            for r in recs {
                done += 1;
                last = r.completed_at;
                if started < total {
                    net.start_flow(
                        net.now(),
                        FlowSpec {
                            src: g,
                            dst: n,
                            bytes,
                            streams,
                            tag: started,
                        },
                    );
                    started += 1;
                }
            }
        }
        // sample turbulence mid-run via a second pass
        println!(
            "streams/flow {:>2}  total {:>3}  finish {:>8.0}s  peakWAN {}  agg {:.3} MB/s",
            streams,
            streams * 20,
            last.as_secs_f64(),
            net.peak_streams(wan),
            (total as f64 * bytes) / last.as_secs_f64() / 1e6
        );
    }
}

fn turbulence_sample() {
    use pwm_net::{paper_testbed, FlowSpec, Network, StreamModel};
    let (topo, g, _a, n) = paper_testbed();
    let wan = topo
        .links()
        .find(|(_, l)| l.name == "wan-tacc-isi")
        .map(|(id, _)| id)
        .unwrap();
    let mut net = Network::new(topo, StreamModel::default());
    let mut started = 0u64;
    for _ in 0..20 {
        net.start_flow(
            net.now(),
            FlowSpec {
                src: g,
                dst: n,
                bytes: 100.0e6,
                streams: 8,
                tag: started,
            },
        );
        started += 1;
    }
    let mut samples = 0;
    while samples < 40 {
        let t = net.next_wakeup().unwrap();
        net.advance(t);
        for _r in net.take_completed() {
            if started < 89 {
                net.start_flow(
                    net.now(),
                    FlowSpec {
                        src: g,
                        dst: n,
                        bytes: 100.0e6,
                        streams: 8,
                        tag: started,
                    },
                );
                started += 1;
            }
        }
        if net.now().as_secs_f64() > 100.0 {
            println!(
                "t={:>7.1}s streams={} turb={:.3}",
                net.now().as_secs_f64(),
                net.current_streams(wan),
                net.link_turbulence(wan)
            );
            samples += 1;
        }
    }
}
