//! Resilience benchmark — see `pwm_bench::resilience`.
//!
//! ```text
//! resiliencebench [smoke] [--out PATH]
//! ```
//!
//! Sweeps the fault-intensity ladder (calm → rough → turbulent) × two
//! recovery modes (policy-guided, naive retry), running every cell twice
//! to prove per-seed determinism. `smoke` runs the reduced CI scenario.
//! Progress goes to stderr; the machine-readable JSON report is printed to
//! stdout and, with `--out`, also written to PATH (conventionally
//! `BENCH_resilience.json`).
//!
//! Exit is nonzero when any invariant is violated: an incomplete workflow
//! at any swept intensity, a same-seed determinism mismatch, staged bytes
//! differing from one clean copy of every input, or a turbulent-cell
//! policy-guided speedup below the committed floor.

use pwm_bench::resilience::{
    check_invariants, report_json, run_suite, smoke_scenario, standard_scenario,
};
use pwm_obs::global_logger;

fn main() {
    let log = global_logger();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "smoke" => smoke = true,
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(p) => out = Some(p.clone()),
                    None => {
                        log.error("--out requires a path argument");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                log.error(&format!("unknown argument: {other}"));
                eprintln!("usage: resiliencebench [smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let scenario = if smoke {
        smoke_scenario()
    } else {
        standard_scenario()
    };
    log.info(&format!(
        "resiliencebench: scenario {}{}",
        scenario.label,
        if smoke { " (smoke)" } else { "" }
    ));
    let cells = run_suite(&scenario);
    let doc = report_json(&scenario, &cells);
    let text = doc.render();
    println!("{text}");
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, format!("{text}\n")) {
            log.error(&format!("failed to write {path}: {e}"));
            std::process::exit(1);
        }
        log.info(&format!("resiliencebench: report written to {path}"));
    }

    let violations = check_invariants(&scenario, &cells);
    if !violations.is_empty() {
        for v in &violations {
            log.error(&format!("resiliencebench: invariant violated: {v}"));
        }
        std::process::exit(1);
    }
}
