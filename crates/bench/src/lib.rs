//! # pwm-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! * [`table4`] — "Maximum streams for simultaneous transfers", computed
//!   both analytically and through the full Policy Service; both must match
//!   the paper's printed numbers exactly.
//! * [`figures`] — Figures 5–9: augmented-Montage makespans versus default
//!   streams per transfer, across extra-file sizes and greedy thresholds,
//!   with the no-policy comparator.
//! * [`experiment`] — the shared runner (paper testbed topology, 89-staging-
//!   job Montage, staging-job limit 20, retries 5, cleanup on, seeded ≥ 5×).
//! * [`chaos`] — the fault-injection scenario: the same Montage run under
//!   seeded WAN flaps/degradations and policy-service outages, with a
//!   per-fault-class ablation of the makespan inflation.
//! * [`storagebench`] — the makespan-versus-dollar-cost frontier over the
//!   `pwm-storage` backend trio: fixed-backend comparators against
//!   policy-picked (greedy-cheapest / latency-floor / budget-capped)
//!   staging, recorded in `BENCH_storage.json`.
//!
//! Entry points: `cargo run --release -p pwm-bench --bin repro -- all`
//! prints every table/figure; `cargo bench` runs the Criterion benches that
//! regenerate each one.

#![warn(missing_docs)]

pub mod chaos;
pub mod crash;
pub mod experiment;
pub mod figures;
pub mod netbench;
pub mod queuebench;
pub mod resilience;
pub mod storagebench;
pub mod svcbench;
pub mod table4;

pub use chaos::{chaos_ablation, render_ablation, run_chaos, ChaosConfig, ChaosReport, ChaosRow};
pub use crash::{render_crash, run_crash, CrashConfig, CrashReport, CrashRunReport};
pub use experiment::{default_seeds, mb, MontageExperiment, PolicyMode};
pub use figures::{
    fig5, fig6, fig7, fig8, fig9, fig_balanced, point, render as render_figure, render_csv, Figure,
    Series,
};
pub use resilience::{
    check_invariants as resilience_invariants, intensity_ladder, run_suite as run_resiliencebench,
    smoke_scenario as resilience_smoke, speedup_at, standard_scenario as resilience_standard,
    Intensity, ResilienceCell, ResilienceScenario, MIN_TURBULENT_SPEEDUP,
};
pub use storagebench::{
    check_invariants, pareto_frontier, policy_beats_worst_fixed, run_suite as run_storagebench,
    smoke_scenario as storagebench_smoke, standard_scenario as storagebench_standard,
    FrontierPoint, StoragebenchScenario,
};
pub use table4::{render as render_table4, table4_analytic, table4_via_service, Table4Row};
