//! Storage-backend frontier benchmark (`storagebench` bin).
//!
//! Runs one wide staging-heavy workflow against the `pwm-storage` ec2 trio
//! of backends (shared NFS / parallel FS / object store) on a LAN topology
//! where the *backend envelope* — not the WAN — is the bottleneck, and maps
//! the makespan-versus-dollar-cost frontier recorded in
//! `BENCH_storage.json`:
//!
//! * three **fixed-backend** comparators (the policy may only pick the one
//!   registered backend — what a site pinned to each backend would pay);
//! * **policy-picked** runs: greedy-cheapest, latency-floor, and
//!   budget-capped storage selection over all three backends at once.
//!
//! Every run is fully simulated (virtual time, seeded jitter), so the
//! committed report is deterministic and diffable. The figure-shape
//! invariants the CI smoke job enforces with a nonzero exit:
//!
//! * per-run cost accounting is internally consistent (component sums,
//!   metered bytes == staged bytes);
//! * the Pareto frontier is monotone (more dollars only ever buy a shorter
//!   makespan) and spans at least two points;
//! * at least one policy-picked run beats the worst fixed backend on cost
//!   at equal-or-better makespan — the reason the policy family exists.

use pwm_core::{
    InProcessTransport, PolicyConfig, PolicyController, StoragePolicy, DEFAULT_SESSION,
};
use pwm_net::{Network, StreamModel, Topology};
use pwm_obs::{global_logger, JsonValue};
use pwm_storage::{ec2_trio, BackendSpec, StorageCostReport, StorageLayer};
use pwm_workflow::{
    plan, AbstractJob, AbstractWorkflow, ComputeSite, ExecutorConfig, PlannerConfig,
    ReplicaCatalog, StorageRuntime, WorkflowExecutor,
};

/// One storagebench workload: a wide fan of independent staging+compute
/// jobs, every input pulled from a fat-NIC data source on the site LAN.
#[derive(Debug, Clone)]
pub struct StoragebenchScenario {
    /// Scenario name as it appears in `BENCH_storage.json`.
    pub label: String,
    /// Independent compute jobs (each stages one input file).
    pub jobs: usize,
    /// Bytes per staged input file.
    pub file_bytes: u64,
    /// Master seed for runtime jitter and the network RNG.
    pub seed: u64,
}

/// The committed-report scenario: 24 × 64 MB keeps every backend envelope
/// busy (the object store needs 2 multipart chunks per file) while the run
/// stays sub-second in wall clock.
pub fn standard_scenario() -> StoragebenchScenario {
    StoragebenchScenario {
        label: "wide-24x64MB".into(),
        jobs: 24,
        file_bytes: 64_000_000,
        seed: 42,
    }
}

/// The CI smoke scenario: same shape, a third of the work.
pub fn smoke_scenario() -> StoragebenchScenario {
    StoragebenchScenario {
        label: "wide-8x64MB".into(),
        jobs: 8,
        file_bytes: 64_000_000,
        seed: 42,
    }
}

/// One point of the makespan-vs-cost frontier.
#[derive(Debug, Clone)]
pub struct FrontierPoint {
    /// Run label (`fixed-<backend>` or `policy-<strategy>`).
    pub label: String,
    /// True for the pinned single-backend comparators.
    pub fixed: bool,
    /// Virtual makespan, seconds.
    pub makespan_secs: f64,
    /// Total storage dollars of the run.
    pub dollars: f64,
    /// Payload bytes staged.
    pub bytes_staged: f64,
    /// The full cost breakdown.
    pub report: StorageCostReport,
    /// Whether every job completed.
    pub success: bool,
}

/// The budget given to the budget-capped policy run: enough forecast
/// dollars to put roughly half the standard workload on the fast parallel
/// FS before degrading to the cheapest backend.
pub fn half_fleet_budget(s: &StoragebenchScenario, backends: &[BackendSpec]) -> f64 {
    let fastest = backends
        .iter()
        .max_by(|a, b| a.effective_bandwidth().total_cmp(&b.effective_bandwidth()))
        .expect("at least one backend");
    pwm_core::estimated_dollars(fastest, s.file_bytes) * (s.jobs as f64 / 2.0)
}

/// Site LAN topology: a fat-NIC data source and the site storage frontend,
/// directly routed, with the backend trio installed behind the frontend.
/// Every staged flow's bottleneck is the chosen backend's envelope link.
fn build_site(
    backends: &[BackendSpec],
    seed: u64,
) -> (Network, ComputeSite, ReplicaCatalog, StorageLayer) {
    let mut topo = Topology::new();
    let datasrc = topo.add_host("datasrc", 1.0e9);
    let frontend = topo.add_host("site-nfs", 1.0e9);
    let layer = StorageLayer::install(&mut topo, frontend, backends);
    let site = ComputeSite {
        name: "site".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: frontend,
        storage_host_name: "site-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    let network = Network::with_seed(topo, StreamModel::default(), seed);
    let _ = datasrc;
    (network, site, ReplicaCatalog::new(), layer)
}

/// Run one (scenario, backend subset, policy) combination to a frontier
/// point. Fixed-backend comparators register a single profile under
/// greedy-cheapest — with one candidate the policy must pick it.
pub fn run_point(
    s: &StoragebenchScenario,
    label: &str,
    fixed: bool,
    profiles: &[BackendSpec],
    policy: StoragePolicy,
) -> FrontierPoint {
    // The topology always installs the full trio so every run shares one
    // network shape; only the *registered profiles* differ.
    let trio = ec2_trio();
    let (network, site, mut rc, layer) = build_site(&trio, s.seed);
    let datasrc = network.topology().host_by_name("datasrc").expect("datasrc");

    let mut wf = AbstractWorkflow::new("storagebench");
    for i in 0..s.jobs {
        wf.add_job(AbstractJob {
            name: format!("work_{i}"),
            transformation: "work".into(),
            runtime_s: 5.0,
            inputs: vec![format!("in_{i}")],
            outputs: vec![format!("out_{i}")],
        });
        wf.set_file_size(format!("in_{i}"), s.file_bytes);
        wf.set_file_size(format!("out_{i}"), 1_000);
        rc.insert(
            format!("in_{i}"),
            pwm_core::Url::new("gsiftp", "datasrc", format!("/data/in_{i}")),
            datasrc,
        );
    }
    let p = plan(&wf, &site, &rc, &PlannerConfig::default()).expect("plan storagebench workflow");

    let mut config = PolicyConfig::default().with_storage(policy);
    for spec in profiles {
        config = config.with_backend(spec.clone(), &site.storage_host_name);
    }
    let controller = PolicyController::new(config);
    let transport = Box::new(InProcessTransport::new(controller, DEFAULT_SESSION));
    let cfg = ExecutorConfig {
        seed: s.seed,
        storage: Some(StorageRuntime::new(layer)),
        ..ExecutorConfig::default()
    };
    let exec = WorkflowExecutor::new(&p, &site, network, transport, cfg);
    let (stats, _net) = exec.run();
    let report = stats.storage.clone().expect("storage metering attached");
    FrontierPoint {
        label: label.to_string(),
        fixed,
        makespan_secs: stats.makespan_secs(),
        dollars: report.dollars_total,
        bytes_staged: stats.bytes_staged,
        report,
        success: stats.success,
    }
}

/// Run the full frontier for one scenario: the three fixed-backend
/// comparators plus the three policy-picked strategies.
pub fn run_suite(s: &StoragebenchScenario) -> Vec<FrontierPoint> {
    let log = global_logger();
    let trio = ec2_trio();
    let budget = half_fleet_budget(s, &trio);
    let mut points = Vec::new();
    for spec in &trio {
        let label = format!("fixed-{}", spec.name);
        log.info(&format!("storagebench: {} — {}", s.label, label));
        points.push(run_point(
            s,
            &label,
            true,
            std::slice::from_ref(spec),
            StoragePolicy::GreedyCheapest,
        ));
    }
    let policy_runs: Vec<(&str, StoragePolicy)> = vec![
        ("policy-greedy-cheapest", StoragePolicy::GreedyCheapest),
        (
            "policy-latency-floor",
            StoragePolicy::LatencyFloor {
                max_setup_s: 0.01,
                min_bandwidth_bps: 100.0e6,
            },
        ),
        (
            "policy-budget-capped",
            StoragePolicy::BudgetCapped {
                budget_dollars: budget,
            },
        ),
    ];
    for (label, policy) in policy_runs {
        log.info(&format!("storagebench: {} — {}", s.label, label));
        points.push(run_point(s, label, false, &trio, policy));
    }
    for p in &points {
        log.info(&format!(
            "storagebench: {:>22}: makespan {:8.2}s  cost ${:.6}",
            p.label, p.makespan_secs, p.dollars
        ));
    }
    points
}

/// Indices of the Pareto-optimal points (no other point is at least as
/// good on both axes and strictly better on one), sorted by makespan.
pub fn pareto_frontier(points: &[FrontierPoint]) -> Vec<usize> {
    let mut frontier: Vec<usize> = (0..points.len())
        .filter(|&i| {
            !points.iter().enumerate().any(|(j, q)| {
                j != i
                    && q.makespan_secs <= points[i].makespan_secs
                    && q.dollars <= points[i].dollars
                    && (q.makespan_secs < points[i].makespan_secs || q.dollars < points[i].dollars)
            })
        })
        .collect();
    frontier.sort_by(|&a, &b| points[a].makespan_secs.total_cmp(&points[b].makespan_secs));
    frontier
}

/// The figure-shape invariants the smoke job enforces. Returns every
/// violation found (empty = healthy).
pub fn check_invariants(points: &[FrontierPoint]) -> Vec<String> {
    let mut violations = Vec::new();
    let eps = 1e-9;
    for p in points {
        if !p.success {
            violations.push(format!("{}: run failed", p.label));
        }
        let row_sum: f64 = p.report.backends.iter().map(|b| b.dollars_total).sum();
        if (row_sum - p.report.dollars_total).abs() > eps {
            violations.push(format!(
                "{}: backend rows sum to ${row_sum} but dollars_total is ${}",
                p.label, p.report.dollars_total
            ));
        }
        for b in &p.report.backends {
            let parts = b.dollars_resident + b.dollars_requests + b.dollars_egress;
            if (parts - b.dollars_total).abs() > eps {
                violations.push(format!(
                    "{}/{}: components sum to ${parts} but dollars_total is ${}",
                    p.label, b.backend, b.dollars_total
                ));
            }
        }
        let metered: f64 = p.report.backends.iter().map(|b| b.bytes_put).sum();
        if (metered - p.bytes_staged).abs() > 1.0 {
            violations.push(format!(
                "{}: metered {metered} bytes but staged {}",
                p.label, p.bytes_staged
            ));
        }
    }
    let frontier = pareto_frontier(points);
    if frontier.len() < 2 {
        violations.push(format!(
            "frontier has {} point(s); expected a real makespan/cost trade-off",
            frontier.len()
        ));
    }
    for w in frontier.windows(2) {
        let (a, b) = (&points[w[0]], &points[w[1]]);
        if b.dollars > a.dollars + eps {
            violations.push(format!(
                "frontier not monotone: {} (${}) precedes {} (${}) at longer makespan",
                a.label, a.dollars, b.label, b.dollars
            ));
        }
    }
    if !policy_beats_worst_fixed(points) {
        violations.push(
            "no policy-picked run beats the worst fixed backend on cost at \
             equal-or-better makespan"
                .into(),
        );
    }
    violations
}

/// True when some policy-picked run is strictly cheaper than the
/// costliest fixed backend without being slower.
pub fn policy_beats_worst_fixed(points: &[FrontierPoint]) -> bool {
    let Some(worst) = points
        .iter()
        .filter(|p| p.fixed)
        .max_by(|a, b| a.dollars.total_cmp(&b.dollars))
    else {
        return false;
    };
    points
        .iter()
        .any(|p| !p.fixed && p.dollars < worst.dollars && p.makespan_secs <= worst.makespan_secs)
}

fn point_json(p: &FrontierPoint, on_frontier: bool) -> JsonValue {
    let backends = p
        .report
        .backends
        .iter()
        .filter(|b| b.bytes_put > 0.0)
        .map(|b| {
            JsonValue::Obj(vec![
                ("backend".into(), JsonValue::Str(b.backend.clone())),
                ("bytes_put".into(), JsonValue::Float(b.bytes_put)),
                ("put_requests".into(), JsonValue::Int(b.put_requests as i64)),
                ("gb_hours".into(), JsonValue::Float(b.gb_hours)),
                (
                    "dollars_resident".into(),
                    JsonValue::Float(b.dollars_resident),
                ),
                (
                    "dollars_requests".into(),
                    JsonValue::Float(b.dollars_requests),
                ),
                ("dollars_egress".into(), JsonValue::Float(b.dollars_egress)),
                ("dollars_total".into(), JsonValue::Float(b.dollars_total)),
            ])
        })
        .collect();
    JsonValue::Obj(vec![
        ("label".into(), JsonValue::Str(p.label.clone())),
        ("fixed_backend".into(), JsonValue::Bool(p.fixed)),
        ("makespan_secs".into(), JsonValue::Float(p.makespan_secs)),
        ("dollars_total".into(), JsonValue::Float(p.dollars)),
        ("bytes_staged".into(), JsonValue::Float(p.bytes_staged)),
        ("on_frontier".into(), JsonValue::Bool(on_frontier)),
        ("backends".into(), JsonValue::Arr(backends)),
    ])
}

/// Render a result set as the `BENCH_storage.json` document.
pub fn report_json(s: &StoragebenchScenario, points: &[FrontierPoint]) -> JsonValue {
    let frontier = pareto_frontier(points);
    JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("storagebench".into())),
        (
            "units".into(),
            JsonValue::Str(
                "makespan_secs: virtual seconds; dollars_total: storage cost \
                 (residency + requests + egress)"
                    .into(),
            ),
        ),
        ("scenario".into(), JsonValue::Str(s.label.clone())),
        ("jobs".into(), JsonValue::Int(s.jobs as i64)),
        ("file_bytes".into(), JsonValue::Int(s.file_bytes as i64)),
        ("seed".into(), JsonValue::Int(s.seed as i64)),
        (
            "frontier".into(),
            JsonValue::Arr(
                frontier
                    .iter()
                    .map(|&i| JsonValue::Str(points[i].label.clone()))
                    .collect(),
            ),
        ),
        (
            "policy_beats_worst_fixed".into(),
            JsonValue::Bool(policy_beats_worst_fixed(points)),
        ),
        (
            "points".into(),
            JsonValue::Arr(
                points
                    .iter()
                    .enumerate()
                    .map(|(i, p)| point_json(p, frontier.contains(&i)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic(label: &str, fixed: bool, makespan: f64, dollars: f64) -> FrontierPoint {
        FrontierPoint {
            label: label.into(),
            fixed,
            makespan_secs: makespan,
            dollars,
            bytes_staged: 0.0,
            report: StorageCostReport::default(),
            success: true,
        }
    }

    #[test]
    fn pareto_frontier_drops_dominated_points() {
        let points = vec![
            synthetic("slow-cheap", true, 100.0, 1.0),
            synthetic("fast-pricey", true, 10.0, 50.0),
            synthetic("dominated", true, 120.0, 60.0),
            synthetic("mid", false, 50.0, 5.0),
        ];
        let f = pareto_frontier(&points);
        let labels: Vec<&str> = f.iter().map(|&i| points[i].label.as_str()).collect();
        assert_eq!(labels, vec!["fast-pricey", "mid", "slow-cheap"]);
    }

    #[test]
    fn policy_beats_worst_fixed_needs_both_axes() {
        let worst = synthetic("fixed-obj", true, 50.0, 10.0);
        // Cheaper but slower: no.
        assert!(!policy_beats_worst_fixed(&[
            worst.clone(),
            synthetic("policy", false, 60.0, 1.0),
        ]));
        // Cheaper and faster: yes.
        assert!(policy_beats_worst_fixed(&[
            worst,
            synthetic("policy", false, 40.0, 1.0),
        ]));
    }

    #[test]
    fn smoke_suite_has_figure_shape() {
        // The real end-to-end frontier at smoke scale: three fixed
        // comparators, three policy runs, every invariant green.
        let s = smoke_scenario();
        let points = run_suite(&s);
        assert_eq!(points.len(), 6);
        assert_eq!(points.iter().filter(|p| p.fixed).count(), 3);
        let violations = check_invariants(&points);
        assert!(violations.is_empty(), "invariants violated: {violations:?}");

        let by_label = |l: &str| points.iter().find(|p| p.label == l).unwrap();
        let nfs = by_label("fixed-nfs-std");
        let pfs = by_label("fixed-pfs-lustre");
        let obj = by_label("fixed-obj-s3");
        // Envelope ordering: the parallel FS is the fastest fixed choice,
        // the shared NFS the slowest; the object store pays real dollars.
        assert!(pfs.makespan_secs < obj.makespan_secs);
        assert!(obj.makespan_secs < nfs.makespan_secs);
        assert!(obj.dollars > 100.0 * nfs.dollars.max(f64::MIN_POSITIVE));
        // Greedy-cheapest lands on the cheapest fixed point's backend.
        let greedy = by_label("policy-greedy-cheapest");
        assert!((greedy.dollars - nfs.dollars).abs() / nfs.dollars < 0.5);
        // The latency-floor run concentrates on the parallel FS: as fast
        // as the fixed-pfs comparator, orders cheaper than the object
        // store.
        let floor = by_label("policy-latency-floor");
        assert!((floor.makespan_secs - pfs.makespan_secs).abs() < 1.0);
        assert!(floor.dollars < obj.dollars / 10.0);

        let doc = report_json(&s, &points);
        let parsed = JsonValue::parse(&doc.render()).expect("storagebench JSON parses");
        assert_eq!(
            parsed
                .get("policy_beats_worst_fixed")
                .and_then(|v| v.as_bool()),
            Some(true)
        );
    }

    #[test]
    fn suite_is_deterministic_given_seed() {
        let s = smoke_scenario();
        let a = run_suite(&s);
        let b = run_suite(&s);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.makespan_secs, y.makespan_secs);
            assert_eq!(x.dollars, y.dollars);
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn committed_report_matches_figure_shape() {
        // BENCH_storage.json is a committed artifact; its shape must stay
        // consistent with what this module generates and asserts.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_storage.json");
        let text = std::fs::read_to_string(path).expect("committed BENCH_storage.json");
        let doc = JsonValue::parse(&text).expect("committed report parses");
        let points = doc.get("points").and_then(|p| p.as_arr()).expect("points");
        let fixed = points
            .iter()
            .filter(|p| p.get("fixed_backend").and_then(|v| v.as_bool()) == Some(true))
            .count();
        assert!(fixed >= 3, "frontier must span at least 3 fixed backends");
        assert!(
            points.len() > fixed,
            "report must include policy-picked runs"
        );
        assert_eq!(
            doc.get("policy_beats_worst_fixed")
                .and_then(|v| v.as_bool()),
            Some(true),
            "committed run must show the policy win"
        );
        let frontier = doc
            .get("frontier")
            .and_then(|f| f.as_arr())
            .expect("frontier");
        assert!(frontier.len() >= 2, "committed frontier must trade off");
    }
}
