//! Resilience benchmark (`resiliencebench` bin): end-to-end failure
//! domains under policy-guided versus naive-retry recovery.
//!
//! One staging-heavy workflow runs against the `pwm-storage` ec2 trio while
//! a deterministic fault plan lands all three failure domains at once:
//!
//! * the preferred data source **crashes** mid-staging (its flows are
//!   killed and its access link goes physically down until restart);
//! * the cheapest storage backend suffers an **outage window** (its access
//!   link goes down for the window);
//! * reads from the preferred source suffer seeded **silent corruption**
//!   surfaced by the transfer tool's completion checksum.
//!
//! Every fault is *physically identical* in both recovery modes — same
//! link-fault windows, same crash schedule, same corruption draws. The only
//! difference is what the executor does about it:
//!
//! * **policy-guided** (`report_health = true`) — health events flow to the
//!   Policy Service, whose recovery facts steer the next advice batch:
//!   quarantined / down sources are suppressed (the executor fails over to
//!   a mirror replica), down backends leave the placement candidates.
//! * **naive** (`report_health = false`) — classic retry-with-backoff
//!   against the original plan; stalled flows wait out the fault windows.
//!
//! The sweep runs a fault-intensity ladder (calm → rough → turbulent) ×
//! both modes, each cell twice to prove per-seed determinism, and records
//! `BENCH_resilience.json`. Invariants enforced by the CI smoke job:
//!
//! * every run completes at every intensity (`success`), staging exactly
//!   one clean copy of every input byte;
//! * same-seed runs are bit-identical (`RunStats` equality);
//! * in the turbulent cell, policy-guided recovery beats naive retry on
//!   makespan by at least [`MIN_TURBULENT_SPEEDUP`].

use pwm_core::{
    InProcessTransport, PolicyConfig, PolicyController, StoragePolicy, Url, DEFAULT_SESSION,
};
use pwm_net::fault::{LinkFault, LinkFaultKind};
use pwm_net::{Network, StreamModel, Topology};
use pwm_obs::{global_logger, JsonValue};
use pwm_sim::{FaultPlan, SimDuration, SimTime};
use pwm_storage::{ec2_trio, CorruptionModel, StorageLayer};
use pwm_workflow::{
    plan, AbstractJob, AbstractWorkflow, BackendOutage, ComputeSite, CrashTarget, ExecutorConfig,
    HostCrash, PlannerConfig, RecoveryConfig, ReplicaCatalog, RunStats, StorageRuntime,
    WorkflowExecutor,
};

/// Makespan ratio (naive / guided) the turbulent cell must reach — the
/// headline claim the committed report asserts.
pub const MIN_TURBULENT_SPEEDUP: f64 = 1.2;

/// The backend the outage window takes down (the greedy-cheapest pick, so
/// naive placement funnels straight into the fault).
pub const OUTAGE_BACKEND: &str = "nfs-std";

/// One resiliencebench workload: a wide fan of staging+compute jobs whose
/// inputs live on a deliberately slow preferred source with a fast mirror.
#[derive(Debug, Clone)]
pub struct ResilienceScenario {
    /// Scenario name as it appears in `BENCH_resilience.json`.
    pub label: String,
    /// Independent compute jobs (each stages one input file).
    pub jobs: usize,
    /// Bytes per staged input file.
    pub file_bytes: u64,
    /// Master seed (runtime jitter, network RNG, corruption draws).
    pub seed: u64,
}

/// The committed-report scenario: 16 × 24 MB over a 12.5 MB/s source NIC
/// keeps staging alive past every fault-window start.
pub fn standard_scenario() -> ResilienceScenario {
    ResilienceScenario {
        label: "wide-16x24MB".into(),
        jobs: 16,
        file_bytes: 24_000_000,
        seed: 42,
    }
}

/// The CI smoke scenario: same shape, half the jobs.
pub fn smoke_scenario() -> ResilienceScenario {
    ResilienceScenario {
        label: "wide-8x24MB".into(),
        jobs: 8,
        file_bytes: 24_000_000,
        seed: 42,
    }
}

/// One rung of the fault-intensity ladder.
#[derive(Debug, Clone)]
pub struct Intensity {
    /// Rung name (`calm`, `rough`, `turbulent`).
    pub name: &'static str,
    /// Source-host crash window (start, downtime), if any.
    pub crash: Option<(SimTime, SimDuration)>,
    /// [`OUTAGE_BACKEND`] outage window (start, duration), if any.
    pub outage: Option<(SimTime, SimDuration)>,
    /// Per-read silent-corruption probability on the preferred source.
    pub corruption_prob: f64,
}

/// The swept ladder. Fault windows start a few seconds in — staging is
/// still running then for both the standard and the smoke scenario.
pub fn intensity_ladder() -> Vec<Intensity> {
    vec![
        Intensity {
            name: "calm",
            crash: None,
            outage: None,
            corruption_prob: 0.0,
        },
        Intensity {
            name: "rough",
            crash: Some((SimTime::from_secs(5), SimDuration::from_secs(90))),
            outage: None,
            corruption_prob: 0.25,
        },
        Intensity {
            name: "turbulent",
            crash: Some((SimTime::from_secs(5), SimDuration::from_secs(150))),
            outage: Some((SimTime::from_secs(4), SimDuration::from_secs(120))),
            corruption_prob: 0.5,
        },
    ]
}

/// One (intensity, mode) cell of the sweep.
#[derive(Debug, Clone)]
pub struct ResilienceCell {
    /// Intensity rung name.
    pub intensity: String,
    /// True for policy-guided recovery, false for naive retry.
    pub guided: bool,
    /// The run's statistics (including the recovery report).
    pub stats: RunStats,
    /// Whether the same-seed re-run reproduced the stats bit-for-bit.
    pub deterministic: bool,
}

impl ResilienceCell {
    /// Mode label as it appears in the report.
    pub fn mode(&self) -> &'static str {
        if self.guided {
            "policy-guided"
        } else {
            "naive-retry"
        }
    }
}

/// Run one cell once. Everything physical — topology, fault windows,
/// corruption draws — is identical across modes; only `report_health`
/// differs.
pub fn run_cell(s: &ResilienceScenario, it: &Intensity, guided: bool) -> RunStats {
    let trio = ec2_trio();
    let mut topo = Topology::new();
    // The preferred source is the slow path; the mirror is 4× faster, so
    // failing over is worth it even without a fault.
    let datasrc = topo.add_host("datasrc", 12.5e6);
    let mirror = topo.add_host("mirrorsrc", 50.0e6);
    let frontend = topo.add_host("site-nfs", 1.0e9);
    let layer = StorageLayer::install(&mut topo, frontend, &trio);
    let datasrc_link = topo.host(datasrc).access_link;
    let outage_backend = layer.backend(OUTAGE_BACKEND).expect("trio backend");
    let outage_link = topo.host(outage_backend.host).access_link;
    let outage_host = outage_backend.host;

    // Physical fault plan: identical in both modes.
    let mut faults = FaultPlan::new();
    if let Some((at, downtime)) = it.crash {
        faults.add(
            at,
            downtime,
            LinkFault {
                link: datasrc_link,
                kind: LinkFaultKind::Down,
            },
        );
    }
    if let Some((from, duration)) = it.outage {
        faults.add(
            from,
            duration,
            LinkFault {
                link: outage_link,
                kind: LinkFaultKind::Down,
            },
        );
    }
    let mut network = Network::with_seed(topo, StreamModel::default(), s.seed);
    network.set_fault_plan(faults);

    let site = ComputeSite {
        name: "site".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: frontend,
        storage_host_name: "site-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    let mut wf = AbstractWorkflow::new("resilience");
    let mut rc = ReplicaCatalog::new();
    for i in 0..s.jobs {
        wf.add_job(AbstractJob {
            name: format!("work_{i}"),
            transformation: "work".into(),
            runtime_s: 5.0,
            inputs: vec![format!("in_{i}")],
            outputs: vec![format!("out_{i}")],
        });
        wf.set_file_size(format!("in_{i}"), s.file_bytes);
        wf.set_file_size(format!("out_{i}"), 1_000);
        // Preferred replica first (planning uses it), mirror second
        // (failover walks the rest).
        rc.insert(
            format!("in_{i}"),
            Url::new("gsiftp", "datasrc", format!("/data/in_{i}")),
            datasrc,
        );
        rc.insert(
            format!("in_{i}"),
            Url::new("http", "mirrorsrc", format!("/mirror/in_{i}")),
            mirror,
        );
    }
    let p = plan(&wf, &site, &rc, &PlannerConfig::default()).expect("plan resilience workflow");

    let mut policy = PolicyConfig::default().with_storage(StoragePolicy::GreedyCheapest);
    for spec in &trio {
        policy = policy.with_backend(spec.clone(), &site.storage_host_name);
    }
    let controller = PolicyController::new(policy);
    let transport = Box::new(InProcessTransport::new(controller, DEFAULT_SESSION));

    let mut recovery = RecoveryConfig {
        report_health: guided,
        ..RecoveryConfig::default()
    };
    recovery.replicas = rc;
    recovery.corruption = CorruptionModel::new(s.seed);
    if it.corruption_prob > 0.0 {
        recovery
            .corruption
            .set_host_prob("datasrc", it.corruption_prob);
    }
    if let Some((at, downtime)) = it.crash {
        recovery.crashes.push(HostCrash {
            target: CrashTarget::Host {
                host: datasrc,
                name: "datasrc".into(),
            },
            at,
            restart_after: downtime,
        });
    }
    if let Some((from, duration)) = it.outage {
        recovery.backend_outages.push(BackendOutage {
            backend: OUTAGE_BACKEND.into(),
            host: outage_host,
            from,
            duration,
        });
    }

    let cfg = ExecutorConfig {
        seed: s.seed,
        storage: Some(StorageRuntime::new(layer)),
        recovery: Some(recovery),
        ..ExecutorConfig::default()
    };
    let exec = WorkflowExecutor::new(&p, &site, network, transport, cfg);
    let (stats, _net) = exec.run();
    stats
}

/// Run the full sweep: every intensity × both modes, each cell twice for
/// the determinism check.
pub fn run_suite(s: &ResilienceScenario) -> Vec<ResilienceCell> {
    let log = global_logger();
    let mut cells = Vec::new();
    for it in intensity_ladder() {
        for guided in [true, false] {
            let mode = if guided {
                "policy-guided"
            } else {
                "naive-retry"
            };
            log.info(&format!(
                "resiliencebench: {} — {}/{}",
                s.label, it.name, mode
            ));
            let first = run_cell(s, &it, guided);
            let second = run_cell(s, &it, guided);
            let deterministic = first == second;
            log.info(&format!(
                "resiliencebench: {:>9}/{:<13} makespan {:8.2}s  success {}  deterministic {}",
                it.name,
                mode,
                first.makespan_secs(),
                first.success,
                deterministic
            ));
            cells.push(ResilienceCell {
                intensity: it.name.into(),
                guided,
                stats: first,
                deterministic,
            });
        }
    }
    cells
}

/// Makespan speedup (naive / guided) at one intensity; `None` when either
/// cell is missing.
pub fn speedup_at(cells: &[ResilienceCell], intensity: &str) -> Option<f64> {
    let find = |guided: bool| {
        cells
            .iter()
            .find(|c| c.intensity == intensity && c.guided == guided)
            .map(|c| c.stats.makespan_secs())
    };
    let guided = find(true)?;
    let naive = find(false)?;
    (guided > 0.0).then(|| naive / guided)
}

/// Check every committed-report invariant; returns human-readable
/// violations (empty ⇒ the report is sound).
pub fn check_invariants(s: &ResilienceScenario, cells: &[ResilienceCell]) -> Vec<String> {
    let mut violations = Vec::new();
    let expected_bytes = (s.jobs as u64 * s.file_bytes) as f64;
    for c in cells {
        let tag = format!("{}/{}", c.intensity, c.mode());
        if !c.stats.success {
            violations.push(format!("{tag}: workflow did not complete"));
        }
        if !c.deterministic {
            violations.push(format!("{tag}: same-seed re-run diverged"));
        }
        // Byte-correctness: exactly one clean copy of every input was
        // accepted — corrupt reads never count toward staged bytes.
        if (c.stats.bytes_staged - expected_bytes).abs() > 0.5 {
            violations.push(format!(
                "{tag}: staged {} bytes, expected exactly {expected_bytes}",
                c.stats.bytes_staged
            ));
        }
    }
    match speedup_at(cells, "turbulent") {
        Some(ratio) if ratio >= MIN_TURBULENT_SPEEDUP => {}
        Some(ratio) => violations.push(format!(
            "turbulent: policy-guided speedup {ratio:.2}x below the {MIN_TURBULENT_SPEEDUP}x floor"
        )),
        None => violations.push("turbulent: missing guided or naive cell".into()),
    }
    violations
}

fn cell_json(c: &ResilienceCell) -> JsonValue {
    let rec = c.stats.recovery.clone().unwrap_or_default();
    JsonValue::Obj(vec![
        ("intensity".into(), JsonValue::Str(c.intensity.clone())),
        ("mode".into(), JsonValue::Str(c.mode().into())),
        (
            "makespan_secs".into(),
            JsonValue::Float(c.stats.makespan_secs()),
        ),
        ("success".into(), JsonValue::Bool(c.stats.success)),
        ("deterministic".into(), JsonValue::Bool(c.deterministic)),
        (
            "bytes_staged".into(),
            JsonValue::Float(c.stats.bytes_staged),
        ),
        (
            "transfer_retries".into(),
            JsonValue::Int(c.stats.transfer_retries as i64),
        ),
        (
            "recovery".into(),
            JsonValue::Obj(vec![
                (
                    "host_crashes".into(),
                    JsonValue::Int(rec.host_crashes as i64),
                ),
                (
                    "flows_killed".into(),
                    JsonValue::Int(rec.flows_killed as i64),
                ),
                (
                    "backend_outages".into(),
                    JsonValue::Int(rec.backend_outages as i64),
                ),
                (
                    "corrupt_reads".into(),
                    JsonValue::Int(rec.corrupt_reads as i64),
                ),
                ("quarantines".into(), JsonValue::Int(rec.quarantines as i64)),
                (
                    "replica_failovers".into(),
                    JsonValue::Int(rec.replica_failovers as i64),
                ),
                (
                    "producer_reruns".into(),
                    JsonValue::Int(rec.producer_reruns as i64),
                ),
                (
                    "health_reports".into(),
                    JsonValue::Int(rec.health_reports as i64),
                ),
                (
                    "waits_for_restart".into(),
                    JsonValue::Int(rec.waits_for_restart as i64),
                ),
            ]),
        ),
    ])
}

/// Render a result set as the `BENCH_resilience.json` document.
pub fn report_json(s: &ResilienceScenario, cells: &[ResilienceCell]) -> JsonValue {
    let speedups: Vec<JsonValue> = intensity_ladder()
        .iter()
        .filter_map(|it| {
            speedup_at(cells, it.name).map(|ratio| {
                JsonValue::Obj(vec![
                    ("intensity".into(), JsonValue::Str(it.name.into())),
                    ("naive_over_guided".into(), JsonValue::Float(ratio)),
                ])
            })
        })
        .collect();
    JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("resiliencebench".into())),
        (
            "units".into(),
            JsonValue::Str(
                "makespan_secs: virtual seconds; speedup: naive-retry makespan / \
                 policy-guided makespan at the same fault intensity"
                    .into(),
            ),
        ),
        ("scenario".into(), JsonValue::Str(s.label.clone())),
        ("jobs".into(), JsonValue::Int(s.jobs as i64)),
        ("file_bytes".into(), JsonValue::Int(s.file_bytes as i64)),
        ("seed".into(), JsonValue::Int(s.seed as i64)),
        (
            "min_turbulent_speedup".into(),
            JsonValue::Float(MIN_TURBULENT_SPEEDUP),
        ),
        ("speedups".into(), JsonValue::Arr(speedups)),
        (
            "cells".into(),
            JsonValue::Arr(cells.iter().map(cell_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ResilienceScenario {
        ResilienceScenario {
            label: "tiny-4x6MB".into(),
            jobs: 4,
            file_bytes: 6_000_000,
            seed: 9,
        }
    }

    #[test]
    fn calm_cell_modes_are_identical() {
        let s = tiny();
        let calm = &intensity_ladder()[0];
        let guided = run_cell(&s, calm, true);
        let naive = run_cell(&s, calm, false);
        assert!(guided.success && naive.success);
        // No faults ⇒ the recovery plane is inert in both modes and the
        // runs are the same run.
        assert_eq!(guided, naive);
        assert!(guided.recovery.is_none());
    }

    #[test]
    fn turbulent_guided_beats_naive_and_both_complete() {
        let s = tiny();
        let turbulent = intensity_ladder()
            .into_iter()
            .find(|i| i.name == "turbulent")
            .unwrap();
        let guided = run_cell(&s, &turbulent, true);
        let naive = run_cell(&s, &turbulent, false);
        assert!(guided.success, "guided run must complete");
        assert!(naive.success, "naive run must complete");
        let rec = guided.recovery.as_ref().expect("guided recovery report");
        assert!(rec.host_crashes == 1 && rec.backend_outages == 1);
        assert!(
            rec.replica_failovers > 0 || rec.waits_for_restart > 0,
            "guided recovery must have re-planned"
        );
        assert!(
            naive.makespan_secs() / guided.makespan_secs() >= MIN_TURBULENT_SPEEDUP,
            "guided {:.1}s vs naive {:.1}s",
            guided.makespan_secs(),
            naive.makespan_secs()
        );
    }

    #[test]
    fn invariants_pass_on_a_sound_synthetic_sweep() {
        let s = tiny();
        let stats_with = |makespan: f64| {
            let mut st = run_cell(&s, &intensity_ladder()[0], true);
            st.makespan = pwm_sim::SimDuration::from_secs_f64(makespan);
            st
        };
        let mk = |intensity: &str, guided: bool, makespan: f64| ResilienceCell {
            intensity: intensity.into(),
            guided,
            stats: stats_with(makespan),
            deterministic: true,
        };
        let cells = vec![
            mk("calm", true, 30.0),
            mk("calm", false, 30.0),
            mk("turbulent", true, 40.0),
            mk("turbulent", false, 90.0),
        ];
        assert!(check_invariants(&s, &cells).is_empty());
        assert!((speedup_at(&cells, "turbulent").unwrap() - 2.25).abs() < 1e-9);

        // Break the speedup floor and the determinism bit.
        let mut bad = cells.clone();
        bad[2].stats.makespan = pwm_sim::SimDuration::from_secs(89);
        bad[3].deterministic = false;
        let violations = check_invariants(&s, &bad);
        assert!(violations.iter().any(|v| v.contains("speedup")));
        assert!(violations.iter().any(|v| v.contains("diverged")));
    }
}
