//! Allocator throughput benchmark (`netbench` bin).
//!
//! Drives `pwm-net` end-to-end — flow churn, setup, rate recomputation,
//! completion — at 100 / 1 000 / 10 000 concurrent flows and measures how
//! many simulator events and rate recomputations per wall-clock second the
//! engine sustains, once with the incremental component-local allocator
//! (the default) and once with the pre-change full-recompute path
//! (`Network::set_full_recompute`). The ratio between the two is the
//! headline number recorded in `BENCH_net.json`; DESIGN.md §8 explains how
//! to read it.
//!
//! Scenarios:
//!
//! * `clustered-clean-*` — many disjoint host-pair clusters (the grouped
//!   transfer pattern of the paper's testbed and of multi-workflow runs)
//!   with turbulence, weight jitter, and slow-start disabled so the only
//!   recompute triggers are membership changes. This is the best case for
//!   component locality and the scenario the ≥5× acceptance bar is set on.
//!   The 100k-flow size sets `steps_full: 0`: a single full recompute at
//!   that scale walks every flow × every link (~10⁹ link-touches per
//!   event), so the baseline run would take hours for a number that the
//!   smaller sizes already extrapolate. Its report carries
//!   `full_baseline_skipped: true` with `null` for the `full_recompute`
//!   block and both speedups (not-measured, distinct from measured-as-
//!   zero); the acceptance bar there is the *absolute* incremental
//!   `events_per_sec` (≥1M), not a ratio.
//! * `clustered-turbulent-1k` — same topology with the default stream
//!   model: turbulence keeps every active cluster dirty between refreshes,
//!   so the gain shrinks to the allocator-level improvements (decremental
//!   link weights, scratch reuse, cached routes).
//! * `shared-backbone-1k` — every flow crosses one backbone link, forming a
//!   single connected component: the honest worst case where incremental
//!   degenerates to a (faster) full recompute.

use pwm_net::{AllocStats, FlowSpec, HostId, Network, StreamModel, Topology, TransferRecord};
use pwm_obs::{global_logger, JsonValue};
use pwm_sim::{QueueKind, SimDuration, SimTime};
use std::time::Instant;

/// One benchmark configuration: a topology shape plus per-mode step budgets.
#[derive(Debug, Clone)]
pub struct NetbenchScenario {
    /// Scenario name as it appears in `BENCH_net.json`.
    pub label: String,
    /// Number of disjoint host-pair clusters.
    pub clusters: usize,
    /// Concurrent flows per cluster (kept constant by churn).
    pub flows_per_cluster: usize,
    /// Route every cluster over one shared backbone link (single component).
    pub shared_backbone: bool,
    /// Use the default (turbulent, jittered, ramping) stream model instead
    /// of the clean one.
    pub turbulent: bool,
    /// Simulator events to measure in incremental mode.
    pub steps_incremental: u64,
    /// Simulator events to measure in full-recompute mode (smaller: each
    /// event costs O(flows × links) there). `0` skips the baseline run
    /// entirely — used at 100k flows, where one full recompute is already
    /// minutes of wall clock — and reports zeroed full-mode numbers.
    pub steps_full: u64,
    /// Seed for the network RNG and the workload generator.
    pub seed: u64,
    /// Pending-event structure the engine runs on. Rows are emitted per
    /// queue so `BENCH_net.json` records the heap/ladder head-to-head
    /// instead of overwriting history.
    pub queue: QueueKind,
}

impl NetbenchScenario {
    /// Total concurrent flows the scenario sustains.
    pub fn flows(&self) -> usize {
        self.clusters * self.flows_per_cluster
    }
}

/// The standard suite: the three clustered-clean sizes the acceptance bar
/// quotes, plus the turbulent and shared-backbone honesty checks.
pub fn standard_suite() -> Vec<NetbenchScenario> {
    let base = |label: &str, clusters: usize, si: u64, sf: u64| NetbenchScenario {
        label: label.to_string(),
        clusters,
        flows_per_cluster: 10,
        shared_backbone: false,
        turbulent: false,
        steps_incremental: si,
        steps_full: sf,
        seed: 42,
        queue: QueueKind::Ladder,
    };
    // Heap twin of a ladder row: incremental only (`steps_full: 0`) — the
    // full-recompute baseline measures the allocator, not the queue, so
    // running it once per label (on the ladder row) keeps the suite's cost
    // flat while the incremental head-to-head is recorded per queue.
    let heap_twin = |s: &NetbenchScenario| NetbenchScenario {
        queue: QueueKind::Heap,
        steps_full: 0,
        ..s.clone()
    };
    let mut suite = vec![
        base("clustered-clean-100", 10, 4000, 2000),
        base("clustered-clean-1k", 100, 4000, 500),
        base("clustered-clean-10k", 1000, 1500, 40),
        // steps_full = 0: the full baseline is skipped at this size (see
        // module docs); the bar is absolute incremental events/s. Pair
        // clusters (2 flows each): the 100k row stresses engine scale —
        // queue population, SoA column width, id-map depth — while the
        // 10-flow sizes above keep measuring component recompute cost.
        NetbenchScenario {
            flows_per_cluster: 2,
            ..base("clustered-clean-100k", 50_000, 2_000_000, 0)
        },
        NetbenchScenario {
            turbulent: true,
            ..base("clustered-turbulent-1k", 100, 1500, 300)
        },
        NetbenchScenario {
            shared_backbone: true,
            ..base("shared-backbone-1k", 100, 400, 300)
        },
    ];
    let twins: Vec<NetbenchScenario> = suite.iter().map(heap_twin).collect();
    suite.extend(twins);
    suite
}

/// The CI smoke configuration: the 1k-flow clustered-clean scenario with
/// reduced step budgets so the job finishes in seconds.
pub fn smoke_suite() -> Vec<NetbenchScenario> {
    let ladder = NetbenchScenario {
        label: "clustered-clean-1k".to_string(),
        clusters: 100,
        flows_per_cluster: 10,
        shared_backbone: false,
        turbulent: false,
        steps_incremental: 1500,
        steps_full: 200,
        seed: 42,
        queue: QueueKind::Ladder,
    };
    let heap = NetbenchScenario {
        queue: QueueKind::Heap,
        steps_full: 0,
        ..ladder.clone()
    };
    vec![ladder, heap]
}

/// What one (scenario, mode) run measured.
#[derive(Debug, Clone, Copy)]
pub struct ModeResult {
    /// Simulator events processed inside the timed window.
    pub events: u64,
    /// Transfer completions (and thus replacement starts) in the window.
    pub completions: u64,
    /// Wall-clock seconds for the window.
    pub wall_secs: f64,
    /// Events per wall-clock second.
    pub events_per_sec: f64,
    /// Rate recomputations per wall-clock second — the headline throughput.
    pub recomputes_per_sec: f64,
    /// Allocator counters accumulated inside the window.
    pub stats: AllocStats,
}

impl ModeResult {
    /// The all-zero result recorded for a mode whose run was skipped
    /// (`steps_full == 0`).
    pub fn skipped() -> Self {
        ModeResult {
            events: 0,
            completions: 0,
            wall_secs: 0.0,
            events_per_sec: 0.0,
            recomputes_per_sec: 0.0,
            stats: AllocStats::default(),
        }
    }
}

/// True when rate-write suppression is healthy for a measured window: at
/// most ~1 unchanged rate write per event (plus a small absolute slack).
/// The irreducible residual is structural to component-granularity
/// recomputation — a membership change legitimately re-runs max-min over
/// the whole component, and the component's cap-pinned neighbours
/// reproduce their old rates bit-exactly — so it scales with events, not
/// with flows allocated.
///
/// Before cap-bound gating, the turbulent scenario failed this by three
/// orders of magnitude: every refresh dirtied every ramping flow's links
/// even while the flow was link-limited, producing 1.5M unchanged writes
/// (~1 000 per event) in a 1 500-event window; the residual today is
/// ~0.4 per event. The `netbench` binary enforces this predicate on every
/// turbulent scenario it runs.
pub fn write_suppression_ok(m: &ModeResult) -> bool {
    m.stats.unchanged_writes <= m.events + 32
}

/// Both modes of one scenario plus the derived speedups.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// The configuration that produced this report.
    pub scenario: NetbenchScenario,
    /// The pre-change full-recompute baseline.
    pub full: ModeResult,
    /// The incremental component-local engine.
    pub incremental: ModeResult,
    /// `incremental.events_per_sec / full.events_per_sec`.
    pub speedup_events: f64,
    /// `incremental.recomputes_per_sec / full.recomputes_per_sec`.
    pub speedup_recomputes: f64,
}

/// Deterministic workload generator (splitmix-style); no external RNG crate.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        self.0 >> 33
    }
}

/// Stream model with every background recompute trigger disabled: no
/// turbulence, no weight jitter, no slow-start. Only membership changes
/// dirty a link, which isolates the component-locality win.
fn clean_model() -> StreamModel {
    StreamModel {
        turbulence_per_event: 0.0,
        flow_weight_jitter: 0.0,
        ramp_tau: SimDuration::ZERO,
        ..StreamModel::default()
    }
}

/// Build the scenario topology: `clusters` disjoint host pairs with
/// heterogeneous NIC/transit capacities (so progressive filling sees many
/// distinct bottleneck levels), optionally all routed over one backbone.
fn build_topology(s: &NetbenchScenario) -> (Topology, Vec<(HostId, HostId)>) {
    let mut t = Topology::new();
    let backbone = if s.shared_backbone {
        Some(t.add_link("backbone", 400.0e6, SimDuration::from_millis(20)))
    } else {
        None
    };
    let mut pairs = Vec::with_capacity(s.clusters);
    for i in 0..s.clusters {
        let src = t.add_host(format!("src{i}"), 40.0e6 + (i % 7) as f64 * 15.0e6);
        let dst = t.add_host(format!("dst{i}"), 30.0e6 + (i % 5) as f64 * 20.0e6);
        match backbone {
            Some(bb) => t.set_route(src, dst, vec![bb]),
            None => {
                let wan = t.add_link(
                    format!("wan{i}"),
                    2.0e6 + (i % 5) as f64 * 1.5e6,
                    SimDuration::from_millis(10 + (i as u64 % 4) * 10),
                );
                t.set_route(src, dst, vec![wan]);
            }
        }
        pairs.push((src, dst));
    }
    (t, pairs)
}

fn flow_spec(cluster: usize, src: HostId, dst: HostId, rng: &mut Lcg) -> FlowSpec {
    FlowSpec {
        src,
        dst,
        bytes: 20.0e6 + (rng.next() % 100) as f64 * 1.0e6,
        streams: 1 + (rng.next() % 8) as u32,
        tag: cluster as u64,
    }
}

fn diff_stats(before: AllocStats, after: AllocStats) -> AllocStats {
    AllocStats {
        recomputes: after.recomputes - before.recomputes,
        skipped: after.skipped - before.skipped,
        component_runs: after.component_runs - before.component_runs,
        flows_allocated: after.flows_allocated - before.flows_allocated,
        links_allocated: after.links_allocated - before.links_allocated,
        unchanged_writes: after.unchanged_writes - before.unchanged_writes,
    }
}

/// Run one scenario in one mode and measure the timed window.
pub fn run_mode(s: &NetbenchScenario, full: bool) -> ModeResult {
    let (topo, pairs) = build_topology(s);
    let model = if s.turbulent {
        StreamModel::default()
    } else {
        clean_model()
    };
    let mut net = Network::with_seed_queue(topo, model, s.seed, s.queue);
    net.set_full_recompute(full);
    let mut rng = Lcg::new(s.seed ^ 0xdead_beef);
    for (i, &(src, dst)) in pairs.iter().enumerate() {
        for _ in 0..s.flows_per_cluster {
            net.start_flow(net.now(), flow_spec(i, src, dst, &mut rng));
        }
    }
    // Warmup: carry every flow through connection setup (< ~2 simulated
    // seconds) so the timed window observes steady-state churn only.
    net.advance(SimTime::from_secs(5));
    for r in net.take_completed() {
        let (src, dst) = pairs[r.tag as usize];
        net.start_flow(net.now(), flow_spec(r.tag as usize, src, dst, &mut rng));
    }

    let steps = if full {
        s.steps_full
    } else {
        s.steps_incremental
    };
    let stats_before = net.alloc_stats();
    let started = Instant::now();
    let mut events = 0u64;
    let mut completions = 0u64;
    let mut done: Vec<TransferRecord> = Vec::new();
    while events < steps {
        let Some(t) = net.next_wakeup() else { break };
        net.advance(t);
        events += 1;
        net.drain_completed_into(&mut done);
        for r in done.drain(..) {
            completions += 1;
            let (src, dst) = pairs[r.tag as usize];
            net.start_flow(net.now(), flow_spec(r.tag as usize, src, dst, &mut rng));
        }
    }
    let wall_secs = started.elapsed().as_secs_f64().max(1e-9);
    let stats = diff_stats(stats_before, net.alloc_stats());
    ModeResult {
        events,
        completions,
        wall_secs,
        events_per_sec: events as f64 / wall_secs,
        recomputes_per_sec: stats.recomputes as f64 / wall_secs,
        stats,
    }
}

/// Run one scenario in both modes and derive the speedups.
pub fn run_scenario(s: &NetbenchScenario) -> ScenarioReport {
    let log = global_logger();
    log.info(&format!(
        "netbench: {} [{}] ({} flows, {} clusters{}{}) — full-recompute baseline",
        s.label,
        s.queue.name(),
        s.flows(),
        s.clusters,
        if s.shared_backbone { ", shared" } else { "" },
        if s.turbulent { ", turbulent" } else { "" },
    ));
    let full = if s.steps_full == 0 {
        log.info(&format!(
            "netbench: {} full baseline skipped (steps_full = 0)",
            s.label
        ));
        ModeResult::skipped()
    } else {
        let full = run_mode(s, true);
        log.info(&format!(
            "netbench: {} full: {:.0} events/s, {:.0} recomputes/s ({} events in {:.2}s)",
            s.label, full.events_per_sec, full.recomputes_per_sec, full.events, full.wall_secs
        ));
        full
    };
    log.info(&format!("netbench: {} — incremental engine", s.label));
    let incremental = run_mode(s, false);
    log.info(&format!(
        "netbench: {} incremental: {:.0} events/s, {:.0} recomputes/s, mean {:.1} flows/run, {} skipped",
        s.label,
        incremental.events_per_sec,
        incremental.recomputes_per_sec,
        incremental.stats.mean_flows_per_run(),
        incremental.stats.skipped,
    ));
    let (speedup_events, speedup_recomputes) = if s.steps_full == 0 {
        (0.0, 0.0)
    } else {
        (
            incremental.events_per_sec / full.events_per_sec.max(1e-9),
            incremental.recomputes_per_sec / full.recomputes_per_sec.max(1e-9),
        )
    };
    if s.steps_full > 0 {
        log.info(&format!(
            "netbench: {} speedup: {:.1}× events/s, {:.1}× recomputes/s",
            s.label, speedup_events, speedup_recomputes
        ));
    }
    ScenarioReport {
        scenario: s.clone(),
        full,
        incremental,
        speedup_events,
        speedup_recomputes,
    }
}

fn mode_json(m: &ModeResult) -> JsonValue {
    JsonValue::Obj(vec![
        ("events".into(), JsonValue::Int(m.events as i64)),
        ("completions".into(), JsonValue::Int(m.completions as i64)),
        ("wall_secs".into(), JsonValue::Float(m.wall_secs)),
        ("events_per_sec".into(), JsonValue::Float(m.events_per_sec)),
        (
            "recomputes_per_sec".into(),
            JsonValue::Float(m.recomputes_per_sec),
        ),
        (
            "recomputes".into(),
            JsonValue::Int(m.stats.recomputes as i64),
        ),
        ("skipped".into(), JsonValue::Int(m.stats.skipped as i64)),
        (
            "component_runs".into(),
            JsonValue::Int(m.stats.component_runs as i64),
        ),
        (
            "flows_allocated".into(),
            JsonValue::Int(m.stats.flows_allocated as i64),
        ),
        (
            "links_allocated".into(),
            JsonValue::Int(m.stats.links_allocated as i64),
        ),
        (
            "unchanged_writes".into(),
            JsonValue::Int(m.stats.unchanged_writes as i64),
        ),
        (
            "mean_flows_per_run".into(),
            JsonValue::Float(m.stats.mean_flows_per_run()),
        ),
    ])
}

/// Render a full report as the `BENCH_net.json` document.
pub fn report_json(reports: &[ScenarioReport]) -> JsonValue {
    JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("netbench".into())),
        (
            "units".into(),
            JsonValue::Str("events_per_sec, recomputes_per_sec: wall-clock throughput".into()),
        ),
        (
            "scenarios".into(),
            JsonValue::Arr(
                reports
                    .iter()
                    .map(|r| {
                        JsonValue::Obj(vec![
                            ("label".into(), JsonValue::Str(r.scenario.label.clone())),
                            (
                                "queue".into(),
                                JsonValue::Str(r.scenario.queue.name().into()),
                            ),
                            (
                                "concurrent_flows".into(),
                                JsonValue::Int(r.scenario.flows() as i64),
                            ),
                            (
                                "clusters".into(),
                                JsonValue::Int(r.scenario.clusters as i64),
                            ),
                            (
                                "shared_backbone".into(),
                                JsonValue::Bool(r.scenario.shared_backbone),
                            ),
                            ("turbulent".into(), JsonValue::Bool(r.scenario.turbulent)),
                            (
                                "full_baseline_skipped".into(),
                                JsonValue::Bool(r.scenario.steps_full == 0),
                            ),
                            // A skipped baseline is `null`, not an all-zero
                            // block: a zero-filled `full_recompute` row is
                            // indistinguishable from a measured-as-zero run
                            // and a 0.0 "speedup" reads as a regression.
                            (
                                "full_recompute".into(),
                                if r.scenario.steps_full == 0 {
                                    JsonValue::Null
                                } else {
                                    mode_json(&r.full)
                                },
                            ),
                            ("incremental".into(), mode_json(&r.incremental)),
                            (
                                "speedup_events_per_sec".into(),
                                if r.scenario.steps_full == 0 {
                                    JsonValue::Null
                                } else {
                                    JsonValue::Float(r.speedup_events)
                                },
                            ),
                            (
                                "speedup_recomputes_per_sec".into(),
                                if r.scenario.steps_full == 0 {
                                    JsonValue::Null
                                } else {
                                    JsonValue::Float(r.speedup_recomputes)
                                },
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..10 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn topology_shapes() {
        let mut s = smoke_suite().pop().unwrap();
        s.clusters = 4;
        let (t, pairs) = build_topology(&s);
        assert_eq!(pairs.len(), 4);
        // 2 access links + 1 transit link per cluster.
        assert_eq!(t.link_count(), 12);
        s.shared_backbone = true;
        let (t, _) = build_topology(&s);
        // 2 access links per cluster + 1 shared backbone.
        assert_eq!(t.link_count(), 9);
    }

    #[test]
    fn tiny_scenario_runs_both_modes() {
        let s = NetbenchScenario {
            label: "tiny".into(),
            clusters: 3,
            flows_per_cluster: 2,
            shared_backbone: false,
            turbulent: false,
            steps_incremental: 20,
            steps_full: 20,
            seed: 7,
            queue: QueueKind::Ladder,
        };
        let inc = run_mode(&s, false);
        let full = run_mode(&s, true);
        assert!(inc.events > 0 && full.events > 0);
        assert!(inc.stats.recomputes > 0 && full.stats.recomputes > 0);
        // Incremental never allocates more flow-slots than the full pass
        // would over the same event count.
        assert!(inc.stats.mean_flows_per_run() <= s.flows() as f64 + 1e-9);
    }

    #[test]
    fn turbulent_scenario_suppresses_unchanged_writes() {
        // Reduced-steps replica of `clustered-turbulent-1k`. Before
        // cap-bound ramp gating, this window produced thousands of
        // unchanged writes per measured event (1.5M over the full-size
        // window); the predicate pins the fix.
        let s = NetbenchScenario {
            label: "turbulent-regression".into(),
            clusters: 20,
            flows_per_cluster: 10,
            shared_backbone: false,
            turbulent: true,
            steps_incremental: 200,
            steps_full: 0,
            seed: 42,
            queue: QueueKind::Ladder,
        };
        let inc = run_mode(&s, false);
        assert!(inc.events > 0 && inc.stats.flows_allocated > 0);
        assert!(
            write_suppression_ok(&inc),
            "turbulent unchanged_writes regressed: {} unchanged of {} allocated",
            inc.stats.unchanged_writes,
            inc.stats.flows_allocated,
        );
    }

    #[test]
    fn zero_steps_full_skips_baseline_and_nulls_speedups() {
        let s = NetbenchScenario {
            label: "tiny-skip".into(),
            clusters: 2,
            flows_per_cluster: 2,
            shared_backbone: false,
            turbulent: false,
            steps_incremental: 10,
            steps_full: 0,
            seed: 3,
            queue: QueueKind::Ladder,
        };
        let rep = run_scenario(&s);
        assert_eq!(rep.full.events, 0);
        assert_eq!(rep.full.stats, AllocStats::default());
        assert_eq!(rep.speedup_events, 0.0);
        assert_eq!(rep.speedup_recomputes, 0.0);
        assert!(rep.incremental.events > 0, "incremental mode still runs");
        let doc = report_json(&[rep]);
        let parsed = JsonValue::parse(&doc.render()).expect("report must parse");
        let scenario = parsed
            .get("scenarios")
            .and_then(|s| s.as_arr())
            .and_then(|a| a.first())
            .expect("one scenario");
        assert_eq!(
            scenario
                .get("full_baseline_skipped")
                .and_then(|v| v.as_bool()),
            Some(true)
        );
        // The skipped baseline reports as null, not zeroed rows: a reader
        // must not mistake "not measured" for "measured at zero".
        assert_eq!(scenario.get("full_recompute"), Some(&JsonValue::Null));
        assert_eq!(
            scenario.get("speedup_events_per_sec"),
            Some(&JsonValue::Null)
        );
        assert_eq!(
            scenario.get("speedup_recomputes_per_sec"),
            Some(&JsonValue::Null)
        );
    }

    #[test]
    fn report_renders_valid_json() {
        let s = NetbenchScenario {
            label: "tiny".into(),
            clusters: 2,
            flows_per_cluster: 2,
            shared_backbone: false,
            turbulent: false,
            steps_incremental: 10,
            steps_full: 10,
            seed: 3,
            queue: QueueKind::Heap,
        };
        let rep = run_scenario(&s);
        let doc = report_json(&[rep]);
        let text = doc.render();
        let parsed = JsonValue::parse(&text).expect("netbench JSON must parse");
        assert_eq!(
            parsed
                .get("scenarios")
                .and_then(|s| s.as_arr())
                .map(|a| a.len()),
            Some(1)
        );
    }
}
