//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! `cargo bench --bench ablations` prints five studies:
//!
//! 1. **Clustering factor** — per-job init overhead amortization (Fig. 2's
//!    motivation for task clustering).
//! 2. **Greedy vs balanced** — Section III.b: balanced reserves per-cluster
//!    shares so late clusters are not starved.
//! 3. **Structure-based priorities** — Section III.c's four algorithms.
//! 4. **Shared staging across workflows** — Table I's duplicate removal and
//!    refcounted resources.
//! 5. **Policy callout overhead** — the cost the paper attributes to calling
//!    an external service.

use criterion::{criterion_group, criterion_main, Criterion};
use pwm_bench::{mb, MontageExperiment, PolicyMode};
use pwm_core::transport::InProcessTransport;
use pwm_core::{PolicyConfig, PolicyController, PriorityAlgorithm, WorkflowId, DEFAULT_SESSION};
use pwm_montage::{montage_replicas, montage_workflow, MontageConfig};
use pwm_net::{paper_testbed, Network, StreamModel};
use pwm_sim::SimDuration;
use pwm_workflow::{plan, ComputeSite, ExecutorConfig, PlannerConfig, WorkflowExecutor};
use std::hint::black_box;

fn seeds() -> Vec<u64> {
    vec![1, 2]
}

fn ablation_clustering() {
    println!("== Ablation: task clustering factor (100 MB extras, greedy-50 @8) ==");
    println!(
        "{:<14}{:>12}{:>16}",
        "clustering", "makespan(s)", "staging jobs"
    );
    for factor in [None, Some(2), Some(4), Some(8), Some(16)] {
        let mut exp =
            MontageExperiment::paper_setup(mb(100), 8, PolicyMode::Greedy { threshold: 50 });
        exp.clustering_factor = factor;
        let (summary, runs) = exp.run_seeds(&seeds());
        let label = factor
            .map(|f| f.to_string())
            .unwrap_or_else(|| "none".into());
        println!(
            "{:<14}{:>12.0}{:>16}",
            label, summary.mean, runs[0].staging_jobs
        );
    }
    println!();
}

fn ablation_balanced() {
    println!("== Ablation: greedy vs balanced (100 MB extras, clustering 4, threshold 48) ==");
    println!("{:<22}{:>12}", "policy", "makespan(s)");
    for mode in [
        PolicyMode::Greedy { threshold: 48 },
        PolicyMode::Balanced {
            threshold: 48,
            cluster_factor: 4,
        },
    ] {
        let mut exp = MontageExperiment::paper_setup(mb(100), 8, mode);
        exp.clustering_factor = Some(4);
        let (summary, _) = exp.run_seeds(&seeds());
        println!("{:<22}{:>12.0}", mode.label(), summary.mean);
    }
    println!();
}

fn ablation_priority() {
    println!("== Ablation: structure-based priorities (100 MB extras, greedy-50 @8) ==");
    println!("{:<20}{:>12}", "algorithm", "makespan(s)");
    for (label, algo) in [
        ("none", None),
        ("breadth-first", Some(PriorityAlgorithm::BreadthFirst)),
        ("depth-first", Some(PriorityAlgorithm::DepthFirst)),
        ("direct-dependent", Some(PriorityAlgorithm::DirectDependent)),
        ("dependent", Some(PriorityAlgorithm::Dependent)),
    ] {
        let mut exp =
            MontageExperiment::paper_setup(mb(100), 8, PolicyMode::Greedy { threshold: 50 });
        exp.priority = algo;
        let (summary, _) = exp.run_seeds(&seeds());
        println!("{:<20}{:>12.0}", label, summary.mean);
    }
    println!();
}

/// Two identical workflows staged back-to-back through one policy session:
/// the second workflow's WAN staging is deduplicated against the first's
/// staged files.
fn ablation_sharing() {
    println!("== Ablation: staged-file sharing across workflows (50 MB extras) ==");
    let (topo, gridftp, apache, nfs) = paper_testbed();
    let site = ComputeSite {
        name: "obelix".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: nfs,
        storage_host_name: "obelix-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    // Same generator seed → identical file names → shareable staging.
    let workflow = montage_workflow(&MontageConfig {
        extra_file_bytes: mb(50),
        seed: 1,
        ..Default::default()
    });
    let replicas = montage_replicas(&workflow, ("apache-isi", apache), ("gridftp-vm", gridftp));
    let planner_cfg = PlannerConfig {
        cleanup: false, // keep files so the second workflow can share them
        ..Default::default()
    };
    let executable = plan(&workflow, &site, &replicas, &planner_cfg).unwrap();

    let controller = PolicyController::new(
        PolicyConfig::default()
            .with_default_streams(8)
            .with_threshold(50),
    );
    println!(
        "{:<12}{:>12}{:>16}{:>10}",
        "workflow", "makespan(s)", "bytes staged", "skipped"
    );
    for wf in 0..2u64 {
        let network = Network::with_seed(topo.clone(), StreamModel::default(), wf + 1);
        let transport = Box::new(InProcessTransport::new(controller.clone(), DEFAULT_SESSION));
        let cfg = ExecutorConfig {
            seed: wf + 1,
            workflow_id: WorkflowId(wf),
            policy_call_latency: SimDuration::from_millis(75),
            ..Default::default()
        };
        let exec = WorkflowExecutor::new(&executable, &site, network, transport, cfg);
        let (stats, _) = exec.run();
        println!(
            "{:<12}{:>12.0}{:>16.0}{:>10}",
            format!("wf{wf}"),
            stats.makespan_secs(),
            stats.bytes_staged,
            stats.transfers_skipped
        );
        assert!(stats.success);
        if wf == 1 {
            assert!(
                stats.transfers_skipped > 0,
                "second workflow should share staged files"
            );
        }
    }
    println!();
}

fn ablation_overhead() {
    println!("== Ablation: policy callout latency (10 MB extras, greedy-50 @8) ==");
    println!("{:<14}{:>12}", "latency", "makespan(s)");
    for ms in [0u64, 75, 300, 1000] {
        let mut exp =
            MontageExperiment::paper_setup(mb(10), 8, PolicyMode::Greedy { threshold: 50 });
        exp.policy_call_latency = SimDuration::from_millis(ms);
        let (summary, _) = exp.run_seeds(&seeds());
        println!("{:<14}{:>12.0}", format!("{ms} ms"), summary.mean);
    }
    println!();
}

/// The paper's scalability question: "we will study the scalability of the
/// centralized policy service when planning multiple complex workflows."
/// Wall-clock cost of one advice round-trip while N workflows share the
/// session, as a function of resident policy-memory size.
fn ablation_scalability(c: &mut Criterion) {
    use pwm_core::{TransferSpec, Url};
    println!("== Ablation: centralized service scalability (resident facts vs advice latency) ==");
    let mut group = c.benchmark_group("service_scalability");
    for resident_files in [0usize, 100, 500, 2000] {
        let controller = PolicyController::new(
            PolicyConfig::default()
                .with_default_streams(8)
                .with_threshold(1_000_000),
        );
        // Pre-populate policy memory with staged files from other workflows.
        {
            let mut t = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);
            use pwm_core::transport::PolicyTransport;
            for chunk in 0..(resident_files / 50).max(if resident_files > 0 { 1 } else { 0 }) {
                let batch: Vec<TransferSpec> = (0..50.min(resident_files))
                    .map(|i| TransferSpec {
                        source: Url::new(
                            "gsiftp",
                            "gridftp-vm",
                            format!("/data/resident_{chunk}_{i}.dat"),
                        ),
                        dest: Url::new(
                            "file",
                            "obelix-nfs",
                            format!("/scratch/resident_{chunk}_{i}.dat"),
                        ),
                        bytes: 1,
                        requested_streams: None,
                        workflow: WorkflowId(chunk as u64),
                        cluster: None,
                        priority: None,
                    })
                    .collect();
                let advice = t.evaluate_transfers(batch).unwrap();
                t.report_transfers(
                    advice
                        .iter()
                        .map(|a| pwm_core::TransferOutcome {
                            id: a.id,
                            success: true,
                        })
                        .collect(),
                )
                .unwrap();
            }
        }
        let mut counter = 0u64;
        group.bench_function(
            format!("lifecycle_with_{resident_files}_resident_files"),
            |b| {
                use pwm_core::transport::PolicyTransport;
                let mut t = InProcessTransport::new(controller.clone(), DEFAULT_SESSION);
                b.iter(|| {
                    // One complete transfer lifecycle (advice → completion →
                    // cleanup advice → cleanup completion): policy memory
                    // returns to its resident baseline, so iterations are
                    // independent and the measurement reflects the cost of the
                    // four REST operations at this memory size.
                    counter += 1;
                    let src = Url::new("gsiftp", "gridftp-vm", format!("/data/q{counter}.dat"));
                    let dst = Url::new("file", "obelix-nfs", format!("/scratch/q{counter}.dat"));
                    let advice = t
                        .evaluate_transfers(vec![TransferSpec {
                            source: src,
                            dest: dst.clone(),
                            bytes: 1,
                            requested_streams: None,
                            workflow: WorkflowId(9999),
                            cluster: None,
                            priority: None,
                        }])
                        .unwrap();
                    t.report_transfers(vec![pwm_core::TransferOutcome {
                        id: advice[0].id,
                        success: true,
                    }])
                    .unwrap();
                    let cleanups = t
                        .evaluate_cleanups(vec![pwm_core::CleanupSpec {
                            file: dst,
                            workflow: WorkflowId(9999),
                        }])
                        .unwrap();
                    t.report_cleanups(vec![pwm_core::CleanupOutcome {
                        id: cleanups[0].id,
                        success: true,
                    }])
                    .unwrap();
                    black_box(advice)
                })
            },
        );
    }
    group.finish();
}

/// Cross-workload study: the same policy on three canonical workflow
/// shapes. CyberShake's shared strain-green-tensor inputs make policy dedup
/// decisive; Epigenomics stages only at lane heads and barely cares.
fn ablation_workloads() {
    use pwm_core::transport::{NoPolicyTransport, PolicyTransport};
    use pwm_montage::{
        cybershake_like, epigenomics_like, single_source_replicas, CyberShakeConfig,
        EpigenomicsConfig,
    };
    println!("== Ablation: policy value across workload shapes ==");
    println!(
        "{:<22}{:>14}{:>14}{:>16}",
        "workload", "no-policy(s)", "greedy-50(s)", "dedup-saved(GB)"
    );
    let (topo, gridftp, _apache, nfs) = paper_testbed();
    let site = ComputeSite {
        name: "obelix".into(),
        nodes: 9,
        cores_per_node: 6,
        storage_host: nfs,
        storage_host_name: "obelix-nfs".into(),
        scratch_dir: "/scratch".into(),
    };
    let workloads: Vec<(&str, pwm_workflow::AbstractWorkflow)> = vec![
        (
            "cybershake (shared)",
            cybershake_like(&CyberShakeConfig::default()),
        ),
        (
            "epigenomics (lanes)",
            epigenomics_like(&EpigenomicsConfig::default()),
        ),
        ("montage 10MB aug", {
            montage_workflow(&MontageConfig {
                extra_file_bytes: mb(10),
                seed: 1,
                ..Default::default()
            })
        }),
    ];
    for (label, wf) in workloads {
        let rc = if label.starts_with("montage") {
            montage_replicas(
                &wf,
                ("apache-isi", pwm_net::HostId(1)),
                ("gridftp-vm", gridftp),
            )
        } else {
            single_source_replicas(&wf, "gridftp-vm", gridftp)
        };
        let p = plan(&wf, &site, &rc, &PlannerConfig::default()).unwrap();
        let mut results = Vec::new();
        for policy in [false, true] {
            let transport: Box<dyn PolicyTransport> = if policy {
                let controller = PolicyController::new(
                    PolicyConfig::default()
                        .with_default_streams(8)
                        .with_threshold(50),
                );
                Box::new(InProcessTransport::new(controller, DEFAULT_SESSION))
            } else {
                Box::new(NoPolicyTransport::new(4))
            };
            let network = Network::with_seed(topo.clone(), StreamModel::default(), 3);
            let exec = WorkflowExecutor::new(
                &p,
                &site,
                network,
                transport,
                ExecutorConfig {
                    seed: 3,
                    ..Default::default()
                },
            );
            let (stats, _) = exec.run();
            assert!(stats.success, "{label} run failed");
            results.push(stats);
        }
        let saved_gb = (results[0].bytes_staged - results[1].bytes_staged) / 1e9;
        println!(
            "{:<22}{:>14.0}{:>14.0}{:>16.2}",
            label,
            results[0].makespan_secs(),
            results[1].makespan_secs(),
            saved_gb,
        );
    }
    println!();
}

fn bench_ablations(c: &mut Criterion) {
    ablation_clustering();
    ablation_balanced();
    ablation_priority();
    ablation_sharing();
    ablation_overhead();
    ablation_workloads();
    ablation_scalability(c);

    // Time the clustered configuration as the representative measurement.
    let mut exp = MontageExperiment::paper_setup(mb(10), 8, PolicyMode::Greedy { threshold: 50 });
    exp.clustering_factor = Some(4);
    c.bench_function("ablations/clustered_10mb_run", |b| {
        b.iter(|| black_box(exp.run_once(1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
