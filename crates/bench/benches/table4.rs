//! Bench + regeneration of Table IV ("Maximum streams for simultaneous
//! transfers").
//!
//! Running `cargo bench --bench table4` prints the regenerated table (both
//! the analytic computation and the one driven through the full Policy
//! Service) and measures the cost of each path.

use criterion::{criterion_group, criterion_main, Criterion};
use pwm_bench::{render_table4, table4_analytic, table4_via_service};
use std::hint::black_box;

fn bench_table4(c: &mut Criterion) {
    // Regenerate and print the table once, verifying both paths agree with
    // the paper's printed numbers.
    let analytic = table4_analytic();
    let via_service = table4_via_service();
    println!("{}", render_table4(&analytic));
    let matches_paper = analytic
        .iter()
        .zip(pwm_bench::table4::PAPER_TABLE.iter())
        .all(|(row, paper)| row.max_streams.as_slice() == paper.as_slice());
    println!("analytic == paper Table IV: {matches_paper}");
    println!(
        "analytic == full-service computation: {}\n",
        analytic == via_service
    );
    assert!(matches_paper, "Table IV regression");
    assert_eq!(
        analytic, via_service,
        "service diverged from the arithmetic"
    );

    c.bench_function("table4/analytic", |b| {
        b.iter(|| black_box(table4_analytic()))
    });
    c.bench_function("table4/via_policy_service", |b| {
        b.iter(|| black_box(table4_via_service()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table4
}
criterion_main!(benches);
