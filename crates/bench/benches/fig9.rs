//! Bench + regeneration of Figure 9 (1 GB extra files).
//!
//! `cargo bench --bench fig9` prints the regenerated series (mean ± stddev
//! per point, `REPRO_SEEDS` seeds per point, default 2 for bench runs; the
//! `repro` binary uses 5) and times one representative simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use pwm_bench::{fig9, mb, render_figure, MontageExperiment, PolicyMode};
use std::hint::black_box;

fn seeds_from_env() -> usize {
    std::env::var("REPRO_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

fn bench_fig9(c: &mut Criterion) {
    let figure = fig9(seeds_from_env());
    println!("{}", render_figure(&figure));

    // Time one representative point of the figure.
    let exp = MontageExperiment::paper_setup(mb(1000), 8, PolicyMode::Greedy { threshold: 50 });
    c.bench_function("fig9/greedy50_8streams_one_run", |b| {
        b.iter(|| black_box(exp.run_once(1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9
}
criterion_main!(benches);
