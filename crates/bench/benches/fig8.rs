//! Bench + regeneration of Figure 8 (500 MB extra files).
//!
//! `cargo bench --bench fig8` prints the regenerated series (mean ± stddev
//! per point, `REPRO_SEEDS` seeds per point, default 2 for bench runs; the
//! `repro` binary uses 5) and times one representative simulation run.

use criterion::{criterion_group, criterion_main, Criterion};
use pwm_bench::{fig8, mb, render_figure, MontageExperiment, PolicyMode};
use std::hint::black_box;

fn seeds_from_env() -> usize {
    std::env::var("REPRO_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2)
}

fn bench_fig8(c: &mut Criterion) {
    let figure = fig8(seeds_from_env());
    println!("{}", render_figure(&figure));

    // Time one representative point of the figure.
    let exp = MontageExperiment::paper_setup(mb(500), 8, PolicyMode::Greedy { threshold: 50 });
    c.bench_function("fig8/greedy50_8streams_one_run", |b| {
        b.iter(|| black_box(exp.run_once(1)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8
}
criterion_main!(benches);
