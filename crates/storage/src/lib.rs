//! Storage-backend envelopes and dollar-cost metering for staged data.
//!
//! The SC'12 Policy Service advises *how* a transfer runs (streams, order,
//! suppression) but is blind to *where* the staged bytes land. *Data Sharing
//! Options for Scientific Workflows on Amazon EC2* shows the staging backend
//! — shared NFS vs parallel FS vs object store — dominates both makespan and
//! dollar cost. This crate supplies the missing layer:
//!
//! - [`BackendSpec`]: a per-backend performance envelope (bandwidth, IOPS,
//!   per-request overhead, multipart chunking) plus [`CostRates`]
//!   ($/GB·h resident, $/request, $/GB egress).
//! - [`StorageLayer`]: installs each backend into a [`Topology`] as a
//!   dedicated host behind a capacity-limited link, so shared-filesystem
//!   contention falls out of pwm-net's max-min fair sharing across every
//!   concurrent reader/writer, and object-store request overhead rides the
//!   flow's connection-setup phase (`Network::start_flow_with_setup`).
//! - [`CostMeter`]: integrates residency ($/GB·h) in simulated time and
//!   counts requests/egress, producing a [`StorageCostReport`] that the
//!   workflow executor surfaces through `RunStats` and pwm-obs gauges.
//!
//! Everything here is deterministic: the meter advances on simulated
//! timestamps only, and reports are plain serde structs safe to commit as
//! benchmark artifacts.

#![warn(missing_docs)]

pub mod integrity;

pub use integrity::CorruptionModel;

use std::collections::BTreeMap;

use pwm_net::{HostId, LinkId, Topology};
use pwm_obs::{Gauge, Obs};
use pwm_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// NIC capacity given to the synthetic per-backend store hosts: effectively
/// infinite so the backend *link* (the envelope) is the only bottleneck.
const STORE_NIC_BPS: f64 = 1e12;

/// Bytes per gigabyte in cost accounting (decimal GB, matching cloud bills).
const GB: f64 = 1e9;

/// The broad performance class of a staging backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    /// One NFS-style server: modest bandwidth, fair-shared by every client.
    SharedFs,
    /// Striped parallel filesystem (Lustre/GPFS-like): high aggregate
    /// bandwidth, still fair-shared but rarely the bottleneck.
    ParallelFs,
    /// S3-like object store: per-request overhead and multipart chunking
    /// dominate small objects; bandwidth is wide but metered per request.
    ObjectStore,
}

/// Dollar rates for one backend, in the units cloud bills use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CostRates {
    /// Dollars per gigabyte-hour of resident (staged, not yet cleaned)
    /// data.
    pub per_gb_hour: f64,
    /// Dollars per request (PUT at staging time, GET at consumption time).
    pub per_request: f64,
    /// Dollars per gigabyte read back out of the backend by compute.
    pub per_gb_egress: f64,
}

/// The performance + cost envelope of one staging backend.
///
/// Durations are plain `f64` seconds so the spec can ride serde into policy
/// configuration and WAL snapshots (sim-time types are not serializable);
/// they are converted to [`SimDuration`] at the network boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendSpec {
    /// Unique backend name (also the policy-facts key), e.g. `"obj-s3"`.
    pub name: String,
    /// Performance class.
    pub kind: BackendKind,
    /// Sequential bandwidth ceiling, bytes/second.
    pub bandwidth_bps: f64,
    /// IO operations per second the backend sustains (0 = unlimited).
    pub iops: f64,
    /// Bytes moved per IO operation; with `iops` this caps effective
    /// bandwidth at `iops * io_bytes`.
    pub io_bytes: f64,
    /// Fixed per-request service time in seconds (object-store request
    /// round-trip; 0 for filesystems). Charged once per chunk.
    pub request_overhead_s: f64,
    /// Access latency in seconds — the RTT of the backend's link.
    pub request_latency_s: f64,
    /// Multipart chunk size in bytes for [`BackendKind::ObjectStore`]
    /// (0 = single-request uploads regardless of size).
    pub chunk_bytes: u64,
    /// Dollar rates.
    pub cost: CostRates,
}

impl BackendSpec {
    /// Bandwidth after the IOPS envelope: `min(bandwidth, iops * io_bytes)`
    /// when an IOPS limit is set.
    pub fn effective_bandwidth(&self) -> f64 {
        if self.iops > 0.0 && self.io_bytes > 0.0 {
            self.bandwidth_bps.min(self.iops * self.io_bytes)
        } else {
            self.bandwidth_bps
        }
    }

    /// Requests needed to move `bytes`: object stores chunk multipart
    /// uploads, filesystems count one logical request per file.
    pub fn requests_for(&self, bytes: u64) -> u64 {
        match self.kind {
            BackendKind::ObjectStore if self.chunk_bytes > 0 => {
                bytes.div_ceil(self.chunk_bytes).max(1)
            }
            _ => 1,
        }
    }

    /// Fixed setup time a transfer of `bytes` pays before its flow joins
    /// the bandwidth-sharing set: per-request overhead times request count.
    pub fn extra_setup(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.request_overhead_s * self.requests_for(bytes) as f64)
    }
}

/// A canonical three-backend site profile, shaped after the EC2 data-sharing
/// study: cheap-but-modest shared NFS, fast-but-expensive parallel FS, and
/// an object store whose per-request overhead and egress fees punish many
/// small files. Used by the storagebench scenario and tests.
pub fn ec2_trio() -> Vec<BackendSpec> {
    vec![
        BackendSpec {
            name: "nfs-std".into(),
            kind: BackendKind::SharedFs,
            bandwidth_bps: 60e6,
            iops: 4_000.0,
            io_bytes: 65_536.0,
            request_overhead_s: 0.0,
            request_latency_s: 0.002,
            chunk_bytes: 0,
            cost: CostRates {
                per_gb_hour: 0.000_1,
                per_request: 0.0,
                per_gb_egress: 0.0,
            },
        },
        BackendSpec {
            name: "pfs-lustre".into(),
            kind: BackendKind::ParallelFs,
            bandwidth_bps: 400e6,
            iops: 0.0,
            io_bytes: 0.0,
            request_overhead_s: 0.0,
            request_latency_s: 0.000_5,
            chunk_bytes: 0,
            cost: CostRates {
                per_gb_hour: 0.001_2,
                per_request: 0.0,
                per_gb_egress: 0.0,
            },
        },
        BackendSpec {
            name: "obj-s3".into(),
            kind: BackendKind::ObjectStore,
            bandwidth_bps: 150e6,
            iops: 0.0,
            io_bytes: 0.0,
            request_overhead_s: 0.05,
            request_latency_s: 0.01,
            chunk_bytes: 32 * 1024 * 1024,
            cost: CostRates {
                per_gb_hour: 0.000_05,
                per_request: 0.000_5,
                per_gb_egress: 0.09,
            },
        },
    ]
}

/// One backend as installed in a topology.
#[derive(Debug, Clone)]
pub struct InstalledBackend {
    /// The synthetic store host transfers are redirected to.
    pub host: HostId,
    /// The capacity-limited link modelling the backend envelope.
    pub link: LinkId,
    /// The envelope itself.
    pub spec: BackendSpec,
}

/// Storage backends wired into a [`Topology`] as endpoint stages.
///
/// Each backend becomes a `store-{name}` host reachable from every
/// pre-existing host through the gateway's route plus a `store:{name}` link
/// capped at the backend's effective bandwidth. Concurrent transfers against
/// one backend therefore fair-share its envelope exactly like any other
/// bottleneck link (the shared-FS contention model), while object-store
/// request overhead is added per transfer via [`BackendSpec::extra_setup`].
#[derive(Debug, Clone, Default)]
pub struct StorageLayer {
    backends: BTreeMap<String, InstalledBackend>,
}

impl StorageLayer {
    /// Install `specs` into `topo`, homed at `gateway` (the site's storage
    /// frontend — routes to each store host extend existing routes to the
    /// gateway). Call after all real hosts and routes exist.
    pub fn install(topo: &mut Topology, gateway: HostId, specs: &[BackendSpec]) -> StorageLayer {
        let existing: Vec<HostId> = (0..topo.host_count() as u32).map(HostId).collect();
        let mut backends = BTreeMap::new();
        for spec in specs {
            let host = topo.add_host(format!("store-{}", spec.name), STORE_NIC_BPS);
            let link = topo.add_link(
                format!("store:{}", spec.name),
                spec.effective_bandwidth(),
                SimDuration::from_secs_f64(spec.request_latency_s),
            );
            for &h in &existing {
                let mut fwd = middles(topo, h, gateway);
                fwd.push(link);
                topo.set_route(h, host, fwd);
                let mut rev = vec![link];
                rev.extend(middles(topo, gateway, h));
                topo.set_route(host, h, rev);
            }
            assert!(
                backends
                    .insert(
                        spec.name.clone(),
                        InstalledBackend {
                            host,
                            link,
                            spec: spec.clone(),
                        },
                    )
                    .is_none(),
                "duplicate backend name {}",
                spec.name
            );
        }
        StorageLayer { backends }
    }

    /// Look up an installed backend by name.
    pub fn backend(&self, name: &str) -> Option<&InstalledBackend> {
        self.backends.get(name)
    }

    /// Iterate installed backends in name order.
    pub fn backends(&self) -> impl Iterator<Item = &InstalledBackend> {
        self.backends.values()
    }

    /// Number of installed backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// True when no backends are installed.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }
}

/// Middle links (both access links excluded) of the current route
/// `src → dst`; empty for self-routes and direct host pairs.
fn middles(topo: &Topology, src: HostId, dst: HostId) -> Vec<LinkId> {
    let route = topo.route(src, dst);
    if route.len() > 2 {
        route[1..route.len() - 1].to_vec()
    } else {
        Vec::new()
    }
}

/// Per-backend usage accumulated by the [`CostMeter`].
#[derive(Debug, Clone, Default)]
struct BackendUsage {
    rates: CostRates,
    resident_bytes: f64,
    gb_hours: f64,
    bytes_put: f64,
    put_requests: u64,
    get_requests: u64,
    egress_gb: f64,
    resident_gauge: Option<Gauge>,
    dollars_gauge: Option<Gauge>,
}

impl BackendUsage {
    fn dollars_resident(&self) -> f64 {
        self.gb_hours * self.rates.per_gb_hour
    }
    fn dollars_requests(&self) -> f64 {
        (self.put_requests + self.get_requests) as f64 * self.rates.per_request
    }
    fn dollars_egress(&self) -> f64 {
        self.egress_gb * self.rates.per_gb_egress
    }
    fn dollars_total(&self) -> f64 {
        self.dollars_resident() + self.dollars_requests() + self.dollars_egress()
    }
}

/// Cost accounting for one backend in a [`StorageCostReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BackendCost {
    /// Backend name.
    pub backend: String,
    /// Total bytes staged onto the backend.
    pub bytes_put: f64,
    /// PUT requests issued (object stores: one per multipart chunk).
    pub put_requests: u64,
    /// GET requests charged (read-once consumption model).
    pub get_requests: u64,
    /// Integrated residency, gigabyte-hours.
    pub gb_hours: f64,
    /// Gigabytes read back out by compute.
    pub egress_gb: f64,
    /// Residency dollars (`gb_hours * per_gb_hour`).
    pub dollars_resident: f64,
    /// Request dollars (`(put + get) * per_request`).
    pub dollars_requests: f64,
    /// Egress dollars (`egress_gb * per_gb_egress`).
    pub dollars_egress: f64,
    /// Sum of the three components.
    pub dollars_total: f64,
}

/// The cost meter's summary: per-backend rows (name order) plus the total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StorageCostReport {
    /// One row per backend that saw traffic or was registered.
    pub backends: Vec<BackendCost>,
    /// Total dollars across all backends and components.
    pub dollars_total: f64,
}

impl StorageCostReport {
    /// Row for `name`, if present.
    pub fn backend(&self, name: &str) -> Option<&BackendCost> {
        self.backends.iter().find(|b| b.backend == name)
    }
}

/// Running dollar-cost meter over simulated time.
///
/// Residency is integrated lazily: every mutation first advances the
/// gigabyte-hour integral to the event's timestamp, so interleaved puts and
/// deletes across backends accumulate exactly regardless of call order at
/// one instant. The consumption model is *read-once*: each staged file is
/// charged one GET (per request chunk) and its bytes as egress at put time,
/// matching the executor's stage-once/consume-once lifecycle.
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    usage: BTreeMap<String, BackendUsage>,
    last: SimTime,
}

impl CostMeter {
    /// A meter pre-registered for `specs` (rows appear in the report even
    /// with zero traffic), starting its residency clock at time zero.
    pub fn new(specs: &[BackendSpec]) -> CostMeter {
        let mut usage = BTreeMap::new();
        for s in specs {
            usage.insert(
                s.name.clone(),
                BackendUsage {
                    rates: s.cost,
                    ..BackendUsage::default()
                },
            );
        }
        CostMeter {
            usage,
            last: SimTime::ZERO,
        }
    }

    /// Attach pwm-obs gauges (`storage_resident_bytes`,
    /// `storage_cost_dollars`, labelled by backend) updated on every event.
    pub fn attach_obs(&mut self, obs: &Obs) {
        for (name, u) in self.usage.iter_mut() {
            u.resident_gauge = Some(obs.registry.gauge(
                "storage_resident_bytes",
                "Bytes currently staged on the backend",
                &[("backend", name)],
            ));
            u.dollars_gauge = Some(obs.registry.gauge(
                "storage_cost_dollars",
                "Accumulated dollar cost of the backend",
                &[("backend", name)],
            ));
        }
    }

    /// Integrate residency up to `now` (no-op when time has not advanced).
    pub fn advance(&mut self, now: SimTime) {
        let dt_hours = now.since(self.last).as_secs_f64() / 3600.0;
        if dt_hours > 0.0 {
            for u in self.usage.values_mut() {
                u.gb_hours += u.resident_bytes / GB * dt_hours;
            }
        }
        self.last = self.last.max(now);
    }

    /// Record `bytes` staged onto `backend` at `now` according to `spec`:
    /// starts residency, counts PUT requests, and charges the read-once
    /// GET + egress for downstream consumption.
    pub fn on_put(&mut self, spec: &BackendSpec, bytes: u64, now: SimTime) {
        self.advance(now);
        let requests = spec.requests_for(bytes);
        let u = self
            .usage
            .entry(spec.name.clone())
            .or_insert_with(|| BackendUsage {
                rates: spec.cost,
                ..BackendUsage::default()
            });
        u.resident_bytes += bytes as f64;
        u.bytes_put += bytes as f64;
        u.put_requests += requests;
        u.get_requests += requests;
        u.egress_gb += bytes as f64 / GB;
        if let Some(g) = &u.resident_gauge {
            g.set(u.resident_bytes);
        }
        if let Some(g) = &u.dollars_gauge {
            g.set(u.dollars_total());
        }
    }

    /// Record `bytes` deleted from `backend` at `now`, ending their
    /// residency.
    pub fn on_delete(&mut self, backend: &str, bytes: u64, now: SimTime) {
        self.advance(now);
        if let Some(u) = self.usage.get_mut(backend) {
            u.resident_bytes = (u.resident_bytes - bytes as f64).max(0.0);
            if let Some(g) = &u.resident_gauge {
                g.set(u.resident_bytes);
            }
        }
    }

    /// Bytes currently resident on `backend`.
    pub fn resident_bytes(&self, backend: &str) -> f64 {
        self.usage.get(backend).map_or(0.0, |u| u.resident_bytes)
    }

    /// Snapshot the meter at `now` (advances residency first).
    pub fn report(&mut self, now: SimTime) -> StorageCostReport {
        self.advance(now);
        let backends: Vec<BackendCost> = self
            .usage
            .iter()
            .map(|(name, u)| BackendCost {
                backend: name.clone(),
                bytes_put: u.bytes_put,
                put_requests: u.put_requests,
                get_requests: u.get_requests,
                gb_hours: u.gb_hours,
                egress_gb: u.egress_gb,
                dollars_resident: u.dollars_resident(),
                dollars_requests: u.dollars_requests(),
                dollars_egress: u.dollars_egress(),
                dollars_total: u.dollars_total(),
            })
            .collect();
        let dollars_total = backends.iter().map(|b| b.dollars_total).sum();
        StorageCostReport {
            backends,
            dollars_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pwm_net::{FlowSpec, Network};

    fn object_store() -> BackendSpec {
        ec2_trio().into_iter().find(|b| b.name == "obj-s3").unwrap()
    }

    #[test]
    fn effective_bandwidth_honors_iops_envelope() {
        let mut s = object_store();
        assert_eq!(s.effective_bandwidth(), 150e6);
        s.iops = 1000.0;
        s.io_bytes = 65_536.0;
        assert_eq!(s.effective_bandwidth(), 1000.0 * 65_536.0);
    }

    #[test]
    fn multipart_chunking_counts_requests_and_setup() {
        let s = object_store();
        assert_eq!(s.requests_for(1), 1);
        assert_eq!(s.requests_for(32 * 1024 * 1024), 1);
        assert_eq!(s.requests_for(32 * 1024 * 1024 + 1), 2);
        assert_eq!(s.requests_for(10 * 32 * 1024 * 1024), 10);
        assert_eq!(
            s.extra_setup(10 * 32 * 1024 * 1024),
            SimDuration::from_secs_f64(0.5)
        );
        let nfs = &ec2_trio()[0];
        assert_eq!(nfs.requests_for(u64::MAX), 1);
        assert_eq!(nfs.extra_setup(u64::MAX), SimDuration::ZERO);
    }

    #[test]
    fn install_routes_every_host_to_every_backend() {
        let (mut topo, gridftp, _, nfs) = pwm_net::paper_testbed();
        let layer = StorageLayer::install(&mut topo, nfs, &ec2_trio());
        assert_eq!(layer.len(), 3);
        for b in layer.backends() {
            // Remote host routes through the WAN + backend link; the
            // backend link is always last inbound.
            let route = topo.route(gridftp, b.host);
            assert!(route.len() >= 3, "route must traverse the backend link");
            assert_eq!(*route.last().unwrap(), topo.host(b.host).access_link);
            assert_eq!(route[route.len() - 2], b.link);
            // Reverse direction exists too.
            let back = topo.route(b.host, gridftp);
            assert_eq!(back[1], b.link);
        }
    }

    #[test]
    fn shared_backend_link_fair_shares_bandwidth() {
        // Two concurrent writers into one 60 MB/s shared-FS backend from
        // hosts with fast NICs must each settle near 30 MB/s: contention
        // comes out of max-min sharing on the store link.
        let mut topo = Topology::new();
        let a = topo.add_host("client-a", 1e9);
        let b = topo.add_host("client-b", 1e9);
        let nfs = ec2_trio()
            .into_iter()
            .find(|s| s.name == "nfs-std")
            .unwrap();
        let layer = StorageLayer::install(&mut topo, a, std::slice::from_ref(&nfs));
        let store = layer.backend("nfs-std").unwrap().host;
        let mut net = Network::new(topo, pwm_net::StreamModel::default());
        let bytes = 600e6; // 10 s alone, ~20 s shared
        for (i, src) in [a, b].into_iter().enumerate() {
            net.start_flow(
                SimTime::ZERO,
                FlowSpec {
                    src,
                    dst: store,
                    bytes,
                    streams: 1,
                    tag: i as u64,
                },
            );
        }
        net.run_to_completion(SimTime::from_secs(10_000));
        let records = net.take_completed();
        assert_eq!(records.len(), 2);
        for r in &records {
            let secs = r.transfer_duration().as_secs_f64();
            let rate = bytes / secs;
            assert!(
                (25e6..35e6).contains(&rate),
                "writer should fair-share ~30 MB/s, got {rate:.2e}"
            );
        }
    }

    #[test]
    fn cost_meter_integrates_residency_and_requests() {
        let trio = ec2_trio();
        let mut meter = CostMeter::new(&trio);
        let s3 = object_store();
        // 64 MiB at t=0: 2 chunks -> 2 PUT + 2 GET requests.
        let bytes = 64 * 1024 * 1024_u64;
        meter.on_put(&s3, bytes, SimTime::ZERO);
        // Resident for exactly one hour, then deleted; half an hour idle.
        meter.on_delete("obj-s3", bytes, SimTime::from_secs(3600));
        let report = meter.report(SimTime::from_secs(5400));
        let row = report.backend("obj-s3").unwrap();
        assert_eq!(row.put_requests, 2);
        assert_eq!(row.get_requests, 2);
        let gb = bytes as f64 / 1e9;
        assert!(
            (row.gb_hours - gb).abs() < 1e-9,
            "one GB-hour per GB resident"
        );
        assert!((row.dollars_requests - 4.0 * 0.000_5).abs() < 1e-12);
        assert!((row.dollars_egress - gb * 0.09).abs() < 1e-12);
        assert!((row.dollars_resident - gb * 0.000_05).abs() < 1e-12);
        assert!(
            (row.dollars_total
                - (row.dollars_resident + row.dollars_requests + row.dollars_egress))
                .abs()
                < 1e-12
        );
        assert!((report.dollars_total - row.dollars_total).abs() < 1e-12);
        // Untouched backends report zero-cost rows, keeping frontier JSON
        // shape stable.
        assert_eq!(report.backends.len(), 3);
        assert_eq!(report.backend("nfs-std").unwrap().dollars_total, 0.0);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let mut meter = CostMeter::new(&ec2_trio());
        meter.on_put(&object_store(), 123_456_789, SimTime::from_secs(5));
        let report = meter.report(SimTime::from_secs(7200));
        let json = serde_json::to_string(&report).unwrap();
        let back: StorageCostReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
