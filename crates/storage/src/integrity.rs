//! Silent replica corruption, surfaced at transfer completion.
//!
//! Real storage systems lose and corrupt replicas silently; the workflow only
//! notices when a checksum over the delivered bytes disagrees with the replica
//! catalog's recorded digest. [`CorruptionModel`] models exactly that check —
//! cheap enough to run at every transfer completion — without simulating byte
//! content: whether a given *read attempt* of a given replica observes
//! corruption is a pure hash of `(seed, host, file, attempt)`, so runs are
//! reproducible per seed and independent of event interleaving.
//!
//! Two properties matter for the recovery layer built on top:
//!
//! * **Per-attempt independence.** A corrupt read does not doom the replica
//!   forever (think torn pages, cache ghosts, flaky controllers): a naive
//!   retry loop eventually succeeds with probability 1, which keeps the
//!   "every run completes" invariant meaningful for the baseline. Policy wins
//!   on *time*, by quarantining the suspect source instead of grinding
//!   retries against it.
//! * **Regeneration heals.** Re-running the producer job rewrites the bytes;
//!   bumping the file's *generation* switches the hash stream, and generation
//!   ≥ 1 reads are modeled clean (freshly written replicas are verified on
//!   write in real deployments).

use pwm_sim::derive_seed;
use std::collections::BTreeMap;

/// Seeded model of silent replica corruption, checked at transfer completion.
///
/// Hosts not registered via [`CorruptionModel::set_host_prob`] never corrupt,
/// and an empty model draws nothing and allocates nothing — the no-fault
/// configuration is free.
#[derive(Debug, Clone, Default)]
pub struct CorruptionModel {
    /// Master seed for the per-read hash stream.
    seed: u64,
    /// Per-source-host probability that one read attempt observes corruption.
    host_prob: BTreeMap<String, f64>,
}

impl CorruptionModel {
    /// A model where every read verifies clean (the default).
    pub fn new(seed: u64) -> Self {
        CorruptionModel {
            seed,
            host_prob: BTreeMap::new(),
        }
    }

    /// Set the probability (clamped to `[0, 1]`) that a single read attempt
    /// from `host` observes a corrupt replica.
    pub fn set_host_prob(&mut self, host: impl Into<String>, p: f64) {
        self.host_prob.insert(host.into(), p.clamp(0.0, 1.0));
    }

    /// True when no host has a nonzero corruption probability.
    pub fn is_clean(&self) -> bool {
        self.host_prob.values().all(|&p| p <= 0.0)
    }

    /// Does attempt number `attempt` at reading `file` from `host` observe a
    /// corrupt replica? Pure in all arguments: the same `(seed, host, file,
    /// attempt, generation)` always answers the same, regardless of when or
    /// how often it is asked. `generation > 0` means the producer re-ran and
    /// rewrote the bytes: regenerated replicas read clean.
    pub fn read_is_corrupt(&self, host: &str, file: &str, attempt: u32, generation: u32) -> bool {
        if generation > 0 {
            return false;
        }
        let Some(&p) = self.host_prob.get(host) else {
            return false;
        };
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let label = format!("corrupt/{host}/{file}/{attempt}");
        let h = derive_seed(self.seed, &label);
        // Map the top 53 bits to [0, 1) — the standard double-precision trick.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_is_clean_and_never_corrupts() {
        let m = CorruptionModel::new(42);
        assert!(m.is_clean());
        assert!(!m.read_is_corrupt("apache-isi", "2mass-atlas.fits", 0, 0));
    }

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let mut a = CorruptionModel::new(7);
        a.set_host_prob("apache-isi", 0.5);
        let mut b = CorruptionModel::new(8);
        b.set_host_prob("apache-isi", 0.5);
        let reads: Vec<bool> = (0..64)
            .map(|k| a.read_is_corrupt("apache-isi", "f.fits", k, 0))
            .collect();
        // Pure: asking again gives the identical stream.
        for (k, &r) in reads.iter().enumerate() {
            assert_eq!(a.read_is_corrupt("apache-isi", "f.fits", k as u32, 0), r);
        }
        // Seeds matter: a different master seed decides differently somewhere.
        assert!((0..64).any(|k| {
            a.read_is_corrupt("apache-isi", "f.fits", k, 0)
                != b.read_is_corrupt("apache-isi", "f.fits", k, 0)
        }));
        // At p = 0.5 both outcomes appear within 64 attempts.
        assert!(reads.iter().any(|&r| r));
        assert!(reads.iter().any(|&r| !r));
    }

    #[test]
    fn regenerated_replicas_read_clean_and_probability_bounds_hold() {
        let mut m = CorruptionModel::new(3);
        m.set_host_prob("bad", 1.0);
        m.set_host_prob("good", 0.0);
        assert!(!m.is_clean());
        assert!(m.read_is_corrupt("bad", "x", 0, 0));
        assert!(m.read_is_corrupt("bad", "x", 9, 0));
        assert!(!m.read_is_corrupt("bad", "x", 0, 1), "generation heals");
        assert!(!m.read_is_corrupt("good", "x", 0, 0));
        assert!(!m.read_is_corrupt("elsewhere", "x", 0, 0));
        // Clamping: out-of-range probabilities behave as their bound.
        m.set_host_prob("wild", 7.0);
        assert!(m.read_is_corrupt("wild", "x", 0, 0));
        m.set_host_prob("neg", -1.0);
        assert!(!m.read_is_corrupt("neg", "x", 0, 0));
    }
}
