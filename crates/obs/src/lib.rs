//! # pwm-obs — the observability subsystem
//!
//! One shared layer replacing the ad-hoc instrumentation that had grown in
//! `pwm-net` (transfer ledgers), `pwm-sim` (uniform-bucket histograms and the
//! bounded text trace), and `pwm-rules` (per-rule counters bolted onto
//! `FiringReport`):
//!
//! * [`registry`] — a labeled metrics [`Registry`] of atomic counters,
//!   gauges, and mergeable HDR-style [`Histogram`]s, cheap enough for hot
//!   paths (lock-free handles, sharded histogram buckets), rendered in
//!   Prometheus text exposition format.
//! * [`span`] — sim-time-aware span tracing ([`Tracer`]): parent/child spans
//!   and instant events with deterministic sequential ids, exported as
//!   Chrome-trace-format JSON (loadable in `chrome://tracing` or Perfetto)
//!   or as JSONL.
//! * [`logger`] — a tiny leveled stderr logger with env-controlled
//!   verbosity (`PWM_LOG=error|warn|info|debug`) for the CLI binaries, so
//!   machine-readable results keep stdout to themselves.
//! * [`json`] — the self-contained JSON value writer/parser backing the
//!   trace exporters and trace validation (the vendored `serde_json`
//!   substitute has no dynamic value type).
//!
//! All timestamps in traces are **simulation time** ([`pwm_sim::SimTime`],
//! integer microseconds — which is exactly the Chrome-trace `ts` unit), so a
//! same-seed run exports a byte-identical trace.
//!
//! ```
//! use pwm_obs::Obs;
//! use pwm_sim::SimTime;
//!
//! let obs = Obs::new();
//! let jobs = obs.registry.counter("pwm_jobs_total", "Jobs run", &[("site", "obelix")]);
//! jobs.inc();
//! let span = obs.tracer.start_span("mProject_1", "workflow", None, SimTime::ZERO);
//! obs.tracer.end_span(span, SimTime::from_secs(3));
//! assert!(obs.registry.render_prometheus().contains("pwm_jobs_total"));
//! assert!(obs.tracer.chrome_trace_json().contains("mProject_1"));
//! ```

#![warn(missing_docs)]

pub mod json;
pub mod logger;
pub mod registry;
pub mod span;

pub use json::{JsonError, JsonValue};
pub use logger::{global as global_logger, Level, Logger};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use span::{validate_chrome_trace, SpanId, TraceEvent, Tracer};

/// A cheaply cloneable handle bundling the metrics [`Registry`] and the span
/// [`Tracer`] so components can thread one value through their constructors.
///
/// Clones share the same underlying registry and trace buffer.
#[derive(Debug, Clone, Default)]
pub struct Obs {
    /// Labeled counters, gauges and histograms.
    pub registry: Registry,
    /// Sim-time span and instant events.
    pub tracer: Tracer,
}

impl Obs {
    /// A fresh registry + tracer pair.
    pub fn new() -> Obs {
        Obs::default()
    }

    /// A handle sharing this registry but writing spans to a fresh, empty
    /// tracer — used for per-session trace buffers behind one shared
    /// `/metrics` registry.
    pub fn with_fresh_tracer(&self) -> Obs {
        Obs {
            registry: self.registry.clone(),
            tracer: Tracer::default(),
        }
    }
}
